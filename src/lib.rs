//! # legaliot
//!
//! Umbrella crate for the reproduction of Singh et al., *Big ideas paper: Policy-driven
//! middleware for a legally-compliant Internet of Things* (ACM/IFIP/USENIX Middleware
//! 2016). It re-exports the workspace crates so examples, integration tests and
//! downstream users can depend on a single crate.
//!
//! See `README.md` for an overview, `DESIGN.md` for the system inventory and
//! substitutions, and `EXPERIMENTS.md` for the figure-by-figure reproduction record.
//!
//! ```
//! use legaliot::core::HomeMonitoringScenario;
//!
//! let mut scenario = HomeMonitoringScenario::build(42);
//! scenario.run_sanitiser_endorsement();
//! let outcome = scenario.run(2);
//! assert!(outcome.delivered > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use legaliot_audit as audit;
pub use legaliot_compliance as compliance;
pub use legaliot_context as context;
pub use legaliot_core as core;
pub use legaliot_dataplane as dataplane;
pub use legaliot_fleet as fleet;
pub use legaliot_ifc as ifc;
pub use legaliot_iot as iot;
pub use legaliot_kernel as kernel;
pub use legaliot_middleware as middleware;
pub use legaliot_net as net;
pub use legaliot_obs as obs;
pub use legaliot_policy as policy;
pub use legaliot_trust as trust;
