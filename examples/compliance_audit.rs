//! The Fig. 1 feedback loop in isolation: obligations → policy → enforcement → audit →
//! compliance report → liability apportionment, including what happens when a rogue
//! component attempts an unlawful disclosure.
//!
//! Run with: `cargo run --example compliance_audit`

use legaliot::compliance::{ComplianceChecker, RegulationSet};
use legaliot::core::HomeMonitoringScenario;
use legaliot::ifc::SecurityContext;
use legaliot::iot::{Thing, ThingKind};
use legaliot::middleware::Message;

fn main() {
    let mut scenario = HomeMonitoringScenario::build(7);
    scenario.run_sanitiser_endorsement();
    scenario.run_statistics_declassification();

    // A rogue exporter appears and tries to pull Ann's data out of the EU.
    let exporter = Thing::new(
        "overseas-exporter",
        ThingKind::CloudService,
        "data-broker",
        "us-cloud",
        SecurityContext::public(),
    )
    .consumes("sensor-reading");
    scenario.deployment.add_thing(&exporter, "us");
    let attempt = scenario.deployment.connect("ann-analyser", "overseas-exporter").unwrap();
    println!("ann-analyser -> overseas-exporter: {attempt:?}");

    // Normal monitoring continues.
    let outcome = scenario.run(10);
    println!(
        "\nrun: {} delivered, {} denied, {} emergencies, {} audit records",
        outcome.delivered, outcome.denied, outcome.emergencies, outcome.audit_records
    );

    // Breach notification obligation: the denied disclosure must be reported.
    let regulation: RegulationSet = scenario.regulation().clone();
    let before = scenario.deployment.compliance_report(&regulation);
    println!("\nbefore notifying the regulator:");
    println!("  compliant : {}", before.is_compliant());
    for v in &before.violations {
        println!("  - {v}");
    }

    scenario.deployment.record_breach_notification("regulator");
    let after = scenario.deployment.compliance_report(&regulation);
    println!("\nafter notifying the regulator:");
    println!("  compliant : {}", after.is_compliant());
    for v in &after.violations {
        println!("  - {v}");
    }

    // Liability: who handled the statistics and their inputs?
    let liability = ComplianceChecker::liability(scenario.deployment.provenance(), "ann-analysis");
    println!("\nliability for `{}`:", liability.data_item);
    println!("  responsible agents : {:?}", liability.responsible_agents);
    println!("  involved processes : {:?}", liability.involved_processes);

    // The audit evidence is tamper-evident.
    println!("\naudit chain: {}", scenario.deployment.audit().verify_chain());

    // And sending to the exporter still fails at message time even if someone retries:
    // either the channel never opened (a denial outcome) or it was torn down by the
    // regulation, in which case the bus now reports the closed channel as an error.
    let retry = scenario.deployment.send(
        "ann-analyser",
        "overseas-exporter",
        Message::new("sensor-reading", SecurityContext::public()),
    );
    match retry {
        Ok(outcome) => println!("retry send to exporter: {outcome:?}"),
        Err(e) => println!("retry send to exporter refused: {e}"),
    }
}
