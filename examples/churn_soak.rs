//! Churn soak: a seeded fault-injection run against the sharded dataplane.
//!
//! A publisher thread streams payload messages through a small pub/sub topology
//! while a churn thread registers and deregisters endpoints, flips security
//! contexts and context keys, and toggles a break-glass override — all with a
//! deterministic failpoint schedule injecting mid-batch shard panics, delays
//! and queue-full backpressure. The run then prints the fault-tolerance
//! report: supervised restarts, evidenced losses, the exact accounting
//! identity, and per-shard audit-chain verification across restarts.
//!
//! Run with: `cargo run --release --example churn_soak [-- SEED [SHARDS [PUBLISHES [FLEETS]]]]`
//! (defaults: seed 1, 2 shards, 20,000 publish calls, 0 generated fleet
//! deployments). Each knob also reads its environment variable when the
//! positional argument is absent — `LEGALIOT_SOAK_SEED`, `LEGALIOT_SOAK_SHARDS`,
//! `LEGALIOT_SOAK_PUBLISHES`, `LEGALIOT_SOAK_FLEETS` — so CI drives the same
//! matrix as `tests/churn_soak.rs`. `FLEETS > 0` installs that many generated
//! deployments (endpoints, schemas, policies, admitted edges) from the seeded
//! `legaliot-fleet` generator as background population and replays their
//! scripted publishes as extra load. The same seed replays the same churn
//! decisions and fault schedule.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use legaliot::context::{ContextStore, Timestamp};
use legaliot::dataplane::{
    Dataplane, DataplaneConfig, FailpointRegistry, FailpointSite, FailpointSpec, FaultKind,
    OverflowPolicy, TopologyBuilder,
};
use legaliot::fleet::{generate, FleetConfig};
use legaliot::ifc::{Label, SecurityContext};
use legaliot::middleware::{
    AccessRule, AttributeKind, AttributeValue, Component, Message, MessageSchema, Operation,
    Principal, Subject,
};
use legaliot::policy::Condition;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn endpoint(name: &str, secrecy: &[&str]) -> Component {
    Component::builder(name, Principal::new("owner"))
        .context(SecurityContext::from_names(secrecy.iter().copied(), Vec::<&str>::new()))
        .build()
}

/// Admit while the load is nominal, or whenever the emergency override is on.
fn sink_rule() -> AccessRule {
    AccessRule::allow(Subject::Anyone, Operation::Send, None)
        .when(Condition::number_below("load", 120.0).or(Condition::is_true("emergency.active")))
}

const PUBLISHERS: [&str; 2] = ["pub-0", "pub-1"];
const SINKS: [&str; 3] = ["sink-0", "sink-1", "sink-2"];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Installs `fleets` generated deployments as background population — things,
/// schemas, policies and admitted edges all through the shared builder path —
/// and replays their scripted publishes as extra load. Returns how many
/// publish calls were made.
fn install_generated_fleet(
    dataplane: &Dataplane,
    store: &ContextStore,
    seed: u64,
    fleets: usize,
) -> u64 {
    let fleet = generate(FleetConfig { seed, deployments: fleets, rounds: 1 });
    for deployment in &fleet.deployments {
        for (key, value) in &deployment.initial_keys {
            store.set(key.as_str(), value.to_context_value(), Timestamp(1));
        }
    }
    let mut builder = TopologyBuilder::new("soak-fleet");
    for deployment in &fleet.deployments {
        for thing in &deployment.things {
            builder = builder.thing(&thing.to_thing());
        }
        for (from, to) in &deployment.edges {
            builder = builder.edge(from.as_str(), to.as_str());
        }
    }
    let topology = builder.build();
    topology.register(dataplane).expect("fleet endpoints register");
    let mut schemas = std::collections::BTreeMap::new();
    for deployment in &fleet.deployments {
        for schema in &deployment.schemas {
            dataplane.register_schema(schema.to_schema()).expect("fleet schemas register");
            schemas.insert(schema.message_type.clone(), schema.clone());
        }
    }
    dataplane.with_access(|access| {
        for deployment in &fleet.deployments {
            for rule in &deployment.rules {
                access.add_rule(rule.component.as_str(), rule.to_access_rule());
            }
        }
    });
    let snapshot = store.snapshot();
    topology.subscribe_edges(dataplane, &snapshot, Timestamp(2)).expect("fleet edges subscribe");
    let mut published = 0u64;
    for round in &fleet.rounds {
        for publish in &round.publishes {
            let schema = &schemas[&publish.message_type];
            let _ = dataplane.publish_message(
                &publish.publisher,
                &publish.message(schema),
                Timestamp(publish.at_millis),
            );
            published += 1;
        }
    }
    published
}

fn main() {
    let mut args = std::env::args().skip(1).filter_map(|arg| arg.parse::<u64>().ok());
    let seed = args.next().unwrap_or_else(|| env_u64("LEGALIOT_SOAK_SEED", 1));
    let shards = args.next().unwrap_or_else(|| env_u64("LEGALIOT_SOAK_SHARDS", 2)) as usize;
    let publishes = args.next().unwrap_or_else(|| env_u64("LEGALIOT_SOAK_PUBLISHES", 20_000));
    let fleets = args.next().unwrap_or_else(|| env_u64("LEGALIOT_SOAK_FLEETS", 0)) as usize;
    println!(
        "legaliot churn soak: seed={seed} shards={shards} publishes={publishes} fleets={fleets}"
    );

    // Deterministic fault schedule: one guaranteed recurring mid-batch panic
    // spec plus seeded probabilistic delays, hand-off crashes and injected
    // ingress queue-full. The total possible panics stay far below the restart
    // budget, so the run exercises restarts, never degradation.
    let registry = Arc::new(
        FailpointRegistry::new(seed)
            .with_spec(
                FailpointSpec::on_hits(FailpointSite::ShardProcess, FaultKind::Panic, 50, 1_501)
                    .limit(8),
            )
            .with_spec(FailpointSpec::with_probability(
                FailpointSite::ShardProcess,
                FaultKind::Delay(Duration::from_micros(20)),
                0.001,
            ))
            .with_spec(
                FailpointSpec::with_probability(
                    FailpointSite::AuditAppend,
                    FaultKind::Panic,
                    0.005,
                )
                .limit(3),
            )
            .with_spec(FailpointSpec::with_probability(
                FailpointSite::IngressEnqueue,
                FaultKind::QueueFull,
                0.001,
            )),
    );

    let store = Arc::new(ContextStore::with_retention(256));
    store.set("load", 80i64, Timestamp(0));
    store.set("emergency.active", false, Timestamp(0));

    let config = DataplaneConfig {
        shards,
        overflow: OverflowPolicy::DropOldest,
        mailbox_capacity: 64,
        failpoints: Some(Arc::clone(&registry)),
        restart_budget: 64,
        restart_backoff: Duration::from_micros(200),
        ..DataplaneConfig::default()
    };
    let dataplane =
        Arc::new(Dataplane::with_context_store("churn-soak", config, Arc::clone(&store)));
    let schema = MessageSchema::new("reading")
        .attribute("value", AttributeKind::Float)
        .sensitive_attribute("subject", AttributeKind::Text, Label::from_names(["secret-id"]));
    dataplane.register_schema(schema).unwrap();
    let snapshot = store.snapshot();
    for name in PUBLISHERS {
        dataplane.register(endpoint(name, &["t"])).unwrap();
    }
    for name in SINKS {
        dataplane.register(endpoint(name, &["t", "sink"])).unwrap();
        dataplane.with_access(|access| {
            access.add_rule(name, sink_rule());
        });
    }
    for publisher in PUBLISHERS {
        for sink in SINKS {
            assert!(dataplane
                .subscribe(publisher, sink, &snapshot, Timestamp(1))
                .unwrap()
                .is_delivered());
        }
    }
    let fleet_publishes =
        if fleets > 0 { install_generated_fleet(&dataplane, &store, seed, fleets) } else { 0 };
    if fleets > 0 {
        println!("  generated fleet: {fleets} deployments, {fleet_publishes} replayed publishes");
    }

    let clock = Arc::new(AtomicU64::new(10));
    let stop_churn = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    let publisher_thread = {
        let dataplane = Arc::clone(&dataplane);
        let clock = Arc::clone(&clock);
        std::thread::spawn(move || {
            let message = Message::new("reading", SecurityContext::public())
                .with("value", AttributeValue::Float(72.0))
                .with("subject", AttributeValue::Text("ann".into()));
            for i in 0..publishes {
                let publisher = PUBLISHERS[(i % PUBLISHERS.len() as u64) as usize];
                let now = Timestamp(clock.fetch_add(1, Ordering::Relaxed));
                // Errors (injected queue-full, racing deregisters) are the point.
                let _ = dataplane.publish_message(publisher, &message, now);
                if i % 512 == 0 {
                    std::thread::yield_now();
                }
            }
        })
    };

    let churn_thread = {
        let dataplane = Arc::clone(&dataplane);
        let store = Arc::clone(&store);
        let clock = Arc::clone(&clock);
        let stop = Arc::clone(&stop_churn);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
            let mut ephemeral: Vec<String> = Vec::new();
            let mut minted = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let now = Timestamp(clock.fetch_add(1, Ordering::Relaxed));
                match rng.gen_range(0u32..100) {
                    0..=24 => {
                        let name = format!("eph-{minted}");
                        minted += 1;
                        if dataplane.register(endpoint(&name, &["t", "sink"])).is_ok() {
                            dataplane.with_access(|access| {
                                access.add_rule(&name, sink_rule());
                            });
                            let snapshot = store.snapshot();
                            let publisher = PUBLISHERS[rng.gen_range(0..PUBLISHERS.len())];
                            let _ = dataplane.subscribe(publisher, &name, &snapshot, now);
                            ephemeral.push(name);
                        }
                    }
                    25..=44 => {
                        if !ephemeral.is_empty() {
                            let index = rng.gen_range(0..ephemeral.len());
                            let _ = dataplane.deregister(&ephemeral.swap_remove(index));
                        }
                    }
                    45..=64 => {
                        let load: i64 = if rng.gen_bool(0.5) { 80 } else { 150 };
                        store.set("load", load, now);
                    }
                    65..=79 => {
                        store.set("emergency.active", rng.gen_bool(0.5), now);
                    }
                    80..=89 => {
                        let sink = SINKS[rng.gen_range(0..SINKS.len())];
                        let secrecy: Vec<&str> = if rng.gen_bool(0.5) {
                            vec!["t", "sink"]
                        } else {
                            vec!["t", "sink", "secret-id"]
                        };
                        let _ = dataplane.set_context(
                            sink,
                            SecurityContext::from_names(secrecy, Vec::<&str>::new()),
                            now,
                        );
                    }
                    _ => {
                        let sink = SINKS[rng.gen_range(0..SINKS.len())];
                        let _ = dataplane.set_isolated(sink, rng.gen_bool(0.5), now);
                    }
                }
                if rng.gen_bool(0.2) {
                    std::thread::yield_now();
                }
            }
            for sink in SINKS {
                let _ =
                    dataplane.set_isolated(sink, false, Timestamp(clock.load(Ordering::Relaxed)));
            }
        })
    };

    publisher_thread.join().expect("publisher thread");
    stop_churn.store(true, Ordering::Relaxed);
    churn_thread.join().expect("churn thread");
    dataplane.drain();
    let elapsed = start.elapsed();

    let stats = dataplane.stats();
    let accounted = stats.delivered + stats.denied + stats.missing_endpoint + stats.deliveries_lost;
    let dataplane = Arc::into_inner(dataplane).expect("all clones joined");
    let report = dataplane.shutdown();
    let chains_intact = report.shard_audit.iter().all(|log| log.verify_chain().is_intact())
        && report.control_audit.verify_chain().is_intact();

    println!(
        "\n  {:.2}s: published {} → delivered {} + denied {} + missing {} + lost {}",
        elapsed.as_secs_f64(),
        stats.published,
        stats.delivered,
        stats.denied,
        stats.missing_endpoint,
        stats.deliveries_lost,
    );
    println!(
        "  shard restarts {} (faults fired at shard.process: {}), degraded shards {}, unsupervised panics {}",
        stats.shard_restarts,
        registry.fired(FailpointSite::ShardProcess),
        stats.degraded_shards,
        report.worker_panics.len(),
    );
    println!(
        "  accounting identity: {}  audit chains across restarts: {}  context history: {} entries",
        if stats.published == accounted { "exact" } else { "VIOLATED" },
        if chains_intact { "intact" } else { "BROKEN" },
        store.history().len(),
    );
    if stats.published != accounted || !chains_intact || !report.worker_panics.is_empty() {
        std::process::exit(1);
    }
}
