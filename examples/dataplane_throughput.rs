//! Dataplane throughput: single-shard uncached (the synchronous-bus-equivalent
//! baseline) vs the sharded, decision-cached, audit-summarising dataplane, on the
//! smart-home (Fig. 7) and smart-city topologies.
//!
//! Run with: `cargo run --release --example dataplane_throughput [-- MESSAGES]`
//! (default 1,000,000 messages per configuration per topology).

use std::time::Instant;

use legaliot::context::{ContextSnapshot, Timestamp};
use legaliot::dataplane::{
    smart_city, smart_home, AuditDetail, Dataplane, DataplaneConfig, Topology,
};

struct ConfigSpec {
    label: &'static str,
    config: DataplaneConfig,
}

fn configurations() -> Vec<ConfigSpec> {
    vec![
        // The paper-faithful baseline: one enforcement thread, a fresh lattice walk and
        // a full audit record per message, no batching — what the synchronous bus does.
        ConfigSpec {
            label: "1 shard, uncached, full audit",
            config: DataplaneConfig {
                shards: 1,
                cache_decisions: false,
                audit_detail: AuditDetail::Full,
                audit_batch: 1,
                // Bounded in-memory retention (chain-anchored pruning) so a million
                // full records do not swamp memory; throughput cost is unaffected.
                audit_retention: Some(65_536),
                ..DataplaneConfig::default()
            },
        },
        // Decision cache + audit summarisation on one shard: isolates the caching win.
        ConfigSpec {
            label: "1 shard, cached, summarised",
            config: DataplaneConfig {
                shards: 1,
                cache_decisions: true,
                audit_detail: AuditDetail::Summarised,
                audit_batch: 1024,
                ..DataplaneConfig::default()
            },
        },
        // The dataplane configuration: 4 shards, cached, summarised, batched.
        ConfigSpec {
            label: "4 shards, cached, summarised",
            config: DataplaneConfig {
                shards: 4,
                cache_decisions: true,
                audit_detail: AuditDetail::Summarised,
                audit_batch: 1024,
                ..DataplaneConfig::default()
            },
        },
    ]
}

fn run_topology(topology: &Topology, messages: u64) {
    println!("\n== {} topology ==", topology.name);
    let publishers = topology.publishers();
    println!(
        "   {} components, {} channels, {} publishers, {} messages per configuration",
        topology.components.len(),
        topology.edges.len(),
        publishers.len(),
        messages
    );

    let mut baseline_rate = None;
    for spec in configurations() {
        let dataplane = Dataplane::new(topology.name.clone(), spec.config.clone());
        let admitted = topology
            .install(&dataplane, &ContextSnapshot::default(), Timestamp(1))
            .expect("topology installs");
        assert_eq!(admitted, topology.edges.len(), "all scenario channels are legal");

        let start = Instant::now();
        let mut published = 0u64;
        let mut clock = 2u64;
        'outer: loop {
            for publisher in &publishers {
                published += dataplane.publish(publisher, Timestamp(clock)).unwrap() as u64;
                clock += 1;
                if published >= messages {
                    break 'outer;
                }
            }
        }
        dataplane.drain();
        let elapsed = start.elapsed();
        let stats = dataplane.stats();
        let report = dataplane.shutdown();
        assert!(
            report.shard_audit.iter().all(|log| log.verify_chain().is_intact()),
            "per-shard audit chains stay tamper-evident"
        );

        let rate = stats.published as f64 / elapsed.as_secs_f64();
        let speedup = match baseline_rate {
            None => {
                baseline_rate = Some(rate);
                1.0
            }
            Some(base) => rate / base,
        };
        println!(
            "   {:<32} {:>10.0} msgs/s   {:>5.2}x   delivered {} denied {} cache-hit {:>5.1}%  audit-records {}",
            spec.label,
            rate,
            speedup,
            stats.delivered,
            stats.denied,
            stats.cache_hit_ratio() * 100.0,
            report.shard_audit.iter().map(legaliot::audit::AuditLog::len).sum::<usize>(),
        );
    }
}

fn main() {
    let messages: u64 =
        std::env::args().nth(1).and_then(|arg| arg.parse().ok()).unwrap_or(1_000_000);

    println!(
        "legaliot dataplane throughput (cores available: {})",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );

    // Smart home: 8 patients (sensors + analysers + sanitiser + stats pipeline).
    run_topology(&smart_home(8, 2016), messages);
    // Smart city: 4 districts × 8 sensors feeding gateways, analytics, anonymiser.
    run_topology(&smart_city(4, 8), messages);
}
