//! Dataplane throughput: single-shard uncached (the synchronous-bus-equivalent
//! baseline) vs the sharded, decision-cached, audit-summarising dataplane — flow-only
//! and payload-carrying — on the smart-home (Fig. 10 quenching over Fig. 7's topology)
//! and smart-city workloads.
//!
//! The payload rows compare the zero-copy hot path (freeze once, `Arc` per
//! subscriber, bitmask quenching, AC+IFC decision caches) against the naive
//! clone-per-delivery baseline (deep `Message` clone per subscriber, map-clone
//! quenching, no caches).
//!
//! A fleet-scale section then installs a generated 1000-deployment fleet
//! (homes, hospital wards, vehicle fleets from the seeded `legaliot-fleet`
//! generator) through the same builder/bulk-registration path and replays its
//! publish script, reporting sustained throughput and delivery latency
//! percentiles at thousands of endpoints.
//!
//! Run with: `cargo run --release --example dataplane_throughput [-- MESSAGES [FLEET_DEPLOYMENTS]]`
//! (default 1,000,000 messages per configuration per topology, 1000 generated
//! deployments). Writes the results machine-readably to `BENCH_dataplane.json`
//! at the repo root so CI can track the perf trajectory PR-over-PR.

use std::fmt::Write as _;
use std::time::Instant;

use std::sync::Arc;

use legaliot::audit::SegmentStats;
use legaliot::context::{ContextSnapshot, Timestamp};
use legaliot::dataplane::{
    smart_city, smart_home, AuditDetail, Dataplane, DataplaneConfig, FailpointRegistry,
    FailpointSite, FailpointSpec, FaultKind, PayloadMode, PersistenceConfig,
    ShardTelemetrySnapshot, Stage, Topology, TopologyBuilder,
};
use legaliot::fleet::{generate, FleetConfig};
use legaliot::middleware::Message;
use legaliot::obs::ObsConfig;

struct ConfigSpec {
    label: &'static str,
    /// `true` drives `publish_message` (payload hot path), `false` drives the
    /// flow-only `publish`.
    payload: bool,
    /// `true` opens a streaming [`Subscriber`](legaliot::dataplane::Subscriber) on
    /// every subscribing endpoint and spawns a drain-loop consumer thread per
    /// receiver, so delivered-vs-received throughput is measured end to end.
    consumers: bool,
    config: DataplaneConfig,
}

fn configurations() -> Vec<ConfigSpec> {
    vec![
        // The paper-faithful baseline: one enforcement thread, a fresh lattice walk and
        // a full audit record per message, no batching — what the synchronous bus does.
        ConfigSpec {
            label: "1 shard, uncached, full audit",
            payload: false,
            consumers: false,
            config: DataplaneConfig {
                shards: 1,
                cache_decisions: false,
                cache_ac_decisions: false,
                audit_detail: AuditDetail::Full,
                audit_batch: 1,
                // Bounded in-memory retention (chain-anchored pruning) so a million
                // full records do not swamp memory; throughput cost is unaffected.
                audit_retention: Some(65_536),
                ..DataplaneConfig::default()
            },
        },
        // Decision cache + audit summarisation on one shard: isolates the caching win.
        ConfigSpec {
            label: "1 shard, cached, summarised",
            payload: false,
            consumers: false,
            config: DataplaneConfig {
                shards: 1,
                cache_decisions: true,
                audit_detail: AuditDetail::Summarised,
                audit_batch: 1024,
                ..DataplaneConfig::default()
            },
        },
        // The flow-only dataplane configuration: 4 shards, cached, summarised, batched.
        ConfigSpec {
            label: "4 shards, cached, summarised",
            payload: false,
            consumers: false,
            config: DataplaneConfig {
                shards: 4,
                cache_decisions: true,
                audit_detail: AuditDetail::Summarised,
                audit_batch: 1024,
                ..DataplaneConfig::default()
            },
        },
        // Naive payload baseline: deep clone per delivery, map-clone quenching, every
        // AC and IFC decision recomputed — what a straight port of the bus would do.
        ConfigSpec {
            label: "1 shard, payload clone-each, uncached",
            payload: true,
            consumers: false,
            config: DataplaneConfig {
                shards: 1,
                payload_mode: PayloadMode::CloneEach,
                cache_decisions: false,
                cache_ac_decisions: false,
                audit_detail: AuditDetail::Summarised,
                audit_batch: 1024,
                audit_retention: Some(65_536),
                ..DataplaneConfig::default()
            },
        },
        // The zero-copy payload hot path on one shard: isolates representation+caching.
        ConfigSpec {
            label: "1 shard, payload zero-copy, cached",
            payload: true,
            consumers: false,
            config: DataplaneConfig {
                shards: 1,
                payload_mode: PayloadMode::ZeroCopy,
                cache_decisions: true,
                cache_ac_decisions: true,
                audit_detail: AuditDetail::Summarised,
                audit_batch: 1024,
                audit_retention: Some(65_536),
                ..DataplaneConfig::default()
            },
        },
        // The full payload dataplane: 4 shards, zero-copy, all caches.
        ConfigSpec {
            label: "4 shards, payload zero-copy, cached",
            payload: true,
            consumers: false,
            config: DataplaneConfig {
                shards: 4,
                payload_mode: PayloadMode::ZeroCopy,
                cache_decisions: true,
                cache_ac_decisions: true,
                audit_detail: AuditDetail::Summarised,
                audit_batch: 1024,
                audit_retention: Some(65_536),
                ..DataplaneConfig::default()
            },
        },
        // End-to-end: the same payload dataplane with a streaming receiver on every
        // subscribing endpoint and a drain-loop consumer thread per receiver, so the
        // delivered-vs-received gap (mailbox hand-off + consumer drain) is measured,
        // not assumed. Blocking overflow: nothing is shed, slow consumers
        // backpressure the shards end to end.
        ConfigSpec {
            label: "4 shards, zero-copy, drain-loop consumers",
            payload: true,
            consumers: true,
            config: DataplaneConfig {
                shards: 4,
                payload_mode: PayloadMode::ZeroCopy,
                cache_decisions: true,
                cache_ac_decisions: true,
                audit_detail: AuditDetail::Summarised,
                audit_batch: 1024,
                audit_retention: Some(65_536),
                mailbox_capacity: 4096,
                ..DataplaneConfig::default()
            },
        },
    ]
}

struct ConfigResult {
    label: String,
    mode: &'static str,
    msgs_per_sec: f64,
    /// `None` for flow-only configurations: no payload moves, so a byte rate would
    /// be a misleading 0 rather than a measurement.
    bytes_per_sec: Option<f64>,
    delivered: u64,
    denied: u64,
    quenched_attributes: u64,
    ifc_cache_hit_ratio: f64,
    /// `None` for flow-only configurations: the flow path never consults the
    /// AdmissionCache (per-message-type AC is a payload-path concern), so there is
    /// no ratio to report.
    ac_cache_hit_ratio: Option<f64>,
    speedup_vs_baseline: f64,
    /// Messages observed by drain-loop consumer threads (0 when the configuration
    /// runs without consumers).
    received: u64,
    /// Consumer-side throughput over the whole run including the final backlog drain
    /// (0.0 without consumers).
    received_per_sec: f64,
    /// Merged per-shard stage telemetry captured after the drain.
    telemetry: ShardTelemetrySnapshot,
    /// Fault-tolerance counters, recorded so CI can assert a normal bench run
    /// never exercises the supervision path (all three must be zero here).
    shard_restarts: u64,
    deliveries_lost: u64,
    degraded_shards: u64,
}

fn drive_flow(dataplane: &Dataplane, publishers: &[String], messages: u64) -> u64 {
    let mut published = 0u64;
    let mut clock = 2u64;
    'outer: loop {
        for publisher in publishers {
            published += dataplane.publish(publisher, Timestamp(clock)).unwrap() as u64;
            clock += 1;
            if published >= messages {
                break 'outer;
            }
        }
    }
    published
}

fn drive_payload(dataplane: &Dataplane, pairs: &[(String, Message)], messages: u64) -> u64 {
    let mut published = 0u64;
    let mut clock = 2u64;
    'outer: loop {
        for (publisher, message) in pairs {
            published +=
                dataplane.publish_message(publisher, message, Timestamp(clock)).unwrap() as u64;
            clock += 1;
            if published >= messages {
                break 'outer;
            }
        }
    }
    published
}

fn run_topology(topology: &Topology, messages: u64) -> Vec<ConfigResult> {
    println!("\n== {} topology ==", topology.name);
    let publishers = topology.publishers();
    let pairs = topology.publisher_messages();
    println!(
        "   {} components, {} channels, {} publishers, {} messages per configuration",
        topology.components.len(),
        topology.edges.len(),
        publishers.len(),
        messages
    );

    let mut results: Vec<ConfigResult> = Vec::new();
    let mut flow_baseline = None;
    let mut payload_baseline = None;
    for spec in configurations() {
        let dataplane = Dataplane::new(topology.name.clone(), spec.config.clone());
        let admitted = topology
            .install_with_payload_schemas(&dataplane, &ContextSnapshot::default(), Timestamp(1))
            .expect("topology installs");
        assert_eq!(admitted, topology.edges.len(), "all scenario channels are legal");

        // Streaming receivers: one per subscribing endpoint, each drained by its own
        // consumer thread until the dataplane shuts the mailbox down.
        let mut consumers = Vec::new();
        if spec.consumers {
            let mut receivers: Vec<&String> = topology.edges.iter().map(|(_, to)| to).collect();
            receivers.sort();
            receivers.dedup();
            for name in receivers {
                let subscriber = dataplane.open_subscriber(name).expect("receiver opens");
                consumers.push(std::thread::spawn(move || {
                    let mut received = 0u64;
                    while subscriber.recv().is_ok() {
                        received += 1;
                    }
                    received
                }));
            }
        }

        let start = Instant::now();
        if spec.payload {
            drive_payload(&dataplane, &pairs, messages);
        } else {
            drive_flow(&dataplane, &publishers, messages);
        }
        dataplane.drain();
        let elapsed = start.elapsed();
        let stats = dataplane.stats();
        let merged_telemetry = dataplane.telemetry().merged();
        let report = dataplane.shutdown();
        // Shutdown closed every mailbox: the consumers drain their backlog and exit.
        // Joined (and timed) before the chain verification below so the consumer
        // throughput is not charged for unrelated audit-walk work.
        let received: u64 = consumers.into_iter().map(|c| c.join().expect("consumer")).sum();
        let consumer_elapsed = start.elapsed();
        let received_per_sec =
            if spec.consumers { received as f64 / consumer_elapsed.as_secs_f64() } else { 0.0 };
        assert!(
            report.shard_audit.iter().all(|log| log.verify_chain().is_intact()),
            "per-shard audit chains stay tamper-evident"
        );
        if spec.consumers {
            assert_eq!(
                received, stats.receiver_enqueued,
                "consumers observe exactly what the shards enqueued (blocking overflow: no sheds)"
            );
        }

        let rate = stats.published as f64 / elapsed.as_secs_f64();
        // Flow-only rows move no payload and never touch the AdmissionCache: report
        // `null` rather than a misleading 0 / 0.0 for those columns.
        let bytes_per_sec =
            spec.payload.then(|| stats.payload_bytes as f64 / elapsed.as_secs_f64());
        let ac_cache_hit_ratio = spec.payload.then(|| stats.ac_cache_hit_ratio());
        let baseline = if spec.payload { &mut payload_baseline } else { &mut flow_baseline };
        let speedup = match *baseline {
            None => {
                *baseline = Some(rate);
                1.0
            }
            Some(base) => rate / base,
        };
        let delivery = merged_telemetry.stage(Stage::Delivery);
        println!(
            "   {:<42} {:>10.0} msgs/s {:>7.1} MB/s  {:>5.2}x  delivered {} received {} denied {} quenched {} ifc-hit {:>5.1}% ac-hit {} p50 {} p99 {} p999 {}",
            spec.label,
            rate,
            bytes_per_sec.unwrap_or(0.0) / 1e6,
            speedup,
            stats.delivered,
            received,
            stats.denied,
            stats.quenched_attributes,
            stats.cache_hit_ratio() * 100.0,
            ac_cache_hit_ratio.map_or_else(|| "n/a".into(), |r| format!("{:.1}%", r * 100.0)),
            format_ns(delivery.p50()),
            format_ns(delivery.p99()),
            format_ns(delivery.p999()),
        );
        results.push(ConfigResult {
            label: spec.label.to_string(),
            mode: if spec.consumers {
                "payload+consumers"
            } else if spec.payload {
                "payload"
            } else {
                "flow"
            },
            msgs_per_sec: rate,
            bytes_per_sec,
            delivered: stats.delivered,
            denied: stats.denied,
            quenched_attributes: stats.quenched_attributes,
            ifc_cache_hit_ratio: stats.cache_hit_ratio(),
            ac_cache_hit_ratio,
            speedup_vs_baseline: speedup,
            received,
            received_per_sec,
            telemetry: merged_telemetry,
            shard_restarts: stats.shard_restarts,
            deliveries_lost: stats.deliveries_lost,
            degraded_shards: stats.degraded_shards,
        });
    }
    results
}

/// Human-readable nanoseconds for the console table.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Measures the cost of telemetry itself: the 1-shard cached zero-copy payload
/// configuration run back-to-back with telemetry disabled, then enabled. Returns
/// `(disabled_rate, enabled_rate)` in msgs/s.
fn run_telemetry_overhead(topology: &Topology, messages: u64) -> (f64, f64) {
    let pairs = topology.publisher_messages();
    let mut rates = [0.0f64; 2];
    for (index, telemetry) in [ObsConfig::disabled(), ObsConfig::enabled()].into_iter().enumerate()
    {
        let config = DataplaneConfig {
            shards: 1,
            payload_mode: PayloadMode::ZeroCopy,
            cache_decisions: true,
            cache_ac_decisions: true,
            audit_detail: AuditDetail::Summarised,
            audit_batch: 1024,
            audit_retention: Some(65_536),
            telemetry,
            ..DataplaneConfig::default()
        };
        let dataplane = Dataplane::new(topology.name.clone(), config);
        topology
            .install_with_payload_schemas(&dataplane, &ContextSnapshot::default(), Timestamp(1))
            .expect("topology installs");
        let start = Instant::now();
        drive_payload(&dataplane, &pairs, messages);
        dataplane.drain();
        let elapsed = start.elapsed();
        let stats = dataplane.stats();
        dataplane.shutdown();
        rates[index] = stats.published as f64 / elapsed.as_secs_f64();
    }
    println!(
        "   telemetry overhead (1 shard, zero-copy, cached): off {:>10.0} msgs/s  on {:>10.0} msgs/s  ({:.1}% cost)",
        rates[0],
        rates[1],
        (1.0 - rates[1] / rates[0]) * 100.0
    );
    (rates[0], rates[1])
}

/// Measures the cost of the failpoint probes: the 1-shard cached zero-copy payload
/// configuration run back-to-back with `failpoints: None` (every probe is a single
/// `Option` check) and with a registry installed whose only spec sits at an
/// unreachable hit index, so each probe walks the registry's per-site spec list but
/// never fires. Returns `(disabled_rate, armed_rate)` in msgs/s; the ratio should be
/// indistinguishable from 1.0.
fn run_failpoint_overhead(topology: &Topology, messages: u64) -> (f64, f64) {
    let pairs = topology.publisher_messages();
    let mut rates = [0.0f64; 2];
    let armed = Arc::new(FailpointRegistry::new(0).with_spec(FailpointSpec::on_hits(
        FailpointSite::ShardProcess,
        FaultKind::Panic,
        u64::MAX,
        0,
    )));
    for (index, failpoints) in [None, Some(armed)].into_iter().enumerate() {
        let config = DataplaneConfig {
            shards: 1,
            payload_mode: PayloadMode::ZeroCopy,
            cache_decisions: true,
            cache_ac_decisions: true,
            audit_detail: AuditDetail::Summarised,
            audit_batch: 1024,
            audit_retention: Some(65_536),
            failpoints,
            ..DataplaneConfig::default()
        };
        let dataplane = Dataplane::new(topology.name.clone(), config);
        topology
            .install_with_payload_schemas(&dataplane, &ContextSnapshot::default(), Timestamp(1))
            .expect("topology installs");
        let start = Instant::now();
        drive_payload(&dataplane, &pairs, messages);
        dataplane.drain();
        let elapsed = start.elapsed();
        let stats = dataplane.stats();
        dataplane.shutdown();
        rates[index] = stats.published as f64 / elapsed.as_secs_f64();
    }
    println!(
        "   failpoint overhead (1 shard, zero-copy, cached): off {:>10.0} msgs/s  armed-never-firing {:>10.0} msgs/s  ({:.1}% cost)",
        rates[0],
        rates[1],
        (1.0 - rates[1] / rates[0]) * 100.0
    );
    (rates[0], rates[1])
}

/// The persistence A/B pair: the full-audit payload configuration run with the
/// durable segment store off, then on (fsync on every flush), so the cost of
/// crash-safe audit is a measured number rather than a claim.
struct PersistenceOverhead {
    off_msgs_per_sec: f64,
    on_msgs_per_sec: f64,
    /// Final segment-store counters of the durable run (after the sealing
    /// shutdown), including the fsync latency histogram.
    segment_stats: SegmentStats,
}

/// Measures the durable-audit cost: the 4-shard cached zero-copy payload
/// configuration under `AuditDetail::Full` with bounded retention, run
/// back-to-back without and with a [`PersistenceConfig`] streaming the
/// retained-out records to fsynced on-disk segments.
fn run_persistence_overhead(topology: &Topology, messages: u64) -> PersistenceOverhead {
    let pairs = topology.publisher_messages();
    let dir = std::env::temp_dir().join(format!(
        "legaliot-bench-persist-{}-{}",
        topology.name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rates = [0.0f64; 2];
    let mut segment_stats = SegmentStats::default();
    let persistence =
        PersistenceConfig { dir: dir.clone(), max_segment_records: 65_536, sync_on_flush: true };
    for (index, persistence) in [None, Some(persistence)].into_iter().enumerate() {
        let durable = persistence.is_some();
        let config = DataplaneConfig {
            shards: 4,
            payload_mode: PayloadMode::ZeroCopy,
            cache_decisions: true,
            cache_ac_decisions: true,
            audit_detail: AuditDetail::Full,
            audit_batch: 1024,
            audit_retention: Some(8_192),
            persistence,
            ..DataplaneConfig::default()
        };
        let dataplane = Dataplane::new(topology.name.clone(), config);
        topology
            .install_with_payload_schemas(&dataplane, &ContextSnapshot::default(), Timestamp(1))
            .expect("topology installs");
        let start = Instant::now();
        drive_payload(&dataplane, &pairs, messages);
        dataplane.drain();
        let elapsed = start.elapsed();
        let stats = dataplane.stats();
        let report = dataplane.shutdown();
        if durable {
            segment_stats = report.segment_stats.expect("durable run reports segment stats");
            assert_eq!(report.unsynced_bytes, 0, "graceful close leaves nothing unsynced");
        }
        rates[index] = stats.published as f64 / elapsed.as_secs_f64();
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "   persistence overhead (4 shards, full audit): off {:>10.0} msgs/s  on {:>10.0} msgs/s  ({:.1}% cost)  {} records persisted, fsync p99 {}",
        rates[0],
        rates[1],
        (1.0 - rates[1] / rates[0]) * 100.0,
        segment_stats.records_persisted,
        format_ns(segment_stats.fsync.p99_ns()),
    );
    PersistenceOverhead { off_msgs_per_sec: rates[0], on_msgs_per_sec: rates[1], segment_stats }
}

/// The fleet-scale row: a generated heterogeneous fleet on the payload hot
/// path, reported with its population so the rate is interpretable.
struct FleetBenchResult {
    seed: u64,
    deployments: usize,
    endpoints: usize,
    edges: usize,
    admitted_edges: usize,
    shards: usize,
    install_ms: f64,
    msgs_per_sec: f64,
    published: u64,
    delivered: u64,
    denied: u64,
    telemetry: ShardTelemetrySnapshot,
}

/// Installs a generated `deployments`-strong fleet (endpoints, schemas,
/// policies, admitted edges — all through the shared builder/bulk path) on the
/// full payload dataplane configuration and replays its publish script until
/// `messages` fan-out deliveries have been published.
fn run_fleet_bench(seed: u64, deployments: usize, messages: u64) -> FleetBenchResult {
    let fleet = generate(FleetConfig { seed, deployments, rounds: 1 });
    let shards = 4;
    let config = DataplaneConfig {
        shards,
        payload_mode: PayloadMode::ZeroCopy,
        cache_decisions: true,
        cache_ac_decisions: true,
        audit_detail: AuditDetail::Summarised,
        audit_batch: 1024,
        audit_retention: Some(65_536),
        ..DataplaneConfig::default()
    };
    let dataplane = Dataplane::new("generated-fleet", config);
    let store = Arc::clone(dataplane.context_store());

    let install_start = Instant::now();
    for deployment in &fleet.deployments {
        for (key, value) in &deployment.initial_keys {
            store.set(key.as_str(), value.to_context_value(), Timestamp(0));
        }
    }
    let mut builder = TopologyBuilder::new("generated-fleet");
    for deployment in &fleet.deployments {
        for thing in &deployment.things {
            builder = builder.thing(&thing.to_thing());
        }
        for (from, to) in &deployment.edges {
            builder = builder.edge(from.as_str(), to.as_str());
        }
    }
    let topology = builder.build();
    topology.register(&dataplane).expect("fleet endpoints register");
    let mut schemas = std::collections::BTreeMap::new();
    for deployment in &fleet.deployments {
        for schema in &deployment.schemas {
            dataplane.register_schema(schema.to_schema()).expect("fleet schemas register");
            schemas.insert(schema.message_type.clone(), schema.clone());
        }
    }
    dataplane.with_access(|access| {
        for deployment in &fleet.deployments {
            for rule in &deployment.rules {
                access.add_rule(rule.component.as_str(), rule.to_access_rule());
            }
        }
    });
    let snapshot = store.snapshot();
    let admitted_edges = topology
        .subscribe_edges(&dataplane, &snapshot, Timestamp(1))
        .expect("fleet edges subscribe");
    let install_ms = install_start.elapsed().as_secs_f64() * 1e3;

    // The scripted publishes become the replayed workload (fresh timestamps
    // per call, as `drive_payload` stamps them).
    let pairs: Vec<(String, Message)> = fleet
        .rounds
        .iter()
        .flat_map(|round| round.publishes.iter())
        .map(|publish| {
            (publish.publisher.clone(), publish.message(&schemas[&publish.message_type]))
        })
        .collect();

    let start = Instant::now();
    drive_payload(&dataplane, &pairs, messages);
    dataplane.drain();
    let elapsed = start.elapsed();
    let stats = dataplane.stats();
    let telemetry = dataplane.telemetry().merged();
    let report = dataplane.shutdown();
    assert!(
        report.shard_audit.iter().all(|log| log.verify_chain().is_intact()),
        "fleet-scale audit chains stay tamper-evident"
    );
    let rate = stats.published as f64 / elapsed.as_secs_f64();
    let delivery = telemetry.stage(Stage::Delivery);
    println!("\n== generated fleet ==");
    println!(
        "   {} deployments, {} endpoints, {} edges ({} admitted), {shards} shards, install {install_ms:.1}ms",
        fleet.deployments.len(),
        fleet.endpoint_count(),
        fleet.edge_count(),
        admitted_edges,
    );
    println!(
        "   {:<42} {:>10.0} msgs/s          delivered {} denied {} p50 {} p99 {} p999 {}",
        format!("fleet seed {seed}, zero-copy, cached"),
        rate,
        stats.delivered,
        stats.denied,
        format_ns(delivery.p50()),
        format_ns(delivery.p99()),
        format_ns(delivery.p999()),
    );
    FleetBenchResult {
        seed,
        deployments: fleet.deployments.len(),
        endpoints: fleet.endpoint_count(),
        edges: fleet.edge_count(),
        admitted_edges,
        shards,
        install_ms,
        msgs_per_sec: rate,
        published: stats.published,
        delivered: stats.delivered,
        denied: stats.denied,
        telemetry,
    }
}

/// One topology's full result set: name, per-config rows, the telemetry on/off
/// overhead pair, the failpoints none/armed overhead pair, and the durable-audit
/// persistence off/on pair.
type TopologyResults = (String, Vec<ConfigResult>, (f64, f64), (f64, f64), PersistenceOverhead);

/// Renders the results as JSON by hand (stable key order, no dependencies) and writes
/// them to `BENCH_dataplane.json` at the repo root.
fn write_bench_json(messages: u64, all: &[TopologyResults], fleet: &FleetBenchResult) {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"dataplane_throughput\",");
    let _ = writeln!(json, "  \"messages_per_config\": {messages},");
    json.push_str("  \"topologies\": {\n");
    for (t_index, (name, results, overhead, failpoint_overhead, persistence)) in
        all.iter().enumerate()
    {
        let _ = writeln!(json, "    \"{name}\": {{");
        json.push_str("      \"configs\": [\n");
        for (index, r) in results.iter().enumerate() {
            let delivery = r.telemetry.stage(Stage::Delivery);
            let _ = writeln!(json, "        {{");
            let _ = writeln!(json, "          \"label\": \"{}\",", r.label);
            let _ = writeln!(json, "          \"mode\": \"{}\",", r.mode);
            let _ = writeln!(json, "          \"msgs_per_sec\": {:.0},", r.msgs_per_sec);
            let _ = writeln!(
                json,
                "          \"bytes_per_sec\": {},",
                r.bytes_per_sec.map_or_else(|| "null".into(), |b| format!("{b:.0}"))
            );
            let _ = writeln!(json, "          \"delivered\": {},", r.delivered);
            let _ = writeln!(json, "          \"denied\": {},", r.denied);
            let _ = writeln!(json, "          \"quenched_attributes\": {},", r.quenched_attributes);
            let _ =
                writeln!(json, "          \"ifc_cache_hit_ratio\": {:.4},", r.ifc_cache_hit_ratio);
            let _ = writeln!(
                json,
                "          \"ac_cache_hit_ratio\": {},",
                r.ac_cache_hit_ratio.map_or_else(|| "null".into(), |a| format!("{a:.4}"))
            );
            let _ =
                writeln!(json, "          \"speedup_vs_baseline\": {:.3},", r.speedup_vs_baseline);
            let _ = writeln!(json, "          \"received\": {},", r.received);
            let _ = writeln!(json, "          \"received_per_sec\": {:.0},", r.received_per_sec);
            // Fault-tolerance counters: a normal bench run injects no faults, so
            // all three are expected to be zero (asserted by CI).
            let _ = writeln!(json, "          \"shard_restarts\": {},", r.shard_restarts);
            let _ = writeln!(json, "          \"deliveries_lost\": {},", r.deliveries_lost);
            let _ = writeln!(json, "          \"degraded_shards\": {},", r.degraded_shards);
            // Delivery latency (enqueue → enforcement complete, ns) over every
            // delivered message, plus the per-stage breakdown attributing it.
            let _ = writeln!(json, "          \"latency_p50_ns\": {},", delivery.p50());
            let _ = writeln!(json, "          \"latency_p90_ns\": {},", delivery.p90());
            let _ = writeln!(json, "          \"latency_p99_ns\": {},", delivery.p99());
            let _ = writeln!(json, "          \"latency_p999_ns\": {},", delivery.p999());
            let _ = writeln!(
                json,
                "          \"queue_depth_hwm\": {},",
                r.telemetry.queue_depth_high_water
            );
            let _ = writeln!(
                json,
                "          \"queue_consumer_parks\": {},",
                r.telemetry.queue_consumer_parks
            );
            let _ = writeln!(
                json,
                "          \"queue_producer_waits\": {},",
                r.telemetry.queue_producer_waits
            );
            json.push_str("          \"stages\": {\n");
            let populated: Vec<Stage> =
                Stage::ALL.into_iter().filter(|s| !r.telemetry.stage(*s).is_empty()).collect();
            for (s_index, stage) in populated.iter().enumerate() {
                let h = r.telemetry.stage(*stage);
                let _ = writeln!(
                    json,
                    "            \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}",
                    stage.name(),
                    h.count(),
                    h.p50(),
                    h.p99(),
                    if s_index + 1 < populated.len() { "," } else { "" }
                );
            }
            json.push_str("          }\n");
            let _ =
                writeln!(json, "        }}{}", if index + 1 < results.len() { "," } else { "" });
        }
        json.push_str("      ],\n");
        let (off_rate, on_rate) = *overhead;
        json.push_str("      \"telemetry_overhead\": {\n");
        let _ = writeln!(json, "        \"config\": \"1 shard, payload zero-copy, cached\",");
        let _ = writeln!(json, "        \"telemetry_disabled_msgs_per_sec\": {off_rate:.0},");
        let _ = writeln!(json, "        \"telemetry_enabled_msgs_per_sec\": {on_rate:.0},");
        let _ = writeln!(
            json,
            "        \"enabled_over_disabled\": {:.4}",
            if off_rate > 0.0 { on_rate / off_rate } else { 0.0 }
        );
        json.push_str("      },\n");
        let (fp_off, fp_on) = *failpoint_overhead;
        json.push_str("      \"failpoint_overhead\": {\n");
        let _ = writeln!(json, "        \"config\": \"1 shard, payload zero-copy, cached\",");
        let _ = writeln!(json, "        \"probes_disabled_msgs_per_sec\": {fp_off:.0},");
        let _ = writeln!(json, "        \"registry_armed_msgs_per_sec\": {fp_on:.0},");
        let _ = writeln!(
            json,
            "        \"armed_over_disabled\": {:.4}",
            if fp_off > 0.0 { fp_on / fp_off } else { 0.0 }
        );
        json.push_str("      },\n");
        let seg = &persistence.segment_stats;
        json.push_str("      \"persistence_overhead\": {\n");
        let _ = writeln!(json, "        \"config\": \"4 shards, payload zero-copy, full audit\",");
        let _ = writeln!(
            json,
            "        \"persistence_disabled_msgs_per_sec\": {:.0},",
            persistence.off_msgs_per_sec
        );
        let _ = writeln!(
            json,
            "        \"persistence_enabled_msgs_per_sec\": {:.0},",
            persistence.on_msgs_per_sec
        );
        let _ = writeln!(
            json,
            "        \"enabled_over_disabled\": {:.4},",
            if persistence.off_msgs_per_sec > 0.0 {
                persistence.on_msgs_per_sec / persistence.off_msgs_per_sec
            } else {
                0.0
            }
        );
        let _ = writeln!(json, "        \"records_persisted\": {},", seg.records_persisted);
        let _ = writeln!(json, "        \"segments_written\": {},", seg.segments_written);
        let _ = writeln!(json, "        \"fsync_count\": {},", seg.fsync.count());
        let _ = writeln!(json, "        \"fsync_p99_ns\": {},", seg.fsync.p99_ns());
        let _ = writeln!(json, "        \"fsync_max_ns\": {}", seg.fsync.max_ns());
        json.push_str("      },\n");
        let clone_baseline = results
            .iter()
            .find(|r| r.label.contains("clone-each"))
            .map(|r| r.msgs_per_sec)
            .unwrap_or(0.0);
        let best_payload = results
            .iter()
            .filter(|r| r.mode == "payload")
            .map(|r| r.msgs_per_sec)
            .fold(0.0f64, f64::max);
        let payload_speedup =
            if clone_baseline > 0.0 { best_payload / clone_baseline } else { 0.0 };
        let _ = writeln!(
            json,
            "      \"payload_zero_copy_speedup_over_clone_baseline\": {payload_speedup:.3}"
        );
        let _ = writeln!(json, "    }}{}", if t_index + 1 < all.len() { "," } else { "" });
    }
    json.push_str("  },\n");
    // Fleet-scale rows: the generated heterogeneous fleet on the payload hot
    // path, with its population recorded so the rate is interpretable and CI
    // can assert scale as well as speed.
    let delivery = fleet.telemetry.stage(Stage::Delivery);
    json.push_str("  \"fleet\": {\n");
    let _ = writeln!(json, "    \"seed\": {},", fleet.seed);
    let _ = writeln!(json, "    \"deployments\": {},", fleet.deployments);
    let _ = writeln!(json, "    \"endpoints\": {},", fleet.endpoints);
    let _ = writeln!(json, "    \"edges\": {},", fleet.edges);
    let _ = writeln!(json, "    \"admitted_edges\": {},", fleet.admitted_edges);
    let _ = writeln!(json, "    \"shards\": {},", fleet.shards);
    let _ = writeln!(json, "    \"install_ms\": {:.1},", fleet.install_ms);
    let _ = writeln!(json, "    \"msgs_per_sec\": {:.0},", fleet.msgs_per_sec);
    let _ = writeln!(json, "    \"published\": {},", fleet.published);
    let _ = writeln!(json, "    \"delivered\": {},", fleet.delivered);
    let _ = writeln!(json, "    \"denied\": {},", fleet.denied);
    let _ = writeln!(json, "    \"latency_p50_ns\": {},", delivery.p50());
    let _ = writeln!(json, "    \"latency_p90_ns\": {},", delivery.p90());
    let _ = writeln!(json, "    \"latency_p99_ns\": {},", delivery.p99());
    let _ = writeln!(json, "    \"latency_p999_ns\": {}", delivery.p999());
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_dataplane.json");
    std::fs::write(path, json).expect("write BENCH_dataplane.json");
    println!("\nwrote {path}");
}

fn main() {
    let messages: u64 =
        std::env::args().nth(1).and_then(|arg| arg.parse().ok()).unwrap_or(1_000_000);
    let fleet_deployments: usize =
        std::env::args().nth(2).and_then(|arg| arg.parse().ok()).unwrap_or(1000);

    println!(
        "legaliot dataplane throughput (cores available: {})",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );

    let mut all = Vec::new();
    // Smart home: 8 patients (sensors + analysers + sanitiser + stats pipeline).
    let home = smart_home(8, 2016);
    all.push((
        home.name.clone(),
        run_topology(&home, messages),
        run_telemetry_overhead(&home, messages),
        run_failpoint_overhead(&home, messages),
        run_persistence_overhead(&home, messages),
    ));
    // Smart city: 4 districts × 8 sensors feeding gateways, analytics, anonymiser.
    let city = smart_city(4, 8);
    all.push((
        city.name.clone(),
        run_topology(&city, messages),
        run_telemetry_overhead(&city, messages),
        run_failpoint_overhead(&city, messages),
        run_persistence_overhead(&city, messages),
    ));

    // Fleet scale: a generated heterogeneous fleet, same publish driver.
    let fleet = run_fleet_bench(1, fleet_deployments, messages);

    write_bench_json(messages, &all, &fleet);
}
