//! A smart-city deployment: district traffic sensors feed council analytics; raw
//! movement data must never reach a commercial advertiser, and an anonymiser gateway is
//! the only sanctioned path (Concerns 1, 5 and 6 of §3 applied outside healthcare).
//!
//! Run with: `cargo run --example smart_city`

use legaliot::compliance::{Obligation, RegulationSet};
use legaliot::core::Deployment;
use legaliot::ifc::{SecurityContext, Tag};
use legaliot::iot::CityWorkload;
use legaliot::middleware::Message;
use legaliot::policy::{Action, ReconfigurationCommand};

fn main() {
    let city = CityWorkload::new(3, 4);
    let mut deployment = Deployment::new("smart-city", "council-engine");

    for thing in city.things() {
        let region = if thing.owner == "ad-corp" { "us" } else { "eu" };
        deployment.add_thing(&thing, region);
    }
    println!(
        "registered {} components across {} districts",
        deployment.middleware().registry().len(),
        city.districts
    );

    // The council's regulation: movement data is personal; it must stay in the EU and
    // must be anonymised before any analytics consumer outside the council.
    let regulation = RegulationSet::new("council-data-charter", "city-council")
        .with(Obligation::GeoResidency { data_tag: Tag::new("movement"), region: "eu".into() })
        .with(Obligation::AnonymiseBeforeAnalytics {
            data_tag: Tag::new("movement"),
            anonymiser: "city-anonymiser".into(),
            analytics: "advertiser".into(),
            source: "council-analytics".into(),
        });
    deployment.add_regulation(&regulation);

    // Wire one district: sensors -> gateway -> council analytics.
    for s in 0..city.sensors_per_district {
        deployment.connect(&format!("district0-sensor{s}"), "district0-gateway").unwrap();
    }
    deployment.connect("district0-gateway", "council-analytics").unwrap();

    // Raw movement data cannot reach the advertiser directly.
    let direct = deployment.connect("council-analytics", "advertiser").unwrap();
    println!("council-analytics -> advertiser (raw): {direct:?}");

    // Send some readings and record their provenance.
    for s in 0..city.sensors_per_district {
        let sensor = format!("district0-sensor{s}");
        deployment.advance(50);
        deployment
            .send(
                &sensor,
                "district0-gateway",
                Message::new("traffic-reading", SecurityContext::public()),
            )
            .unwrap();
        deployment.record_derivation(
            &format!("reading-{s}"),
            &[],
            &sensor,
            "city-council",
            SecurityContext::from_names(["city", "movement"], ["council-dev"]),
        );
    }
    deployment.record_derivation(
        "district0-aggregate",
        &["reading-0", "reading-1", "reading-2", "reading-3"],
        "council-analytics",
        "city-council",
        SecurityContext::from_names(["city", "movement"], ["council-dev"]),
    );

    // The sanctioned path: the anonymiser is declassified by the council engine, then
    // publishes city statistics the advertiser may consume.
    deployment.connect("council-analytics", "city-anonymiser").unwrap();
    deployment.record_derivation(
        "city-statistics-week-1",
        &["district0-aggregate"],
        "city-anonymiser",
        "city-council",
        SecurityContext::from_names(["city"], Vec::<&str>::new()),
    );
    let declassify = ReconfigurationCommand::new(
        "publish-open-statistics",
        "council-engine",
        Action::SetSecurityContext {
            component: "city-anonymiser".into(),
            context: SecurityContext::from_names(["city"], Vec::<&str>::new()),
        },
        deployment.now().as_millis(),
    );
    let snapshot = deployment.context().snapshot();
    let now = deployment.now();
    deployment.middleware_mut().apply_command(&declassify, &snapshot, now);
    let via_anonymiser = deployment.connect("city-anonymiser", "advertiser").unwrap();
    println!("city-anonymiser -> advertiser (anonymised): {via_anonymiser:?}");

    // Compliance check against the charter.
    let report = deployment.compliance_report(&regulation);
    println!("\ncompliance with {}:", report.regulation);
    println!("  records examined: {}", report.records_examined);
    println!("  evidence intact : {}", report.evidence_intact);
    println!("  violations      : {}", report.violations.len());
    for v in &report.violations {
        println!("    - {v}");
    }
    println!("\ndenied flows recorded in audit: {}", deployment.audit().denied_flows().count());
}
