//! Quickstart: label two components, check a flow, enforce it through the middleware,
//! and inspect the audit trail.
//!
//! Run with: `cargo run --example quickstart`

use legaliot::core::Deployment;
use legaliot::ifc::{can_flow, SecurityContext};
use legaliot::iot::{Thing, ThingKind};
use legaliot::middleware::Message;

fn main() {
    // 1. Pure IFC: the flow rule of §6 on its own.
    let sensor_ctx = SecurityContext::from_names(["medical", "ann"], ["hosp-dev", "consent"]);
    let analyser_ctx = SecurityContext::from_names(["medical", "ann"], ["hosp-dev", "consent"]);
    let advertiser_ctx = SecurityContext::public();
    println!("sensor -> analyser   : {}", can_flow(&sensor_ctx, &analyser_ctx));
    println!("sensor -> advertiser : {}", can_flow(&sensor_ctx, &advertiser_ctx));

    // 2. The same policy enforced end-to-end by the middleware.
    let mut deployment = Deployment::new("quickstart", "engine");
    let sensor = Thing::new("ann-sensor", ThingKind::Sensor, "ann", "home", sensor_ctx)
        .produces("sensor-reading");
    let analyser =
        Thing::new("ann-analyser", ThingKind::CloudService, "hospital", "cloud", analyser_ctx)
            .consumes("sensor-reading");
    let advertiser =
        Thing::new("advertiser", ThingKind::Application, "ad-corp", "ad-cloud", advertiser_ctx);
    deployment.add_thing(&sensor, "eu");
    deployment.add_thing(&analyser, "eu");
    deployment.add_thing(&advertiser, "us");

    let ok = deployment.connect("ann-sensor", "ann-analyser").unwrap();
    let blocked = deployment.connect("ann-sensor", "advertiser").unwrap();
    println!("channel sensor -> analyser   : {ok:?}");
    println!("channel sensor -> advertiser : {blocked:?}");

    deployment
        .send(
            "ann-sensor",
            "ann-analyser",
            Message::new("sensor-reading", SecurityContext::public()),
        )
        .unwrap();
    let inbox = deployment.receive("ann-analyser");
    println!("analyser received {} message(s)", inbox.len());

    // 3. Every decision is audited, ready for compliance checking.
    println!("\naudit trail ({} records):", deployment.audit().len());
    for record in deployment.audit().records() {
        println!("  [{:>4}ms] {}", record.at_millis, record.event);
    }
    println!("audit chain: {}", deployment.audit().verify_chain());
}
