//! The paper's worked example end-to-end (§7, Figs. 4–7): medical home monitoring with
//! illegal-flow prevention, sanitiser endorsement, anonymising declassification and
//! policy-driven emergency response.
//!
//! Run with: `cargo run --example home_monitoring`

use legaliot::core::HomeMonitoringScenario;

fn main() {
    let mut scenario = HomeMonitoringScenario::build(2016);

    println!("== Fig. 4: illegal flows are prevented ==");
    let (cross_patient, unsanitised) = scenario.demonstrate_illegal_flows();
    println!("zeb-sensor -> ann-analyser : {cross_patient:?}");
    println!("zeb-sensor -> zeb-analyser : {unsanitised:?}");

    println!("\n== Fig. 5: the input sanitiser endorses Zeb's data ==");
    scenario.run_sanitiser_endorsement();
    println!(
        "input-sanitiser -> zeb-analyser open: {}",
        scenario.deployment.middleware().has_open_channel("input-sanitiser", "zeb-analyser")
    );

    println!("\n== Fig. 6: statistics are declassified before the ward manager ==");
    let stats = scenario.run_statistics_declassification();
    println!("stats-generator -> ward-manager: {stats:?}");

    println!("\n== Fig. 7: monitoring rounds with emergency response ==");
    let outcome = scenario.run(20);
    println!("readings delivered : {}", outcome.delivered);
    println!("flows denied       : {}", outcome.denied);
    println!("emergencies        : {}", outcome.emergencies);
    println!("notifications      : {}", outcome.notifications);
    println!("audit records      : {}", outcome.audit_records);
    println!(
        "emergency channel ann-analyser -> emergency-doctor open: {}",
        scenario.deployment.middleware().has_open_channel("ann-analyser", "emergency-doctor")
    );

    let compliance = outcome.compliance.expect("compliance report");
    println!("\n== Fig. 1: compliance demonstration ==");
    println!("regulation          : {}", compliance.regulation);
    println!("records examined    : {}", compliance.records_examined);
    println!("evidence intact     : {}", compliance.evidence_intact);
    println!("violations          : {}", compliance.violations.len());
    for v in &compliance.violations {
        println!("  - {v}");
    }

    println!("\n== Fig. 11: provenance of the monthly statistics ==");
    let provenance = scenario.deployment.provenance();
    for node in provenance.ancestry("monthly-statistics") {
        println!("  derived from: {}", node.name);
    }
    println!(
        "(DOT export available via ProvenanceGraph::to_dot, {} nodes)",
        provenance.node_count()
    );
}
