//! Crash-recovery inspector for durable audit segment directories: scans a
//! shard's on-disk segments, verifies the cross-segment hash chain, and prints
//! per-segment record counts plus the exact truncation report — every byte the
//! recovery discarded, and why.
//!
//! Run against a real directory (e.g. one produced by a dataplane configured
//! with [`legaliot::dataplane::PersistenceConfig`]):
//!
//! ```text
//! cargo run --example audit_recover -- /path/to/shard-0
//! ```
//!
//! Run with no arguments for a self-contained demo: it writes a chained
//! segment store to a temp directory, tears the final segment mid-frame (a
//! simulated crash during `segment.write`), then recovers and reports.

use std::path::{Path, PathBuf};

use legaliot::audit::{AuditEvent, AuditLog, RecoveryReport, SegmentStore};

fn recover_and_report(dir: &Path) -> RecoveryReport {
    let report = match SegmentStore::recover(dir) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("cannot recover {}: {error}", dir.display());
            std::process::exit(2);
        }
    };

    println!("recovered {}", dir.display());
    println!("  segments:");
    for segment in &report.segments {
        println!(
            "    seq {:>4}  {:>6} records  {:>8} bytes  {}",
            segment.sequence,
            segment.records,
            segment.bytes,
            segment.path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
        );
    }
    if report.segments.is_empty() {
        println!("    (none)");
    }

    if report.truncations.is_empty() {
        println!("  truncations: none — clean shutdown");
    } else {
        println!("  truncations:");
        for t in &report.truncations {
            println!(
                "    seq {:>4}  cut to {:>8} B, dropped {:>6} B after {} records: {}",
                t.sequence, t.offset, t.bytes_dropped, t.records_recovered_before, t.reason,
            );
        }
    }

    println!(
        "  chain: {} records, initial anchor {:#018x}, head {:#018x}, next id {}",
        report.records.len(),
        report.initial_anchor,
        report.head_hash,
        report.next_id,
    );
    println!("  verification: {}", if report.chain.is_intact() { "INTACT" } else { "BROKEN" });
    report
}

/// Builds a three-segment store, then tears the last segment mid-frame the way
/// a crash during `segment.write` would.
fn build_torn_demo_dir() -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("legaliot-audit-recover-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut log = AuditLog::new("demo-shard");
    for i in 0..10u64 {
        log.record(
            AuditEvent::PolicyFired {
                policy: format!("retention-policy-{i}"),
                trigger: "reading".into(),
                actions: 1,
            },
            100 + i,
        );
    }
    let mut store = SegmentStore::create(&dir, 0, 4).expect("create demo store");
    for record in log.records() {
        store.append(record);
    }
    store.seal();

    // Tear the newest segment 5 bytes short of a frame boundary.
    let mut segments: Vec<PathBuf> =
        std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
    segments.sort();
    let last = segments.last().expect("demo store has segments");
    let len = std::fs::metadata(last).unwrap().len();
    std::fs::OpenOptions::new().write(true).open(last).unwrap().set_len(len - 5).unwrap();
    println!(
        "demo: wrote 10 records across {} segments, then tore {} to {} bytes ({} short)\n",
        segments.len(),
        last.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
        len - 5,
        5,
    );
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [dir] => {
            let report = recover_and_report(Path::new(dir));
            std::process::exit(if report.chain.is_intact() { 0 } else { 1 });
        }
        [] => {
            let dir = build_torn_demo_dir();
            let report = recover_and_report(&dir);
            assert!(report.chain.is_intact(), "demo recovery must verify");
            assert_eq!(report.truncations.len(), 1, "demo tear must be reported");

            // Recovery repaired the directory in place: a second scan is clean,
            // and a resumed log extends the recovered chain.
            println!("\nre-scanning the repaired directory:");
            let again = recover_and_report(&dir);
            assert!(again.is_clean(), "second recovery must be clean");
            let mut resumed = again.resume_log("demo-shard");
            resumed.record(
                AuditEvent::PolicyFired {
                    policy: "post-recovery".into(),
                    trigger: "restart".into(),
                    actions: 1,
                },
                200,
            );
            let mut combined = again.records.clone();
            combined.extend(resumed.records().iter().cloned());
            assert!(
                AuditLog::verify_records(again.initial_anchor, &combined).is_intact(),
                "resumed chain must verify"
            );
            println!(
                "\nresumed log continues the chain: record {} anchors on {:#018x}",
                again.next_id, again.head_hash
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
        _ => {
            eprintln!("usage: audit_recover [SEGMENT_DIR]");
            std::process::exit(64);
        }
    }
}
