//! Integration tests reproducing the paper's figures end-to-end across crates.
//! One test (or group) per figure; see EXPERIMENTS.md for the index.

use legaliot::audit::{AuditEventKind, ProvenanceGraph};
use legaliot::compliance::RegulationSet;
use legaliot::core::{Deployment, HomeMonitoringScenario};
use legaliot::ifc::{can_flow, Entity, Gateway, PrivilegeKind, SecurityContext, Transformation};
use legaliot::iot::{Chain, HomeMonitoringWorkload, Thing, ThingKind};
use legaliot::kernel::{EnforcementMode, ObjectKind, Os};
use legaliot::middleware::{DeliveryOutcome, Message};
use legaliot::net::{Network, NodeKind};

fn ctx(s: &[&str], i: &[&str]) -> SecurityContext {
    SecurityContext::from_names(s.iter().copied(), i.iter().copied())
}

/// Fig. 3 — declassification and endorsement across security-context domains.
#[test]
fn fig3_declassification_and_endorsement_lattice() {
    let d_s1 = ctx(&["s1"], &[]);
    let d_s1s2 = ctx(&["s1", "s2"], &[]);
    let d_s3 = ctx(&["s3"], &[]);
    let d_i1 = ctx(&[], &["i1"]);

    // Allowed flow: s1 -> {s1, s2}; then confined to that (or more constrained) domains.
    assert!(can_flow(&d_s1, &d_s1s2).is_allowed());
    assert!(can_flow(&d_s1s2, &d_s1).is_denied());
    // Prevented flows between unrelated domains.
    assert!(can_flow(&d_s1, &d_s3).is_denied());
    assert!(can_flow(&d_s1, &d_i1).is_denied());

    // A declassifier entity bridges {s1,s2} back towards the public domain.
    let mut declassifier = Entity::active("declassifier", d_s1s2.clone());
    declassifier.privileges_mut().grant("s1", PrivilegeKind::SecrecyRemove);
    declassifier.privileges_mut().grant("s2", PrivilegeKind::SecrecyRemove);
    let transformation = Transformation::named("release-after-embargo")
        .removing_secrecy("s1")
        .removing_secrecy("s2");
    let gateway = Gateway::new(declassifier, transformation, ctx(&[], &[])).unwrap();
    assert!(gateway.bridges(&d_s1s2, &ctx(&[], &[])));
}

/// Fig. 2 / E2 — functional component chains of increasing length enforce every hop.
#[test]
fn fig2_chain_enforcement_across_lengths() {
    for length in [2usize, 4, 8, 16] {
        let chain = Chain::synthetic("stage", length);
        let mut deployment = Deployment::new("chain", "engine");
        let shared = ctx(&["pipeline"], &[]);
        for stage in &chain.stages {
            deployment.add_thing(
                &Thing::new(
                    stage.clone(),
                    ThingKind::CloudService,
                    "operator",
                    "node",
                    shared.clone(),
                )
                .produces("item")
                .consumes("item"),
                "eu",
            );
        }
        for (from, to) in chain.hops() {
            assert!(deployment.connect(&from, &to).unwrap().is_delivered());
            assert!(deployment
                .send(&from, &to, Message::new("item", SecurityContext::public()))
                .unwrap()
                .is_delivered());
        }
        // One channel event + one flow check per hop, at minimum.
        assert!(deployment.audit().len() >= 2 * chain.len());
    }
}

/// Fig. 4 — Zeb's data cannot reach Ann's analyser; Ann's can.
#[test]
fn fig4_illegal_flow_prevented() {
    let mut scenario = HomeMonitoringScenario::build(4);
    let (cross, unsanitised) = scenario.demonstrate_illegal_flows();
    assert!(matches!(cross, DeliveryOutcome::DeniedByIfc(_)));
    assert!(matches!(unsanitised, DeliveryOutcome::DeniedByIfc(_)));
    assert!(scenario.deployment.middleware().has_open_channel("ann-sensor", "ann-analyser"));
    // The denials are visible in the audit trail (accountability).
    assert!(scenario.deployment.audit().of_kind(AuditEventKind::ChannelChanged).any(
        |r| !matches!(
            r.event,
            legaliot::audit::AuditEvent::ChannelChanged { established: true, .. }
        )
    ));
}

/// Fig. 5 — the input sanitiser endorses Zeb's non-standard data: the raw reading is
/// accepted in the device context, and only after the (privileged) context change does
/// the converted reading reach Zeb's hospital analyser.
#[test]
fn fig5_endorsement_via_sanitiser() {
    let mut scenario = HomeMonitoringScenario::build(5);
    scenario.run_sanitiser_endorsement();
    assert!(scenario.deployment.middleware().has_open_channel("input-sanitiser", "zeb-analyser"));
    // Relay one reading through the alternating-context sanitiser pipeline.
    assert!(scenario.relay_third_party_reading("zeb", 82));
    assert_eq!(scenario.deployment.receive("zeb-analyser").len(), 1);
    // An unknown patient cannot be relayed.
    assert!(!scenario.relay_third_party_reading("nobody", 82));
}

/// Fig. 6 — anonymising declassification before the ward manager.
#[test]
fn fig6_declassification_for_statistics() {
    let mut scenario = HomeMonitoringScenario::build(6);
    let outcome = scenario.run_statistics_declassification();
    assert!(outcome.is_delivered());
    // The ward manager never gains access to raw per-patient data.
    let raw = scenario.deployment.connect("ann-analyser", "ward-manager").unwrap();
    assert!(matches!(raw, DeliveryOutcome::DeniedByIfc(_)));
}

/// Fig. 7 — emergency detection reconfigures the system and alerts responders.
#[test]
fn fig7_emergency_response_loop() {
    let mut scenario = HomeMonitoringScenario::build(77);
    scenario.run_sanitiser_endorsement();
    scenario.workload.emergency_probability = 1.0;
    let outcome = scenario.run(2);
    assert!(outcome.emergencies > 0);
    assert!(scenario.deployment.middleware().has_open_channel("ann-analyser", "emergency-doctor"));
    assert!(!scenario.deployment.middleware().actuations().is_empty());
    assert!(outcome.notifications > 0);
}

/// Fig. 8 — third-party reconfiguration is applied only from authorised issuers.
#[test]
fn fig8_third_party_reconfiguration_authorisation() {
    let mut deployment = Deployment::new("fig8", "trusted-engine");
    let shared = ctx(&["app"], &[]);
    for name in ["component-a", "component-b"] {
        deployment.add_thing(
            &Thing::new(name, ThingKind::CloudService, "operator", "node", shared.clone()),
            "eu",
        );
    }
    use legaliot::middleware::{ControlMessage, ReconfigureOp};
    let snapshot = deployment.context().snapshot();
    let now = deployment.now();
    // Authorised engine connects A to B.
    let ok = deployment.middleware_mut().handle_control(
        &ControlMessage::new(
            "component-a",
            ReconfigureOp::Connect { to: "component-b".into() },
            "trusted-engine",
            "orchestration",
            1,
        ),
        &snapshot,
        now,
    );
    assert!(ok.is_applied());
    assert!(deployment.middleware().has_open_channel("component-a", "component-b"));
    // An unknown third party is refused.
    let rejected = deployment.middleware_mut().handle_control(
        &ControlMessage::new("component-a", ReconfigureOp::Isolate, "mallory", "none", 2),
        &snapshot,
        now,
    );
    assert!(!rejected.is_applied());
    // Both attempts are audited.
    assert_eq!(deployment.audit().of_kind(AuditEventKind::Reconfigured).count(), 2);
}

/// Fig. 9 — two-level enforcement: kernel-level IFC locally, messaging-level IFC across
/// machines, labels preserved across the hand-off.
#[test]
fn fig9_cross_machine_two_level_enforcement() {
    // Kernel level on the home gateway: the sensor process writes a labelled reading.
    let mut home_os = Os::new("ann-home-gateway", EnforcementMode::Enforce);
    let sensor_proc =
        home_os.spawn("sensor-daemon", ctx(&["medical", "ann"], &["hosp-dev", "consent"]));
    let reading = home_os.create_object(sensor_proc, "reading-1", ObjectKind::File).unwrap();
    assert!(home_os.write(sensor_proc, reading, 1).unwrap().is_completed());
    // A co-located untrusted process cannot read it.
    let snoop = home_os.spawn("snoop", SecurityContext::public());
    assert!(!home_os.read(snoop, reading, 2).unwrap().is_completed());

    // Network: the gateway is connected to the hospital cloud.
    let mut network = Network::new();
    let gw = network.add_node("ann-home-gateway", NodeKind::Gateway, "ann-home").unwrap();
    let cloud = network.add_node("hospital-cloud", NodeKind::Cloud, "hospital").unwrap();
    network.link(gw, cloud, 20).unwrap();
    assert!(!network.same_domain(gw, cloud));

    // Messaging level: the middleware carries the kernel-level context across machines
    // and enforces the same rule at the receiving side.
    let mut deployment = Deployment::new("fig9", "hospital-engine");
    let sensor_ctx = home_os.process_context(sensor_proc).unwrap().clone();
    deployment.add_thing(
        &Thing::new("ann-sensor", ThingKind::Sensor, "ann", "ann-home-gateway", sensor_ctx)
            .produces("sensor-reading"),
        "eu",
    );
    deployment.add_thing(
        &Thing::new(
            "ann-analyser",
            ThingKind::CloudService,
            "hospital",
            "hospital-cloud",
            ctx(&["medical", "ann"], &["hosp-dev", "consent"]),
        )
        .consumes("sensor-reading"),
        "eu",
    );
    deployment.add_thing(
        &Thing::new(
            "public-dashboard",
            ThingKind::Application,
            "city",
            "hospital-cloud",
            SecurityContext::public(),
        ),
        "eu",
    );
    assert!(deployment.connect("ann-sensor", "ann-analyser").unwrap().is_delivered());
    assert!(matches!(
        deployment.connect("ann-sensor", "public-dashboard").unwrap(),
        DeliveryOutcome::DeniedByIfc(_)
    ));
    network.send(gw, cloud, &b"reading-1"[..]).unwrap();
    network.advance(25);
    assert_eq!(network.receive(cloud).len(), 1);
}

/// Fig. 10 — message-level tags: the sensitive attribute is quenched for receivers that
/// lack the app-specific tag.
#[test]
fn fig10_message_level_tags_source_quenching() {
    use legaliot::ifc::Label;
    use legaliot::middleware::{AttributeValue, MessageSchema};

    let mut deployment = Deployment::new("fig10", "engine");
    deployment.add_thing(
        &Thing::new("app-vm1", ThingKind::Application, "tenant", "vm1", ctx(&["A", "B"], &[]))
            .produces("person"),
        "eu",
    );
    deployment.add_thing(
        &Thing::new(
            "analyser-vm2",
            ThingKind::CloudService,
            "tenant",
            "vm2",
            ctx(&["A", "B"], &[]),
        )
        .consumes("person"),
        "eu",
    );
    deployment.add_thing(
        &Thing::new(
            "trusted-vault",
            ThingKind::CloudService,
            "tenant",
            "vm2",
            ctx(&["A", "B", "C"], &[]),
        )
        .consumes("person"),
        "eu",
    );
    // Attribute `name` carries the messaging-level tag C; `country` does not.
    deployment.middleware_mut().registry_mut().register_schema(
        MessageSchema::new("person")
            .attribute("country", legaliot::middleware::schema::AttributeKind::Text)
            .sensitive_attribute(
                "name",
                legaliot::middleware::schema::AttributeKind::Text,
                Label::from_names(["C"]),
            ),
    );
    deployment.connect("app-vm1", "analyser-vm2").unwrap();
    deployment.connect("app-vm1", "trusted-vault").unwrap();

    let message = || {
        Message::new("person", SecurityContext::public())
            .with("name", AttributeValue::Text("Ann".into()))
            .with("country", AttributeValue::Text("UK".into()))
    };
    match deployment.send("app-vm1", "analyser-vm2", message()).unwrap() {
        DeliveryOutcome::Delivered { quenched_attributes } => {
            assert_eq!(quenched_attributes, vec!["name".to_string()]);
        }
        other => panic!("expected delivery, got {other:?}"),
    }
    match deployment.send("app-vm1", "trusted-vault", message()).unwrap() {
        DeliveryOutcome::Delivered { quenched_attributes } => {
            assert!(quenched_attributes.is_empty())
        }
        other => panic!("expected delivery, got {other:?}"),
    }
    let vault_inbox = deployment.receive("trusted-vault");
    assert!(vault_inbox[0].attributes.contains_key("name"));
    let analyser_inbox = deployment.receive("analyser-vm2");
    assert!(!analyser_inbox[0].attributes.contains_key("name"));
    assert!(analyser_inbox[0].attributes.contains_key("country"));
}

/// Fig. 11 — the provenance graph built from enforcement records supports audit queries.
#[test]
fn fig11_provenance_graph_from_audit() {
    let mut scenario = HomeMonitoringScenario::build(11);
    scenario.run_sanitiser_endorsement();
    scenario.run_statistics_declassification();
    let provenance = scenario.deployment.provenance();
    assert!(provenance.derivation_is_acyclic());
    let ancestry: Vec<_> =
        provenance.ancestry("monthly-statistics").into_iter().map(|n| n.name.clone()).collect();
    assert!(ancestry.contains(&"ann-reading".to_string()));
    assert!(ancestry.contains(&"zeb-analysis".to_string()));
    let dot = provenance.to_dot();
    assert!(dot.contains("monthly-statistics"));

    // The same graph can also be reconstructed from the middleware audit log alone.
    let from_log = ProvenanceGraph::from_log(scenario.deployment.audit());
    assert!(from_log.node_count() > 0);
}

/// Fig. 1 / E1 — the full feedback loop: regulation compiled to policy, enforced,
/// audited, and demonstrably compliant; violations surface when obligations are unmet.
#[test]
fn fig1_feedback_loop_compliance() {
    let mut scenario = HomeMonitoringScenario::build(1);
    scenario.run_sanitiser_endorsement();
    scenario.workload.emergency_probability = 0.0;
    let outcome = scenario.run(5);
    let report = outcome.compliance.expect("report");
    assert!(report.is_compliant(), "violations: {:?}", report.violations);
    assert!(report.records_examined > 0);
    assert_eq!(report.obligations_checked, 5);
}

/// Failure injection: a rogue component is isolated by policy and cannot re-join flows;
/// a crashed node drops deliveries without breaking audit verifiability.
#[test]
fn failure_injection_rogue_component_and_node_crash() {
    // Rogue component isolation.
    let mut scenario = HomeMonitoringScenario::build(13);
    use legaliot::middleware::{ControlMessage, ReconfigureOp};
    let snapshot = scenario.deployment.context().snapshot();
    let now = scenario.deployment.now();
    let outcome = scenario.deployment.middleware_mut().handle_control(
        &ControlMessage::new(
            "ann-sensor",
            ReconfigureOp::Isolate,
            "hospital-engine",
            "incident",
            1,
        ),
        &snapshot,
        now,
    );
    assert!(outcome.is_applied());
    // Isolation tore down the open channel; the bus reports the closed channel as a
    // hard error until it is re-established (which isolation prevents).
    assert_eq!(
        scenario.deployment.send(
            "ann-sensor",
            "ann-analyser",
            Message::new("sensor-reading", SecurityContext::public())
        ),
        Err(legaliot::middleware::MiddlewareError::ChannelClosed {
            from: "ann-sensor".into(),
            to: "ann-analyser".into()
        })
    );
    assert!(scenario.deployment.audit().verify_chain().is_intact());

    // Node crash in the network substrate.
    let mut network = Network::new();
    let a = network.add_node("gw", NodeKind::Gateway, "home").unwrap();
    let b = network.add_node("cloud", NodeKind::Cloud, "hospital").unwrap();
    network.link(a, b, 10).unwrap();
    network.send(a, b, &b"x"[..]).unwrap();
    network.set_node_up(b, false).unwrap();
    assert_eq!(network.advance(100), 0);
    assert!(network.receive(b).is_empty());
}

/// Consent withdrawal: without recorded consent the same flows become violations (E17).
#[test]
fn consent_governs_compliance_verdict() {
    let workload = HomeMonitoringWorkload::fig7(3);
    let mut deployment = Deployment::new("consent-test", "engine");
    for thing in workload.things() {
        deployment.add_thing(&thing, "eu");
    }
    let regulation = RegulationSet::eu_style_data_protection("ann");
    deployment.add_regulation(&regulation);
    deployment.connect("ann-sensor", "ann-analyser").unwrap();
    // Tag the flow's data as personal by joining the tag into the sensor context.
    use legaliot::middleware::{ControlMessage, ReconfigureOp};
    let snapshot = deployment.context().snapshot();
    let now = deployment.now();
    deployment.middleware_mut().handle_control(
        &ControlMessage::new(
            "ann-sensor",
            ReconfigureOp::AddTag { tag: legaliot::ifc::Tag::new("personal"), secrecy: true },
            "engine",
            "classification",
            1,
        ),
        &snapshot,
        now,
    );
    // Destination also needs the tag for the flow to be allowed at all.
    deployment.middleware_mut().handle_control(
        &ControlMessage::new(
            "ann-analyser",
            ReconfigureOp::AddTag { tag: legaliot::ifc::Tag::new("personal"), secrecy: true },
            "engine",
            "classification",
            2,
        ),
        &snapshot,
        now,
    );
    deployment.connect("ann-sensor", "ann-analyser").unwrap();
    deployment
        .send(
            "ann-sensor",
            "ann-analyser",
            Message::new("sensor-reading", SecurityContext::public()),
        )
        .unwrap();
    // No consent recorded: violation.
    let report = deployment.compliance_report(&regulation);
    assert!(!report.is_compliant());
    // Consent recorded: the same evidence is compliant.
    deployment.record_consent("ann");
    let report = deployment.compliance_report(&regulation);
    assert!(report.violations.iter().all(|v| !v.obligation.starts_with("consent:")));
}
