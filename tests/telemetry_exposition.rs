//! Exposition smoke test: builds a small dataplane, publishes through it, and
//! round-trips the telemetry snapshot through the documented JSON exposition
//! schema with an independent parser (the vendored `serde_json`), asserting the
//! fields a scraper would rely on are present, typed, and internally consistent.

use legaliot::context::{ContextSnapshot, Timestamp};
use legaliot::dataplane::{smart_home, Dataplane, DataplaneConfig};
use serde_json::Value;

const MESSAGES: u64 = 2_000;

fn driven_dataplane() -> Dataplane {
    let topology = smart_home(2, 2016);
    let config = DataplaneConfig { shards: 2, ..DataplaneConfig::default() };
    let dataplane = Dataplane::new(topology.name.clone(), config);
    topology
        .install_with_payload_schemas(&dataplane, &ContextSnapshot::default(), Timestamp(1))
        .expect("topology installs");
    let pairs = topology.publisher_messages();
    let mut published = 0u64;
    let mut clock = 2u64;
    'outer: loop {
        for (publisher, message) in &pairs {
            published +=
                dataplane.publish_message(publisher, message, Timestamp(clock)).unwrap() as u64;
            clock += 1;
            if published >= MESSAGES {
                break 'outer;
            }
        }
    }
    dataplane.drain();
    dataplane
}

#[test]
fn json_exposition_round_trips_through_an_independent_parser() {
    let dataplane = driven_dataplane();
    let stats = dataplane.stats();
    let snapshot = dataplane.telemetry();
    let parsed: Value =
        serde_json::from_str(&snapshot.to_json()).expect("exposition is well-formed JSON");

    // Counters mirror DataplaneStats exactly.
    let counters = parsed["counters"].as_object().expect("counters object");
    assert_eq!(counters.get("published").and_then(Value::as_u64), Some(stats.published));
    assert_eq!(counters.get("delivered").and_then(Value::as_u64), Some(stats.delivered));
    assert!(counters.contains_key("queue_consumer_parks"));
    assert!(counters.contains_key("queue_producer_waits"));

    // Gauges carry the queue-depth high-water mark.
    assert!(parsed["gauges"]["queue_depth_hwm"].as_u64().is_some());

    // The merged per-stage histograms: every delivered message landed one
    // end-to-end `stage.delivery` sample, with ordered quantile estimates and
    // buckets that sum back to the count.
    let delivery = &parsed["histograms"]["stage.delivery"];
    assert_eq!(delivery["count"].as_u64(), Some(stats.delivered));
    let (p50, p99, p999) = (
        delivery["p50"].as_u64().expect("p50"),
        delivery["p99"].as_u64().expect("p99"),
        delivery["p999"].as_u64().expect("p999"),
    );
    assert!(0 < p50 && p50 <= p99 && p99 <= p999);
    assert!(delivery["min"].as_u64().unwrap() <= delivery["max"].as_u64().unwrap());
    let bucket_total: u64 = delivery["buckets"]
        .as_array()
        .expect("buckets array")
        .iter()
        .map(|b| b[2].as_u64().expect("bucket count"))
        .sum();
    assert_eq!(bucket_total, stats.delivered);

    // Per-shard histograms exist for each configured shard and fold into the merge.
    let shard_total: u64 = (0..dataplane.config().shards)
        .map(|i| {
            parsed["histograms"][format!("shard{i}.stage.delivery").as_str()]["count"]
                .as_u64()
                .expect("per-shard delivery count")
        })
        .sum();
    assert_eq!(shard_total, stats.delivered);

    // The text exposition names the same histogram with the same count.
    let text = snapshot.to_text();
    assert!(text.lines().any(|line| {
        line.starts_with("histogram stage.delivery ")
            && line.contains(&format!("count={}", stats.delivered))
    }));

    dataplane.shutdown();
}
