//! Smoke tests mirroring the core entry path of each example in `examples/`,
//! so the public API the examples showcase cannot drift without failing CI.
//! (CI additionally runs `cargo run --example quickstart` end-to-end.)

use legaliot::compliance::ComplianceChecker;
use legaliot::core::{Deployment, HomeMonitoringScenario};
use legaliot::ifc::{can_flow, SecurityContext};
use legaliot::iot::{CityWorkload, Thing, ThingKind};
use legaliot::middleware::Message;

/// `examples/quickstart.rs`: label components, check flows, enforce through
/// the middleware, inspect the audit chain.
#[test]
fn quickstart_entry_path() {
    let sensor_ctx = SecurityContext::from_names(["medical", "ann"], ["hosp-dev", "consent"]);
    let analyser_ctx = SecurityContext::from_names(["medical", "ann"], ["hosp-dev", "consent"]);
    let advertiser_ctx = SecurityContext::public();
    assert!(can_flow(&sensor_ctx, &analyser_ctx).is_allowed());
    assert!(can_flow(&sensor_ctx, &advertiser_ctx).is_denied());

    let mut deployment = Deployment::new("quickstart", "engine");
    deployment.add_thing(
        &Thing::new("ann-sensor", ThingKind::Sensor, "ann", "home", sensor_ctx)
            .produces("sensor-reading"),
        "eu",
    );
    deployment.add_thing(
        &Thing::new("ann-analyser", ThingKind::CloudService, "hospital", "cloud", analyser_ctx)
            .consumes("sensor-reading"),
        "eu",
    );
    deployment.add_thing(
        &Thing::new("advertiser", ThingKind::Application, "ad-corp", "ad-cloud", advertiser_ctx),
        "us",
    );

    assert!(deployment.connect("ann-sensor", "ann-analyser").unwrap().is_delivered());
    assert!(!deployment.connect("ann-sensor", "advertiser").unwrap().is_delivered());

    deployment
        .send(
            "ann-sensor",
            "ann-analyser",
            Message::new("sensor-reading", SecurityContext::public()),
        )
        .unwrap();
    assert_eq!(deployment.receive("ann-analyser").len(), 1);
    assert!(!deployment.audit().is_empty());
    assert!(deployment.audit().verify_chain().is_intact());
}

/// `examples/home_monitoring.rs`: the Fig. 4 scenario delivers readings and
/// keeps an intact audit chain over several rounds.
#[test]
fn home_monitoring_entry_path() {
    let mut scenario = HomeMonitoringScenario::build(2016);
    scenario.run_sanitiser_endorsement();
    let outcome = scenario.run(3);
    assert!(outcome.delivered > 0);
    assert!(scenario.deployment.audit().verify_chain().is_intact());
}

/// `examples/smart_city.rs`: a multi-district city workload registers all of
/// its components with the deployment.
#[test]
fn smart_city_entry_path() {
    let city = CityWorkload::new(3, 4);
    let mut deployment = Deployment::new("smart-city", "council-engine");
    for thing in city.things() {
        let region = if thing.owner == "ad-corp" { "us" } else { "eu" };
        deployment.add_thing(&thing, region);
    }
    assert!(deployment.middleware().registry().len() >= 3 * 4);
}

/// `examples/compliance_audit.rs`: obligations → enforcement → audit →
/// compliance report → liability apportionment.
#[test]
fn compliance_audit_entry_path() {
    let mut scenario = HomeMonitoringScenario::build(7);
    scenario.run_sanitiser_endorsement();
    scenario.run_statistics_declassification();
    let outcome = scenario.run(5);
    assert!(outcome.delivered > 0);

    let regulation = scenario.regulation().clone();
    let report = scenario.deployment.compliance_report(&regulation);
    assert!(report.evidence_intact);

    let liability = ComplianceChecker::liability(scenario.deployment.provenance(), "ann-analysis");
    assert_eq!(liability.data_item, "ann-analysis");
}

/// `examples/dataplane_throughput.rs`: the smart-home and smart-city topologies
/// install onto the dataplane, traffic is enforced with the decision cache hot,
/// and every per-shard audit chain verifies.
#[test]
fn dataplane_throughput_entry_path() {
    use legaliot::context::Timestamp;
    use legaliot::dataplane::{smart_city, smart_home, Dataplane, DataplaneConfig};

    for topology in [smart_home(4, 2016), smart_city(2, 3)] {
        let dataplane = Dataplane::new(topology.name.clone(), DataplaneConfig::default());
        let admitted = dataplane_install(&topology, &dataplane);
        assert_eq!(admitted, topology.edges.len());
        let mut clock = 2;
        for _ in 0..50 {
            for publisher in topology.publishers() {
                dataplane.publish(&publisher, Timestamp(clock)).unwrap();
                clock += 1;
            }
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, stats.published);
        assert!(stats.cache_hit_ratio() > 0.9);
        let report = dataplane.shutdown();
        assert!(report.shard_audit.iter().all(|log| log.verify_chain().is_intact()));
        assert!(report.control_audit.verify_chain().is_intact());
    }
}

/// `examples/churn_soak.rs`: a failpoint registry injects a supervised shard
/// panic mid-run; the accounting identity stays exact, the restart is counted
/// and evidenced, and every audit chain verifies across the restart.
#[test]
fn churn_soak_entry_path() {
    use legaliot::audit::AuditEvent;
    use legaliot::context::{ContextSnapshot, ContextStore, Timestamp};
    use legaliot::dataplane::{
        Dataplane, DataplaneConfig, FailpointRegistry, FailpointSite, FailpointSpec, FaultKind,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let registry = Arc::new(FailpointRegistry::new(9).with_spec(
        FailpointSpec::on_hits(FailpointSite::ShardProcess, FaultKind::Panic, 5, 0).limit(1),
    ));
    let store = Arc::new(ContextStore::with_retention(64));
    let config = DataplaneConfig {
        shards: 1,
        failpoints: Some(Arc::clone(&registry)),
        restart_backoff: Duration::from_micros(100),
        ..DataplaneConfig::default()
    };
    let dataplane = Dataplane::with_context_store("soak-smoke", config, store);
    let topology = legaliot::dataplane::smart_home(2, 7);
    topology
        .install_with_payload_schemas(&dataplane, &ContextSnapshot::default(), Timestamp(1))
        .expect("topology installs");
    let pairs = topology.publisher_messages();
    let mut clock = 2u64;
    for _ in 0..40 {
        for (publisher, message) in &pairs {
            dataplane.publish_message(publisher, message, Timestamp(clock)).unwrap();
            clock += 1;
        }
    }
    dataplane.drain();
    let stats = dataplane.stats();
    assert_eq!(registry.fired(FailpointSite::ShardProcess), 1);
    assert_eq!(stats.shard_restarts, 1);
    assert_eq!(
        stats.published,
        stats.delivered + stats.denied + stats.missing_endpoint + stats.deliveries_lost
    );
    let report = dataplane.shutdown();
    assert!(report.worker_panics.is_empty());
    assert!(report.shard_audit.iter().all(|log| log.verify_chain().is_intact()));
    assert!(report
        .merged_timeline()
        .iter()
        .any(|record| matches!(record.event, AuditEvent::ShardRestarted { .. })));
}

/// `examples/audit_recover.rs`: build a segment store, tear the final segment
/// mid-frame, recover the verified prefix with the tear reported, and resume
/// the chain from the recovered head.
#[test]
fn audit_recover_entry_path() {
    use legaliot::audit::{AuditEvent, AuditLog, SegmentStore};
    use std::path::PathBuf;

    let dir =
        std::env::temp_dir().join(format!("legaliot-audit-recover-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut log = AuditLog::new("demo-shard");
    for i in 0..10u64 {
        log.record(
            AuditEvent::PolicyFired { policy: format!("p{i}"), trigger: "t".into(), actions: 1 },
            100 + i,
        );
    }
    let mut store = SegmentStore::create(&dir, 0, 4).expect("create store");
    for record in log.records() {
        assert!(store.append(record));
    }
    assert!(store.seal());

    let mut segments: Vec<PathBuf> =
        std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
    segments.sort();
    let last = segments.last().unwrap();
    let len = std::fs::metadata(last).unwrap().len();
    std::fs::OpenOptions::new().write(true).open(last).unwrap().set_len(len - 5).unwrap();

    let report = SegmentStore::recover(&dir).expect("recover");
    assert!(report.chain.is_intact());
    assert_eq!(report.records.len(), 9);
    assert_eq!(report.truncations.len(), 1);
    assert_eq!(report.segments.len(), 3);
    assert_eq!(report.next_id, 9);

    let again = SegmentStore::recover(&dir).expect("recover repaired dir");
    assert!(again.is_clean());
    let mut resumed = again.resume_log("demo-shard");
    resumed.record(
        AuditEvent::PolicyFired { policy: "post".into(), trigger: "t".into(), actions: 1 },
        200,
    );
    let mut combined = again.records.clone();
    combined.extend(resumed.records().iter().cloned());
    assert!(AuditLog::verify_records(again.initial_anchor, &combined).is_intact());
    std::fs::remove_dir_all(&dir).unwrap();
}

fn dataplane_install(
    topology: &legaliot::dataplane::Topology,
    dataplane: &legaliot::dataplane::Dataplane,
) -> usize {
    use legaliot::context::{ContextSnapshot, Timestamp};
    topology.install(dataplane, &ContextSnapshot::default(), Timestamp(1)).expect("installs")
}
