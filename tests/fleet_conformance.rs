//! Differential fleet conformance: a seeded generator synthesizes 1000+
//! heterogeneous deployments (homes, hospital wards, vehicle fleets) with
//! endpoints, schemas, policies, secrecy labels and a churn script; a slow,
//! obviously-correct reference model predicts exactly which subscriber must
//! receive which post-quench message; and the real dataplane is checked
//! against that prediction **record for record**:
//!
//! 1. fault-free runs match exactly — every observed delivery equals its
//!    predicted post-quench content (both payload modes), every admission
//!    outcome matches, and the counters agree to the unit;
//! 2. under injected faults (mid-unit shard panics, audit-append crashes,
//!    scheduling delays) enforcement stays contained: every observed delivery
//!    was predicted with exactly its predicted content, every abandoned unit
//!    is evidenced as `DeliveryLost` at a predicted key, the counters equal
//!    the prediction minus precisely the evidenced losses, and the identity
//!    `published == delivered + denied + missing + lost` holds exactly;
//! 3. audit chains verify intact across every injected restart.
//!
//! The run is reproducible from its seed: `LEGALIOT_FLEET_SEED` (default 1),
//! `LEGALIOT_FLEET_DEPLOYMENTS` (default 1000), `LEGALIOT_FLEET_ROUNDS`
//! (default 4) and `LEGALIOT_FLEET_SHARDS` (default 4) tune the matrix, and
//! every failure message embeds the generating seed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use legaliot::dataplane::{
    DataplaneConfig, FailpointRegistry, FailpointSite, FailpointSpec, FaultKind, PayloadMode,
};
use legaliot::fleet::{
    generate, predict, run_fleet, Fleet, FleetConfig, PredictedOutcome, Prediction, RunOutcome,
};
use legaliot::middleware::Message;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Aborts the whole process if `done` is not set within `limit` — a
/// conformance run that hangs must fail loudly, not eat the CI job's timeout.
fn watchdog(label: &'static str, limit: Duration, done: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let start = std::time::Instant::now();
        while start.elapsed() < limit {
            if done.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("watchdog: `{label}` still running after {limit:?} — aborting");
        std::process::exit(1);
    });
}

/// The environment-tuned fleet under test, with the context string every
/// assertion embeds so any failure reproduces from its message alone.
fn fleet_under_test() -> (Fleet, usize, String) {
    let seed = env_u64("LEGALIOT_FLEET_SEED", 1);
    let deployments = env_u64("LEGALIOT_FLEET_DEPLOYMENTS", 1000) as usize;
    let rounds = env_u64("LEGALIOT_FLEET_ROUNDS", 4) as usize;
    let shards = env_u64("LEGALIOT_FLEET_SHARDS", 4) as usize;
    let ctx = format!(
        "[reproduce with LEGALIOT_FLEET_SEED={seed} LEGALIOT_FLEET_DEPLOYMENTS={deployments} \
         LEGALIOT_FLEET_ROUNDS={rounds} LEGALIOT_FLEET_SHARDS={shards}]"
    );
    (generate(FleetConfig { seed, deployments, rounds }), shards, ctx)
}

/// The predicted post-quench deliveries as a plain map, keyed like the
/// harness observes them.
fn predicted_deliveries(prediction: &Prediction) -> BTreeMap<(String, String, u64), Message> {
    prediction
        .outcomes
        .iter()
        .filter_map(|(key, outcome)| match outcome {
            PredictedOutcome::Delivered(message) => Some((key.clone(), (**message).clone())),
            PredictedOutcome::Denied => None,
        })
        .collect()
}

/// Asserts two delivery maps are identical, reporting the first divergences
/// (missing, unexpected, content mismatch) rather than dumping both maps.
fn assert_deliveries_match(
    observed: &BTreeMap<(String, String, u64), Message>,
    expected: &BTreeMap<(String, String, u64), Message>,
    ctx: &str,
) {
    let mut diffs = Vec::new();
    for (key, message) in expected {
        match observed.get(key) {
            None => diffs.push(format!("missing delivery {key:?}")),
            Some(seen) if seen != message => diffs.push(format!(
                "content mismatch at {key:?}: observed {seen:?}, predicted {message:?}"
            )),
            Some(_) => {}
        }
        if diffs.len() >= 5 {
            break;
        }
    }
    for key in observed.keys() {
        if !expected.contains_key(key) {
            diffs.push(format!("unpredicted delivery {key:?}"));
        }
        if diffs.len() >= 5 {
            break;
        }
    }
    assert!(
        diffs.is_empty(),
        "dataplane diverged from the oracle {ctx}: {} predicted, {} observed; first diffs:\n  {}",
        expected.len(),
        observed.len(),
        diffs.join("\n  ")
    );
}

fn assert_admissions_match(outcome: &RunOutcome, prediction: &Prediction, ctx: &str) {
    let predicted: Vec<(String, String, bool)> = prediction
        .admissions
        .iter()
        .map(|(from, to, outcome)| (from.clone(), to.clone(), outcome.admitted()))
        .collect();
    assert_eq!(outcome.admissions.len(), predicted.len(), "admission count diverged {ctx}");
    for (seen, expected) in outcome.admissions.iter().zip(&predicted) {
        assert_eq!(seen, expected, "admission outcome diverged {ctx}");
    }
}

/// Fault-free conformance in one payload mode: exact content, exact counters,
/// nothing lost, nothing missing, chains intact.
fn conformance_without_faults(mode: PayloadMode) {
    let (fleet, shards, ctx) = fleet_under_test();
    let ctx = format!("{ctx} mode={mode:?}");
    let prediction = predict(&fleet);
    let config = DataplaneConfig { shards, payload_mode: mode, ..DataplaneConfig::default() };
    let outcome = run_fleet(&fleet, "fleet-conformance", config)
        .unwrap_or_else(|error| panic!("fleet run failed {ctx}: {error}"));

    assert_eq!(outcome.worker_panics, 0, "no worker escaped supervision {ctx}");
    assert!(outcome.chains_intact, "every audit chain verifies {ctx}");
    assert_eq!(outcome.duplicate_deliveries, 0, "delivery keys are unique {ctx}");
    assert_eq!(outcome.stats.missing_endpoint, 0, "round barrier leaves no stragglers {ctx}");
    assert_eq!(outcome.stats.deliveries_lost, 0, "nothing lost without faults {ctx}");
    assert_eq!(outcome.stats.shard_restarts, 0, "no restarts without faults {ctx}");
    assert_eq!(outcome.stats.published, prediction.published, "published diverged {ctx}");
    assert_eq!(outcome.stats.delivered, prediction.delivered, "delivered diverged {ctx}");
    assert_eq!(outcome.stats.denied, prediction.denied, "denied diverged {ctx}");
    assert_eq!(
        outcome.stats.published,
        outcome.stats.delivered
            + outcome.stats.denied
            + outcome.stats.missing_endpoint
            + outcome.stats.deliveries_lost,
        "accounting identity {ctx}: {:?}",
        outcome.stats
    );
    assert_admissions_match(&outcome, &prediction, &ctx);
    assert_deliveries_match(&outcome.observed, &predicted_deliveries(&prediction), &ctx);
    println!(
        "fleet conformance {ctx}: endpoints={} edges={} published={} delivered={} denied={}",
        fleet.endpoint_count(),
        fleet.edge_count(),
        outcome.stats.published,
        outcome.stats.delivered,
        outcome.stats.denied,
    );
}

#[test]
fn generated_fleet_conforms_zero_copy() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog("fleet_conformance_zero_copy", Duration::from_secs(240), Arc::clone(&done));
    conformance_without_faults(PayloadMode::ZeroCopy);
    done.store(true, Ordering::Relaxed);
}

#[test]
fn generated_fleet_conforms_clone_each() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog("fleet_conformance_clone_each", Duration::from_secs(240), Arc::clone(&done));
    conformance_without_faults(PayloadMode::CloneEach);
    done.store(true, Ordering::Relaxed);
}

/// Conformance under injected faults. Mid-unit shard panics and audit-append
/// crashes roll the in-flight unit back *before* any payload reaches a
/// mailbox, so the contract sharpens to containment: every observed delivery
/// is exactly a predicted one, every abandoned unit is evidenced `DeliveryLost`
/// at a predicted key with the unit's own publish time, and the counters equal
/// the prediction minus precisely those evidenced losses — record for record.
#[test]
fn generated_fleet_conformance_survives_injected_faults() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog("fleet_conformance_faults", Duration::from_secs(240), Arc::clone(&done));

    let (fleet, shards, ctx) = fleet_under_test();
    let ctx = format!("{ctx} faults=on");
    let prediction = predict(&fleet);

    // Deterministic panics on the delivery path (hit indices are global, and
    // the run processes far more units than the first-hit offsets) plus
    // seed-reproducible audit-append crashes and scheduling delays. The panic
    // limits stay far below the restart budget so no shard ever degrades:
    // degradation fails publishes, which this suite treats as a run error.
    let seed = env_u64("LEGALIOT_FLEET_SEED", 1);
    let registry = Arc::new(
        FailpointRegistry::new(seed)
            .with_spec(
                FailpointSpec::on_hits(FailpointSite::ShardProcess, FaultKind::Panic, 10, 97)
                    .limit(8),
            )
            .with_spec(
                FailpointSpec::on_hits(FailpointSite::AuditAppend, FaultKind::Panic, 5, 131)
                    .limit(6),
            )
            .with_spec(FailpointSpec::with_probability(
                FailpointSite::ShardLoop,
                FaultKind::Delay(Duration::from_micros(20)),
                0.002,
            )),
    );
    let config = DataplaneConfig {
        shards,
        failpoints: Some(Arc::clone(&registry)),
        restart_budget: 64,
        restart_backoff: Duration::from_micros(200),
        ..DataplaneConfig::default()
    };
    let outcome = run_fleet(&fleet, "fleet-conformance-faults", config)
        .unwrap_or_else(|error| panic!("fleet run failed {ctx}: {error}"));

    assert_eq!(outcome.worker_panics, 0, "every panic was supervised in-shard {ctx}");
    assert!(outcome.chains_intact, "chains re-anchor intact across restarts {ctx}");
    assert_eq!(outcome.duplicate_deliveries, 0, "delivery keys are unique {ctx}");
    assert_eq!(outcome.stats.missing_endpoint, 0, "round barrier leaves no stragglers {ctx}");
    assert!(
        outcome.stats.shard_restarts >= 1,
        "the deterministic panic spec must restart at least one shard {ctx}"
    );
    assert_eq!(outcome.stats.degraded_shards, 0, "the budget covers every injected panic {ctx}");
    assert!(registry.fired(FailpointSite::ShardProcess) >= 1, "faults actually fired {ctx}");

    // Every evidenced loss keys a predicted unit that was *not* observed —
    // a unit is rolled back before any payload hand-off, never after.
    let mut lost_at_delivered = 0u64;
    let mut lost_at_denied = 0u64;
    let mut lost_total = 0u64;
    for lost in &outcome.lost {
        let key = (lost.source.clone(), lost.destination.clone(), lost.at_millis);
        assert!(
            !lost.cause.starts_with("mailbox hand-off abandoned"),
            "no hand-off faults are injected {ctx}: {lost:?}"
        );
        assert!(
            !outcome.observed.contains_key(&key),
            "a lost unit must not also be delivered {ctx}: {key:?}"
        );
        match prediction.outcomes.get(&key) {
            Some(PredictedOutcome::Delivered(_)) => lost_at_delivered += lost.lost,
            Some(PredictedOutcome::Denied) => lost_at_denied += lost.lost,
            None => panic!("lost record at unpredicted key {key:?} {ctx}"),
        }
        lost_total += lost.lost;
    }
    assert_eq!(lost_total, outcome.stats.deliveries_lost, "evidence totals the counter {ctx}");

    // Counters: the prediction minus exactly the evidenced losses.
    assert_eq!(outcome.stats.published, prediction.published, "published diverged {ctx}");
    assert_eq!(
        outcome.stats.delivered,
        prediction.delivered - lost_at_delivered,
        "delivered must equal the prediction minus losses at delivered keys {ctx}"
    );
    assert_eq!(
        outcome.stats.denied,
        prediction.denied - lost_at_denied,
        "denied must equal the prediction minus losses at denied keys {ctx}"
    );
    assert_eq!(
        outcome.stats.published,
        outcome.stats.delivered
            + outcome.stats.denied
            + outcome.stats.missing_endpoint
            + outcome.stats.deliveries_lost,
        "accounting identity {ctx}: {:?}",
        outcome.stats
    );

    // Content: every surviving delivery matches its prediction exactly; the
    // only predicted deliveries absent are the evidenced-lost ones.
    let mut expected = predicted_deliveries(&prediction);
    for lost in &outcome.lost {
        expected.remove(&(lost.source.clone(), lost.destination.clone(), lost.at_millis));
    }
    assert_admissions_match(&outcome, &prediction, &ctx);
    assert_deliveries_match(&outcome.observed, &expected, &ctx);
    println!(
        "fleet fault conformance {ctx}: published={} delivered={} denied={} lost={} restarts={}",
        outcome.stats.published,
        outcome.stats.delivered,
        outcome.stats.denied,
        outcome.stats.deliveries_lost,
        outcome.stats.shard_restarts,
    );
}
