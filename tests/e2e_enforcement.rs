//! End-to-end enforcement conformance: drives whole scenarios through the public
//! dataplane API and asserts on exactly what each *subscriber receives* — the paper's
//! guarantee is about what a consumer ultimately observes (messages admitted,
//! IFC-checked and quenched per its context), not about internal counters.
//!
//! Scenarios run over the smart-home (Fig. 7) and smart-city topologies, in both
//! payload representations ([`PayloadMode::ZeroCopy`] and the clone-per-delivery
//! baseline), and cover: post-quench payload contents, §8.2.2 re-evaluation observed
//! mid-stream from the consumer side, mailbox-overflow policies with `DeliveryDropped`
//! evidence, teardown races, and zero-copy preservation on the receive path.
//!
//! The shard count is configurable from the environment (`LEGALIOT_E2E_SHARDS`,
//! default 2) so CI can run the suite across a shard matrix.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use legaliot::audit::AuditEvent;
use legaliot::context::{ContextSnapshot, Timestamp};
use legaliot::dataplane::{
    smart_city, smart_home, Dataplane, DataplaneConfig, OverflowPolicy, PayloadMode,
    ReceivedMessage, RecvError, RecvTimeoutError, Subscriber, Topology, TryRecvError,
};
use legaliot::ifc::{Label, SecurityContext};
use legaliot::middleware::{
    AttributeKind, AttributeValue, Component, Message, MessageSchema, Principal,
};

/// Shard count under test; CI runs the suite with 1 and 4.
fn shards() -> usize {
    std::env::var("LEGALIOT_E2E_SHARDS").ok().and_then(|v| v.parse().ok()).unwrap_or(2)
}

fn config(mode: PayloadMode) -> DataplaneConfig {
    DataplaneConfig { shards: shards(), payload_mode: mode, ..DataplaneConfig::default() }
}

const BOTH_MODES: [PayloadMode; 2] = [PayloadMode::ZeroCopy, PayloadMode::CloneEach];

fn topologies() -> Vec<Topology> {
    vec![smart_home(4, 7), smart_city(3, 4)]
}

fn snap() -> ContextSnapshot {
    ContextSnapshot::default()
}

/// Receives everything a subscriber will ever observe: the backlog, then
/// `Disconnected` (call after the dataplane shut down or the endpoint deregistered).
fn receive_all(subscriber: &Subscriber) -> Vec<ReceivedMessage> {
    let mut received = Vec::new();
    loop {
        match subscriber.recv_timeout(Duration::from_secs(10)) {
            Ok(message) => received.push(message),
            Err(RecvTimeoutError::Disconnected) => return received,
            Err(RecvTimeoutError::Timeout) => panic!("mailbox neither closed nor delivering"),
        }
    }
}

/// Acceptance core: on both scenario topologies, in both payload modes, every
/// subscriber observes exactly the enforced deliveries — the sensitive `subject-id`
/// attribute (message-level `identity` tag no scenario subscriber holds) is absent
/// from every received payload, the open attributes are intact, and the sender is one
/// of the endpoint's admitted publishers.
#[test]
fn subscribers_observe_post_quench_payloads_on_scenario_topologies() {
    const ROUNDS: u64 = 3;
    for topology in topologies() {
        // Who may legally appear as a sender at each subscribing endpoint.
        let mut publishers_of: HashMap<&str, HashSet<&str>> = HashMap::new();
        for (from, to) in &topology.edges {
            publishers_of.entry(to.as_str()).or_default().insert(from.as_str());
        }
        for mode in BOTH_MODES {
            let dataplane = Dataplane::new(topology.name.clone(), config(mode));
            topology
                .install_with_payload_schemas(&dataplane, &snap(), Timestamp(1))
                .expect("topology installs");
            let receivers: Vec<Subscriber> = publishers_of
                .keys()
                .map(|name| dataplane.open_subscriber(name).expect("receiver opens"))
                .collect();

            let pairs = topology.publisher_messages();
            let mut clock = 2;
            for _ in 0..ROUNDS {
                for (publisher, message) in &pairs {
                    dataplane.publish_message(publisher, message, Timestamp(clock)).unwrap();
                    clock += 1;
                }
            }
            dataplane.drain();
            let stats = dataplane.stats();
            assert_eq!(stats.delivered, ROUNDS * topology.edges.len() as u64);
            assert_eq!(stats.receiver_enqueued, stats.delivered);
            assert_eq!(stats.receiver_dropped, 0);
            // Every delivery quenches exactly `subject-id`.
            assert_eq!(stats.quenched_attributes, stats.delivered);

            let report = dataplane.shutdown();
            assert!(report.shard_audit.iter().all(|log| log.verify_chain().is_intact()));
            let mut received_total = 0u64;
            for subscriber in &receivers {
                let allowed_senders = &publishers_of[subscriber.name()];
                for message in receive_all(subscriber) {
                    received_total += 1;
                    assert!(
                        allowed_senders.contains(message.sender()),
                        "{} received from unadmitted {}",
                        subscriber.name(),
                        message.sender()
                    );
                    // The quenched attribute never reaches a consumer; the open
                    // attributes arrive intact.
                    assert!(message.get("subject-id").is_none());
                    assert_eq!(message.get("value"), Some(AttributeValue::Float(98.6)));
                    assert_eq!(message.get("unit"), Some(AttributeValue::Text("bpm".into())));
                    assert_eq!(message.attribute_count(), 2);
                    // The representation matches the mode, zero-copy preserved.
                    assert_eq!(message.frozen().is_some(), mode == PayloadMode::ZeroCopy);
                }
            }
            assert_eq!(received_total, stats.delivered, "{} {mode:?}", topology.name);
        }
    }
}

/// Drop-oldest overflow on both topologies, both modes: tiny mailboxes shed the
/// oldest deliveries, the sheds are counted per subscriber and globally, and the
/// audit evidence (`DeliveryDropped` records) totals every shed message.
#[test]
fn drop_oldest_overflow_is_evidenced_on_scenario_topologies() {
    const ROUNDS: u64 = 5;
    const CAPACITY: usize = 2;
    for topology in topologies() {
        let mut incoming: HashMap<&str, u64> = HashMap::new();
        for (_, to) in &topology.edges {
            *incoming.entry(to.as_str()).or_default() += 1;
        }
        for mode in BOTH_MODES {
            let config = DataplaneConfig {
                mailbox_capacity: CAPACITY,
                overflow: OverflowPolicy::DropOldest,
                ..config(mode)
            };
            let dataplane = Dataplane::new(topology.name.clone(), config);
            topology
                .install_with_payload_schemas(&dataplane, &snap(), Timestamp(1))
                .expect("topology installs");
            let receivers: Vec<Subscriber> = incoming
                .keys()
                .map(|name| dataplane.open_subscriber(name).expect("receiver opens"))
                .collect();
            let pairs = topology.publisher_messages();
            let mut clock = 2;
            for _ in 0..ROUNDS {
                for (publisher, message) in &pairs {
                    dataplane.publish_message(publisher, message, Timestamp(clock)).unwrap();
                    clock += 1;
                }
            }
            dataplane.drain();

            let mut expected_dropped_total = 0u64;
            for subscriber in &receivers {
                let enqueued = ROUNDS * incoming[subscriber.name()];
                let expected_dropped = enqueued.saturating_sub(CAPACITY as u64);
                assert_eq!(
                    subscriber.dropped(),
                    expected_dropped,
                    "{} drops at {}",
                    topology.name,
                    subscriber.name()
                );
                expected_dropped_total += expected_dropped;
                // The survivors are the *newest* deliveries.
                let survivors = subscriber.drain();
                assert_eq!(survivors.len() as u64, enqueued.min(CAPACITY as u64));
                let stamps: Vec<u64> =
                    survivors.iter().map(ReceivedMessage::sent_at_millis).collect();
                let sorted = {
                    let mut s = stamps.clone();
                    s.sort_unstable();
                    s
                };
                assert_eq!(stamps, sorted, "mailbox preserves delivery order");
            }
            let stats = dataplane.stats();
            assert_eq!(stats.receiver_dropped, expected_dropped_total);
            assert_eq!(stats.receiver_enqueued, stats.delivered);

            // Evidence: the per-pair DeliveryDropped totals account for every shed.
            let report = dataplane.shutdown();
            let evidenced: u64 = report
                .merged_timeline()
                .into_iter()
                .filter_map(|r| match r.event {
                    AuditEvent::DeliveryDropped { dropped, .. } => Some(dropped),
                    _ => None,
                })
                .sum();
            assert_eq!(evidenced, expected_dropped_total, "{} {mode:?}", topology.name);
        }
    }
}

fn patient_schema() -> MessageSchema {
    MessageSchema::new("reading").attribute("value", AttributeKind::Float).sensitive_attribute(
        "patient",
        AttributeKind::Text,
        Label::from_names(["secret-id"]),
    )
}

fn patient_message() -> Message {
    Message::new("reading", SecurityContext::public())
        .with("value", AttributeValue::Float(72.0))
        .with("patient", AttributeValue::Text("ann".into()))
}

fn endpoint(name: &str, secrecy: &[&str]) -> Component {
    Component::builder(name, Principal::new("owner"))
        .context(SecurityContext::from_names(secrecy.iter().copied(), Vec::<&str>::new()))
        .build()
}

/// §8.2.2 re-evaluation observed from the consumer side: a context change mid-stream
/// flips what subsequent receives contain — first the quenched view, then (once the
/// subscriber holds the message-level tag) the full payload, then quenched again, and
/// finally nothing at all once the publisher's context makes the flow illegal.
#[test]
fn context_change_mid_stream_flips_subscriber_observations() {
    for mode in BOTH_MODES {
        let dataplane = Dataplane::new("ctx-flip", config(mode));
        dataplane.register(endpoint("pub", &["t"])).unwrap();
        dataplane.register(endpoint("sub", &["t", "sink"])).unwrap();
        dataplane.allow_sends_to("sub");
        dataplane.register_schema(patient_schema()).unwrap();
        let (outcome, subscriber) =
            dataplane.subscribe_receiver("pub", "sub", &snap(), Timestamp(1)).unwrap();
        assert!(outcome.is_delivered());

        let recv_next = |deadline_tag: &str| -> ReceivedMessage {
            subscriber
                .recv_timeout(Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("expected delivery at {deadline_tag}: {e}"))
        };

        // Phase 1: `sub` lacks `secret-id` — `patient` is quenched before hand-off.
        dataplane.publish_message("pub", &patient_message(), Timestamp(10)).unwrap();
        dataplane.drain();
        let observed = recv_next("phase 1");
        assert!(observed.get("patient").is_none());
        assert_eq!(observed.get("value"), Some(AttributeValue::Float(72.0)));

        // Phase 2: `sub` gains the tag — the very next receive carries the full body.
        dataplane
            .set_context(
                "sub",
                SecurityContext::from_names(["t", "sink", "secret-id"], Vec::<&str>::new()),
                Timestamp(11),
            )
            .unwrap();
        dataplane.publish_message("pub", &patient_message(), Timestamp(12)).unwrap();
        dataplane.drain();
        let observed = recv_next("phase 2");
        assert_eq!(observed.get("patient"), Some(AttributeValue::Text("ann".into())));

        // Phase 3: the tag is withdrawn — quenching resumes (no stale cached mask).
        dataplane
            .set_context(
                "sub",
                SecurityContext::from_names(["t", "sink"], Vec::<&str>::new()),
                Timestamp(13),
            )
            .unwrap();
        dataplane.publish_message("pub", &patient_message(), Timestamp(14)).unwrap();
        dataplane.drain();
        assert!(recv_next("phase 3").get("patient").is_none());

        // Phase 4: the publisher's context makes the established flow illegal — the
        // subscriber observes *nothing*, and the denial is counted.
        dataplane
            .set_context(
                "pub",
                SecurityContext::from_names(["t", "quarantine"], Vec::<&str>::new()),
                Timestamp(15),
            )
            .unwrap();
        dataplane.publish_message("pub", &patient_message(), Timestamp(16)).unwrap();
        dataplane.drain();
        assert_eq!(subscriber.try_recv().unwrap_err(), TryRecvError::Empty);
        let stats = dataplane.stats();
        assert_eq!(stats.denied, 1);
        assert_eq!(stats.receiver_enqueued, 3);
        drop(dataplane);
        // Teardown closed the mailbox behind the live handle.
        assert_eq!(subscriber.recv().unwrap_err(), RecvError::Disconnected);
    }
}

/// Zero-copy preserved on the receive path: subscribers of one publish share the
/// frozen payload allocation — byte-for-byte the same buffer, whether or not their
/// views were quenched — and unquenched views share the very `Arc` the publisher
/// froze (no per-subscriber allocation at all).
#[test]
fn receive_path_shares_the_frozen_payload_buffer() {
    let dataplane = Dataplane::new("zero-copy", config(PayloadMode::ZeroCopy));
    dataplane.register(endpoint("pub", &[])).unwrap();
    // Two subscribers holding `secret-id` (unquenched view) and one without (quenched).
    for (name, secrecy) in
        [("full-a", vec!["secret-id"]), ("full-b", vec!["secret-id"]), ("redacted", vec![])]
    {
        dataplane.register(endpoint(name, &secrecy)).unwrap();
        dataplane.allow_sends_to(name);
        assert!(dataplane.subscribe("pub", name, &snap(), Timestamp(1)).unwrap().is_delivered());
    }
    dataplane.register_schema(patient_schema()).unwrap();
    let full_a = dataplane.open_subscriber("full-a").unwrap();
    let full_b = dataplane.open_subscriber("full-b").unwrap();
    let redacted = dataplane.open_subscriber("redacted").unwrap();
    dataplane.publish_message("pub", &patient_message(), Timestamp(2)).unwrap();
    dataplane.drain();

    let on_a = full_a.recv().unwrap();
    let on_b = full_b.recv().unwrap();
    let on_redacted = redacted.recv().unwrap();
    let frozen_a = on_a.frozen().expect("zero-copy delivery");
    let frozen_b = on_b.frozen().expect("zero-copy delivery");
    let frozen_redacted = on_redacted.frozen().expect("zero-copy delivery");
    // Unquenched views are the same shared message object.
    assert!(Arc::ptr_eq(frozen_a, frozen_b));
    assert_eq!(frozen_a.get("patient"), Some(AttributeValue::Text("ann".into())));
    // The quenched view is a distinct presence mask over the *same* buffer.
    assert!(frozen_redacted.get("patient").is_none());
    assert!(std::ptr::eq(
        frozen_a.payload().as_slice().as_ptr(),
        frozen_redacted.payload().as_slice().as_ptr()
    ));
    // The quenched view's effective bytes exclude the redacted span.
    assert_eq!(frozen_redacted.present_byte_len(), frozen_a.present_byte_len() - "ann".len());
    dataplane.shutdown();
}

/// Teardown races: a subscriber handle dropped mid-fanout releases a shard parked on
/// its full mailbox (publishes and `drain` complete instead of hanging), receives on
/// a torn-down dataplane surface the documented `Disconnected`, and deregistering an
/// endpoint closes its receiver.
#[test]
fn teardown_races_release_shards_and_report_disconnected() {
    // (1) Handle dropped mid-fanout while a Block-policy mailbox is full: without the
    // drop the shard would park forever (capacity 1, no consumer); the close must
    // wake it and let the remaining fan-out proceed.
    for mode in BOTH_MODES {
        let config = DataplaneConfig { mailbox_capacity: 1, ..config(mode) };
        let dataplane = Dataplane::new("teardown", config);
        dataplane.register(endpoint("pub", &["t"])).unwrap();
        dataplane.register(endpoint("sub", &["t"])).unwrap();
        dataplane.allow_sends_to("sub");
        dataplane.register_schema(patient_schema()).unwrap();
        let (outcome, subscriber) =
            dataplane.subscribe_receiver("pub", "sub", &snap(), Timestamp(1)).unwrap();
        assert!(outcome.is_delivered());

        let closer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            drop(subscriber); // mid-fanout: the shard is parked on the full mailbox
        });
        for t in 2..40 {
            dataplane.publish_message("pub", &patient_message(), Timestamp(t)).unwrap();
        }
        dataplane.drain(); // must return: the closed mailbox no longer blocks
        closer.join().unwrap();
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, 38, "every delivery was still enforced");
        assert!(stats.receiver_enqueued < 38, "the closed mailbox stopped enqueueing");
        assert_eq!(stats.receiver_dropped, 0, "Block policy never sheds");
        dataplane.shutdown();
    }

    // (2) recv on a torn-down dataplane: backlog first, then Disconnected — never a
    // hang. try_recv and recv_timeout report the same.
    let dataplane = Dataplane::new("torn-down", config(PayloadMode::ZeroCopy));
    dataplane.register(endpoint("pub", &["t"])).unwrap();
    dataplane.register(endpoint("sub", &["t"])).unwrap();
    dataplane.allow_sends_to("sub");
    dataplane.register_schema(patient_schema()).unwrap();
    let (_, subscriber) =
        dataplane.subscribe_receiver("pub", "sub", &snap(), Timestamp(1)).unwrap();
    dataplane.publish_message("pub", &patient_message(), Timestamp(2)).unwrap();
    dataplane.drain();
    dataplane.shutdown();
    assert!(subscriber.recv().is_ok(), "backlog survives shutdown");
    assert_eq!(subscriber.recv().unwrap_err(), RecvError::Disconnected);
    assert_eq!(subscriber.try_recv().unwrap_err(), TryRecvError::Disconnected);
    assert_eq!(
        subscriber.recv_timeout(Duration::from_millis(5)).unwrap_err(),
        RecvTimeoutError::Disconnected
    );

    // (3) Dropping the *dataplane* while a live handle keeps a Block-policy mailbox
    // full: Drop must close mailboxes before joining the workers, or the shard
    // parked on the full mailbox would never pop its Shutdown task (deadlock).
    for mode in BOTH_MODES {
        let config = DataplaneConfig { mailbox_capacity: 1, ..config(mode) };
        let dataplane = Dataplane::new("abandoned", config);
        dataplane.register(endpoint("pub", &["t"])).unwrap();
        dataplane.register(endpoint("sub", &["t"])).unwrap();
        dataplane.allow_sends_to("sub");
        dataplane.register_schema(patient_schema()).unwrap();
        let (_, subscriber) =
            dataplane.subscribe_receiver("pub", "sub", &snap(), Timestamp(1)).unwrap();
        for t in 2..10 {
            dataplane.publish_message("pub", &patient_message(), Timestamp(t)).unwrap();
        }
        drop(dataplane); // must return: the abandon path closes mailboxes first
        assert!(subscriber.is_closed());
        // Whatever was enqueued before the close is still receivable, then closed.
        while subscriber.try_recv().is_ok() {}
        assert_eq!(subscriber.try_recv().unwrap_err(), TryRecvError::Disconnected);
    }

    // (4) Deregistering the endpoint closes its receiver the same way.
    let dataplane = Dataplane::new("deregister", config(PayloadMode::ZeroCopy));
    dataplane.register(endpoint("pub", &["t"])).unwrap();
    dataplane.register(endpoint("sub", &["t"])).unwrap();
    dataplane.allow_sends_to("sub");
    dataplane.register_schema(patient_schema()).unwrap();
    let (_, subscriber) =
        dataplane.subscribe_receiver("pub", "sub", &snap(), Timestamp(1)).unwrap();
    dataplane.publish_message("pub", &patient_message(), Timestamp(2)).unwrap();
    dataplane.drain();
    dataplane.deregister("sub").unwrap();
    assert!(subscriber.recv().is_ok());
    assert_eq!(subscriber.recv().unwrap_err(), RecvError::Disconnected);
    dataplane.shutdown();

    // (5) Control-plane writes stay live while a shard is parked on a full
    // Block-policy mailbox: the shard releases the directory lock before the
    // hand-off, so `deregister` (which needs the write lock, and whose mailbox
    // close is the very thing that unparks the shard) completes instead of
    // deadlocking.
    let config = DataplaneConfig { mailbox_capacity: 1, ..config(PayloadMode::ZeroCopy) };
    let dataplane = Dataplane::new("parked", config);
    dataplane.register(endpoint("pub", &["t"])).unwrap();
    dataplane.register(endpoint("sub", &["t"])).unwrap();
    dataplane.allow_sends_to("sub");
    dataplane.register_schema(patient_schema()).unwrap();
    let (_, subscriber) =
        dataplane.subscribe_receiver("pub", "sub", &snap(), Timestamp(1)).unwrap();
    for t in 2..8 {
        dataplane.publish_message("pub", &patient_message(), Timestamp(t)).unwrap();
    }
    // Let the shard fill the 1-slot mailbox and park on the next hand-off.
    std::thread::sleep(Duration::from_millis(30));
    dataplane.deregister("sub").unwrap(); // must not deadlock
    dataplane.drain(); // completes: the closed mailbox no longer blocks the shard
    assert!(subscriber.is_closed());
    while subscriber.try_recv().is_ok() {}
    assert_eq!(subscriber.try_recv().unwrap_err(), TryRecvError::Disconnected);
    dataplane.shutdown();
}

/// Blocking overflow end to end: with a concurrent drain-loop consumer, every
/// enforced delivery is observed exactly once, in order, with nothing shed — the
/// documented lossless behaviour rather than a hang.
#[test]
fn block_overflow_with_concurrent_consumer_is_lossless() {
    for mode in BOTH_MODES {
        let config = DataplaneConfig {
            mailbox_capacity: 4,
            overflow: OverflowPolicy::Block,
            ..config(mode)
        };
        let dataplane = Dataplane::new("lossless", config);
        dataplane.register(endpoint("pub", &["t"])).unwrap();
        dataplane.register(endpoint("sub", &["t"])).unwrap();
        dataplane.allow_sends_to("sub");
        dataplane.register_schema(patient_schema()).unwrap();
        let (outcome, subscriber) =
            dataplane.subscribe_receiver("pub", "sub", &snap(), Timestamp(1)).unwrap();
        assert!(outcome.is_delivered());
        let consumer = std::thread::spawn(move || {
            let mut stamps = Vec::new();
            while let Ok(message) = subscriber.recv() {
                stamps.push(message.sent_at_millis());
            }
            stamps
        });
        for t in 10..110 {
            dataplane.publish_message("pub", &patient_message(), Timestamp(t)).unwrap();
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.receiver_enqueued, 100);
        assert_eq!(stats.receiver_dropped, 0);
        dataplane.shutdown();
        let stamps = consumer.join().unwrap();
        assert_eq!(stamps, (10..110).collect::<Vec<u64>>(), "{mode:?}");
    }
}

mod mode_equivalence {
    use super::*;
    use proptest::prelude::*;

    /// Runs one publish through a fresh dataplane in `mode` and returns what the
    /// subscriber received (thawed) plus the effective payload-byte count.
    fn observe(
        mode: PayloadMode,
        schema: &MessageSchema,
        message: &Message,
        destination_secrecy: &[String],
    ) -> (Vec<Message>, u64) {
        let dataplane = Dataplane::new("equivalence", config(mode));
        dataplane.register(endpoint("pub", &[])).unwrap();
        let secrecy: Vec<&str> = destination_secrecy.iter().map(String::as_str).collect();
        dataplane.register(endpoint("sub", &secrecy)).unwrap();
        dataplane.allow_sends_to("sub");
        dataplane.register_schema(schema.clone()).unwrap();
        let (outcome, subscriber) =
            dataplane.subscribe_receiver("pub", "sub", &snap(), Timestamp(1)).unwrap();
        assert!(outcome.is_delivered());
        dataplane.publish_message("pub", message, Timestamp(2)).unwrap();
        dataplane.drain();
        let payload_bytes = dataplane.stats().payload_bytes;
        dataplane.shutdown();
        let received = receive_all(&subscriber).into_iter().map(ReceivedMessage::thaw).collect();
        (received, payload_bytes)
    }

    proptest! {
        /// Satellite: for random schemas (random sensitivity pattern), random values
        /// and random destination contexts (hence random quench masks), a subscriber
        /// receives *byte-identical* thawed messages under `PayloadMode::ZeroCopy`
        /// and `PayloadMode::CloneEach` — and both match the reference
        /// `Message::quenched` semantics, with identical effective byte accounting.
        #[test]
        fn prop_subscriber_observations_agree_across_payload_modes(
            count in -1_000i64..1_000,
            level in 0.0f64..100.0,
            ok in proptest::bool::ANY,
            note in "[a-z ]{0,10}",
            who in "[a-z]{1,6}",
            sensitive_bits in 0u64..32,
            held_bits in 0u64..32,
        ) {
            // Five attributes; bit i of `sensitive_bits` gives attribute i the
            // message-level tag `tag-i`; bit i of `held_bits` puts `tag-i` in the
            // destination's secrecy label.
            let names = ["a-count", "b-level", "c-ok", "d-note", "e-who"];
            let kinds = [
                AttributeKind::Integer,
                AttributeKind::Float,
                AttributeKind::Bool,
                AttributeKind::Text,
                AttributeKind::Text,
            ];
            let mut schema = MessageSchema::new("mixed");
            for (index, (name, kind)) in names.iter().zip(kinds).enumerate() {
                if sensitive_bits & (1 << index) != 0 {
                    schema = schema.sensitive_attribute(
                        *name,
                        kind,
                        Label::from_names([format!("tag-{index}")]),
                    );
                } else {
                    schema = schema.attribute(*name, kind);
                }
            }
            let held: Vec<String> = (0..5)
                .filter(|index| held_bits & (1 << index) != 0)
                .map(|index| format!("tag-{index}"))
                .collect();
            let message = Message::new("mixed", SecurityContext::public())
                .with("a-count", AttributeValue::Integer(count))
                .with("b-level", AttributeValue::Float(level))
                .with("c-ok", AttributeValue::Bool(ok))
                .with("d-note", AttributeValue::Text(note))
                .with("e-who", AttributeValue::Text(who));

            let (zero_copy, zero_copy_bytes) =
                observe(PayloadMode::ZeroCopy, &schema, &message, &held);
            let (clone_each, clone_each_bytes) =
                observe(PayloadMode::CloneEach, &schema, &message, &held);
            prop_assert_eq!(&zero_copy, &clone_each);
            prop_assert_eq!(zero_copy_bytes, clone_each_bytes);

            // Both agree with the reference semantics: quench exactly the sensitive
            // attributes whose tag the destination does not hold.
            let expected_quenched: Vec<&str> = (0..5)
                .filter(|index| {
                    sensitive_bits & (1 << index) != 0 && held_bits & (1 << index) == 0
                })
                .map(|index| names[index as usize])
                .collect();
            let mut expected = message.quenched(expected_quenched.iter().copied());
            expected.sender = "pub".into();
            expected.sent_at_millis = 2;
            prop_assert_eq!(zero_copy.len(), 1);
            prop_assert_eq!(&zero_copy[0], &expected);
        }
    }
}
