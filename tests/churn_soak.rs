//! Seeded churn soak: drives registration churn, context flips, policy/regime
//! updates, subscriber drops and break-glass overrides *concurrently* with
//! deterministic fault injection (shard panics, delays, injected queue-full),
//! under a hard watchdog deadline, and asserts the robustness contract:
//!
//! 1. the run completes (no hang, no deadlock — the watchdog aborts otherwise);
//! 2. every per-shard audit chain verifies across restarts (the re-anchor on
//!    the last hash is exercised by real mid-batch panics);
//! 3. the accounting identity is exact: every accepted publish is delivered,
//!    denied, counted against a missing endpoint, or *evidenced* lost — never
//!    silently dropped;
//! 4. the evidence matches the counters: one `ShardRestarted` record per
//!    restart, and the non-hand-off `DeliveryLost` records total exactly
//!    `deliveries_lost`.
//!
//! The run is reproducible from its seed (`LEGALIOT_SOAK_SEED`, default 1);
//! the shard count (`LEGALIOT_SOAK_SHARDS`, default 2), publish volume
//! (`LEGALIOT_SOAK_PUBLISHES`, default 4000) and generated-fleet background
//! population (`LEGALIOT_SOAK_FLEETS`, default 0 — deployments installed from
//! the seeded `legaliot-fleet` generator, with their scripted publishes
//! replayed as extra load) are environment-tunable so CI can run a fixed-seed
//! matrix. Cross-thread interleaving still varies run to run; what the seed
//! pins is the churn decision sequence and the failpoint schedule, which is
//! what the assertions depend on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use legaliot::audit::AuditEvent;
use legaliot::context::{ContextSnapshot, ContextStore, Timestamp};
use legaliot::dataplane::{
    Dataplane, DataplaneConfig, FailpointRegistry, FailpointSite, FailpointSpec, FaultKind,
    OverflowPolicy, Subscriber, TopologyBuilder,
};
use legaliot::fleet::{generate, FleetConfig};
use legaliot::ifc::{Label, SecurityContext};
use legaliot::middleware::{
    AccessRule, AttributeKind, AttributeValue, Component, Message, MessageSchema, Operation,
    Principal, Subject,
};
use legaliot::policy::{BreakGlass, Condition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Aborts the whole process if `done` is not set within `limit` — a soak that
/// hangs must fail loudly, not eat the CI job's timeout.
fn watchdog(label: &'static str, limit: Duration, done: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let start = std::time::Instant::now();
        while start.elapsed() < limit {
            if done.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("watchdog: `{label}` still running after {limit:?} — aborting");
        std::process::exit(1);
    });
}

fn endpoint(name: &str, secrecy: &[&str]) -> Component {
    Component::builder(name, Principal::new("owner"))
        .context(SecurityContext::from_names(secrecy.iter().copied(), Vec::<&str>::new()))
        .build()
}

fn reading_schema() -> MessageSchema {
    MessageSchema::new("reading").attribute("value", AttributeKind::Float).sensitive_attribute(
        "subject",
        AttributeKind::Text,
        Label::from_names(["secret-id"]),
    )
}

fn reading_message() -> Message {
    Message::new("reading", SecurityContext::public())
        .with("value", AttributeValue::Float(72.0))
        .with("subject", AttributeValue::Text("ann".into()))
}

/// The conditional send rule every sink carries: admit while the load is
/// nominal, or whenever the break-glass override holds the emergency open.
fn sink_rule() -> AccessRule {
    AccessRule::allow(Subject::Anyone, Operation::Send, None)
        .when(Condition::number_below("load", 120.0).or(Condition::is_true("emergency.active")))
}

const PUBLISHERS: [&str; 3] = ["pub-0", "pub-1", "pub-2"];
const SINKS: [&str; 4] = ["sink-0", "sink-1", "sink-2", "sink-3"];

/// Installs `fleets` generated deployments as background population — things,
/// schemas, policies and admitted edges all through the shared builder path —
/// and replays their scripted publishes as extra load. Returns how many
/// publish calls were made (accepted or not; the identity is over what the
/// dataplane itself counted).
fn install_generated_fleet(
    dataplane: &Dataplane,
    store: &ContextStore,
    seed: u64,
    fleets: usize,
) -> u64 {
    let fleet = generate(FleetConfig { seed, deployments: fleets, rounds: 1 });
    for deployment in &fleet.deployments {
        for (key, value) in &deployment.initial_keys {
            store.set(key.as_str(), value.to_context_value(), Timestamp(1));
        }
    }
    let mut builder = TopologyBuilder::new("soak-fleet");
    for deployment in &fleet.deployments {
        for thing in &deployment.things {
            builder = builder.thing(&thing.to_thing());
        }
        for (from, to) in &deployment.edges {
            builder = builder.edge(from.as_str(), to.as_str());
        }
    }
    let topology = builder.build();
    topology.register(dataplane).expect("fleet endpoints register");
    let mut schemas = std::collections::BTreeMap::new();
    for deployment in &fleet.deployments {
        for schema in &deployment.schemas {
            dataplane.register_schema(schema.to_schema()).expect("fleet schemas register");
            schemas.insert(schema.message_type.clone(), schema.clone());
        }
    }
    dataplane.with_access(|access| {
        for deployment in &fleet.deployments {
            for rule in &deployment.rules {
                access.add_rule(rule.component.as_str(), rule.to_access_rule());
            }
        }
    });
    let snapshot = store.snapshot();
    topology.subscribe_edges(dataplane, &snapshot, Timestamp(2)).expect("fleet edges subscribe");
    let mut published = 0u64;
    for round in &fleet.rounds {
        for publish in &round.publishes {
            let schema = &schemas[&publish.message_type];
            let _ = dataplane.publish_message(
                &publish.publisher,
                &publish.message(schema),
                Timestamp(publish.at_millis),
            );
            published += 1;
        }
    }
    published
}

#[test]
fn churn_soak_with_injected_faults_keeps_the_accounting_exact() {
    let seed = env_u64("LEGALIOT_SOAK_SEED", 1);
    let shards = env_u64("LEGALIOT_SOAK_SHARDS", 2) as usize;
    let publishes = env_u64("LEGALIOT_SOAK_PUBLISHES", 4000);
    let fleets = env_u64("LEGALIOT_SOAK_FLEETS", 0) as usize;

    let done = Arc::new(AtomicBool::new(false));
    watchdog("churn_soak", Duration::from_secs(240), Arc::clone(&done));

    // The fault schedule. The `on_hits` panic spec makes at least one mid-batch
    // shard panic *certain* (hit indices are global across shards, and the run
    // processes far more than 25 deliveries); the probabilistic specs add
    // seed-reproducible delays, hand-off/audit-append crashes and injected
    // ingress backpressure. Total possible panics (6 + 4 + 3) stay far below
    // the restart budget so no shard ever degrades: this soak asserts the
    // restart path, the degraded path has its own deterministic unit test.
    let registry = Arc::new(
        FailpointRegistry::new(seed)
            .with_spec(
                FailpointSpec::on_hits(FailpointSite::ShardProcess, FaultKind::Panic, 25, 701)
                    .limit(6),
            )
            .with_spec(FailpointSpec::with_probability(
                FailpointSite::ShardProcess,
                FaultKind::Delay(Duration::from_micros(20)),
                0.002,
            ))
            .with_spec(
                FailpointSpec::with_probability(
                    FailpointSite::MailboxHandOff,
                    FaultKind::Panic,
                    0.0005,
                )
                .limit(4),
            )
            .with_spec(
                FailpointSpec::with_probability(FailpointSite::AuditAppend, FaultKind::Panic, 0.01)
                    .limit(3),
            )
            .with_spec(FailpointSpec::with_probability(
                FailpointSite::IngressEnqueue,
                FaultKind::QueueFull,
                0.001,
            ))
            .with_spec(FailpointSpec::with_probability(
                FailpointSite::ShardLoop,
                FaultKind::Delay(Duration::from_micros(50)),
                0.001,
            )),
    );

    // A retention-bounded context store: the churn writes context keys
    // constantly, and compaction must never outrun the shards' AC-cache
    // subscriptions (satellite: bounded `ContextStore` history under load).
    let store = Arc::new(ContextStore::with_retention(256));
    store.set("load", 80i64, Timestamp(0));
    store.set("emergency.active", false, Timestamp(0));

    let config = DataplaneConfig {
        shards,
        // Drop-oldest mailboxes: churn may abandon a subscriber handle for a
        // while, and the soak must keep moving rather than park a shard on it
        // (the Block-policy stall has its own watchdogged teardown test below).
        overflow: OverflowPolicy::DropOldest,
        mailbox_capacity: 32,
        failpoints: Some(Arc::clone(&registry)),
        restart_budget: 64,
        restart_backoff: Duration::from_micros(200),
        ..DataplaneConfig::default()
    };
    let dataplane =
        Arc::new(Dataplane::with_context_store("churn-soak", config, Arc::clone(&store)));
    dataplane.register_schema(reading_schema()).unwrap();
    let snapshot = store.snapshot();
    for name in PUBLISHERS {
        dataplane.register(endpoint(name, &["t"])).unwrap();
    }
    for name in SINKS {
        dataplane.register(endpoint(name, &["t", "sink"])).unwrap();
        dataplane.with_access(|access| {
            access.add_rule(name, sink_rule());
        });
    }
    for publisher in PUBLISHERS {
        for sink in SINKS {
            assert!(dataplane
                .subscribe(publisher, sink, &snapshot, Timestamp(1))
                .unwrap()
                .is_delivered());
        }
    }
    // One "anchor" sink per shard, each subscribed to pub-0: every shard then
    // processes payload batches throughout the run, so every shard's AC-cache
    // store subscription keeps polling and the retention bound asserted below
    // cannot be pinned by a shard that happens to own no other endpoint.
    let mut covered = vec![false; shards];
    let mut candidate = 0u64;
    while covered.iter().any(|shard_covered| !shard_covered) {
        let name = format!("anchor-{candidate}");
        candidate += 1;
        let shard = dataplane.shard_of(&name);
        if covered[shard] {
            continue;
        }
        covered[shard] = true;
        dataplane.register(endpoint(&name, &["t", "sink"])).unwrap();
        dataplane.with_access(|access| {
            access.add_rule(&name, sink_rule());
        });
        assert!(dataplane
            .subscribe(PUBLISHERS[0], &name, &snapshot, Timestamp(1))
            .unwrap()
            .is_delivered());
    }

    // Optional generated-fleet background population: thousands of extra
    // endpoints, schemas and policies sharing the shards with the hand-built
    // topology, their scripted publishes replayed before the churn starts.
    let fleet_publishes =
        if fleets > 0 { install_generated_fleet(&dataplane, &store, seed, fleets) } else { 0 };

    // Simulated clock shared by every driver thread.
    let clock = Arc::new(AtomicU64::new(10));
    let stop_churn = Arc::new(AtomicBool::new(false));

    // Publisher threads: fixed total volume, every error tolerated (injected
    // queue-full, a racing deregister) — the identity assertion below is over
    // what the dataplane *accepted*, which it counts itself.
    let mut drivers = Vec::new();
    for worker in 0..2u64 {
        let dataplane = Arc::clone(&dataplane);
        let clock = Arc::clone(&clock);
        let message = reading_message();
        let rounds = publishes / 2;
        drivers.push(std::thread::spawn(move || {
            for i in 0..rounds {
                let publisher = PUBLISHERS[((worker + i) % PUBLISHERS.len() as u64) as usize];
                let now = Timestamp(clock.fetch_add(1, Ordering::Relaxed));
                let _ = dataplane.publish_message(publisher, &message, now);
                if i % 256 == 0 {
                    std::thread::yield_now();
                }
            }
        }));
    }

    // The churn thread: a seeded random walk over every reconfiguration the
    // control plane offers, racing the publishers and the injected faults.
    let churn = {
        let dataplane = Arc::clone(&dataplane);
        let store = Arc::clone(&store);
        let clock = Arc::clone(&clock);
        let stop = Arc::clone(&stop_churn);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
            let mut break_glass =
                BreakGlass::new("bg-soak", "regulator", 5_000).overriding("load-limit");
            let mut ephemeral: Vec<(String, Option<Subscriber>)> = Vec::new();
            let mut minted = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let now = Timestamp(clock.fetch_add(1, Ordering::Relaxed));
                match rng.gen_range(0u32..100) {
                    // Mint an ephemeral subscriber (sometimes with a live
                    // streaming receiver) and admit it behind the same rule.
                    0..=19 => {
                        let name = format!("eph-{minted}");
                        minted += 1;
                        if dataplane.register(endpoint(&name, &["t", "sink"])).is_ok() {
                            dataplane.with_access(|access| {
                                access.add_rule(&name, sink_rule());
                            });
                            let snapshot = store.snapshot();
                            let publisher = PUBLISHERS[rng.gen_range(0..PUBLISHERS.len())];
                            let _ = dataplane.subscribe(publisher, &name, &snapshot, now);
                            let receiver = if rng.gen_bool(0.5) {
                                dataplane.open_subscriber(&name).ok()
                            } else {
                                None
                            };
                            ephemeral.push((name, receiver));
                        }
                    }
                    // Tear one down again: deregister, then drop the handle.
                    20..=34 => {
                        if !ephemeral.is_empty() {
                            let index = rng.gen_range(0..ephemeral.len());
                            let (name, receiver) = ephemeral.swap_remove(index);
                            let _ = dataplane.deregister(&name);
                            drop(receiver);
                        }
                    }
                    // Context flip on a sink: quenching toggles on and off.
                    35..=49 => {
                        let sink = SINKS[rng.gen_range(0..SINKS.len())];
                        let secrecy: Vec<&str> = if rng.gen_bool(0.5) {
                            vec!["t", "sink"]
                        } else {
                            vec!["t", "sink", "secret-id"]
                        };
                        let context = SecurityContext::from_names(secrecy, Vec::<&str>::new());
                        let _ = dataplane.set_context(sink, context, now);
                    }
                    // Context flip on a publisher: the flow turns illegal
                    // (denials) and legal again, mid-stream.
                    50..=59 => {
                        let publisher = PUBLISHERS[rng.gen_range(0..PUBLISHERS.len())];
                        let secrecy: Vec<&str> =
                            if rng.gen_bool(0.5) { vec!["t"] } else { vec!["t", "quarantine"] };
                        let context = SecurityContext::from_names(secrecy, Vec::<&str>::new());
                        let _ = dataplane.set_context(publisher, context, now);
                    }
                    // Load swings across the rule threshold: per-message AC
                    // flips between admit and refuse on every shard.
                    60..=69 => {
                        let load: i64 = if rng.gen_bool(0.5) { 80 } else { 150 };
                        store.set("load", load, now);
                    }
                    // Break-glass: the override suspends the load limit; its
                    // active state is mirrored into the context key the rules
                    // read, so activation visibly reopens refused flows.
                    70..=79 => {
                        if break_glass.is_active(now) {
                            break_glass.revoke();
                            store.set("emergency.active", false, now);
                        } else if break_glass.activate("soak emergency", now).is_ok() {
                            store.set("emergency.active", true, now);
                        }
                    }
                    // Regime update: reinstall a sink's rule set (an AC-regime
                    // version bump, invalidating cached admissions).
                    80..=89 => {
                        let sink = SINKS[rng.gen_range(0..SINKS.len())];
                        dataplane.with_access(|access| {
                            access.add_rule(sink, sink_rule());
                        });
                    }
                    // Isolation flips: §8.2.2's other in-flight denial source.
                    90..=94 => {
                        let sink = SINKS[rng.gen_range(0..SINKS.len())];
                        let _ = dataplane.set_isolated(sink, rng.gen_bool(0.5), now);
                    }
                    // Drain a live ephemeral receiver so mailboxes keep moving.
                    _ => {
                        if !ephemeral.is_empty() {
                            let index = rng.gen_range(0..ephemeral.len());
                            if let (_, Some(receiver)) = &ephemeral[index] {
                                let _ = receiver.drain();
                            }
                        }
                    }
                }
                if rng.gen_bool(0.2) {
                    std::thread::yield_now();
                }
            }
            // Leave isolation off so the final drain is not artificially denied
            // (denials are fine for the identity either way; this just keeps
            // the run's tail representative).
            for sink in SINKS {
                let _ =
                    dataplane.set_isolated(sink, false, Timestamp(clock.load(Ordering::Relaxed)));
            }
            ephemeral
        })
    };

    for driver in drivers {
        driver.join().expect("publisher thread completed");
    }
    stop_churn.store(true, Ordering::Relaxed);
    let ephemeral = churn.join().expect("churn thread completed");
    dataplane.drain();

    let stats = dataplane.stats();
    assert!(stats.published > 0, "the soak actually published");
    assert!(
        stats.shard_restarts >= 1,
        "the deterministic panic spec must have restarted at least one shard"
    );
    assert_eq!(stats.degraded_shards, 0, "the budget comfortably covers every injected panic");
    assert_eq!(
        stats.published,
        stats.delivered + stats.denied + stats.missing_endpoint + stats.deliveries_lost,
        "every accepted publish must be delivered, denied, missing or evidenced lost \
         (seed {seed}, shards {shards}): {stats:?}"
    );
    assert!(registry.fired(FailpointSite::ShardProcess) >= 1);

    let dataplane = Arc::into_inner(dataplane).expect("all driver clones joined");
    let report = dataplane.shutdown();
    assert!(
        report.worker_panics.is_empty(),
        "every panic was supervised in-shard: {:?}",
        report.worker_panics
    );
    for log in &report.shard_audit {
        assert!(
            log.verify_chain().is_intact(),
            "chain intact across restarts: {}",
            log.authority()
        );
    }
    assert!(report.control_audit.verify_chain().is_intact());

    // Evidence ↔ counter cross-check: one ShardRestarted record per counted
    // restart, and the non-hand-off DeliveryLost records total exactly the
    // lost counter (hand-off losses are at-most-once evidence of deliveries
    // already counted as delivered, so they stay outside the identity).
    let mut restart_records = 0u64;
    let mut lost_counted = 0u64;
    let mut lost_hand_off = 0u64;
    for record in report.merged_timeline() {
        match record.event {
            AuditEvent::ShardRestarted { .. } => restart_records += 1,
            AuditEvent::DeliveryLost { lost, ref cause, .. } => {
                if cause.starts_with("mailbox hand-off abandoned") {
                    lost_hand_off += lost;
                } else {
                    lost_counted += lost;
                }
            }
            _ => {}
        }
    }
    assert_eq!(restart_records, stats.shard_restarts);
    assert_eq!(lost_counted, stats.deliveries_lost);
    assert!(lost_hand_off <= stats.delivered, "hand-off losses are a subset of counted deliveries");

    // The retention bound held under churn (a lagging cursor may pin a window
    // past the bound, but never unboundedly — every subscriber polls per batch).
    assert!(
        store.history().len() <= 4096,
        "context history stayed bounded: {}",
        store.history().len()
    );
    drop(ephemeral);
    done.store(true, Ordering::Relaxed);
    println!(
        "churn soak seed={seed} shards={shards} fleets={fleets} fleet_publishes={fleet_publishes}: \
         published={} delivered={} denied={} missing={} lost={} restarts={} hand_off_losses={}",
        stats.published,
        stats.delivered,
        stats.denied,
        stats.missing_endpoint,
        stats.deliveries_lost,
        stats.shard_restarts,
        lost_hand_off
    );
}

/// Satellite: teardown under stall. A shard is parked on a full Block-policy
/// mailbox when first the subscriber handle and then the whole dataplane are
/// dropped — both must complete within the watchdog deadline (the close wakes
/// the parked shard; Drop closes mailboxes before joining workers).
#[test]
fn teardown_under_mailbox_stall_completes() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog("teardown_under_mailbox_stall", Duration::from_secs(120), Arc::clone(&done));

    let config = DataplaneConfig {
        shards: 1,
        mailbox_capacity: 1,
        overflow: OverflowPolicy::Block,
        ..DataplaneConfig::default()
    };
    let dataplane = Dataplane::new("stalled-teardown", config);
    dataplane.register(endpoint("pub", &["t"])).unwrap();
    dataplane.register(endpoint("sub", &["t"])).unwrap();
    dataplane.allow_sends_to("sub");
    dataplane.register_schema(reading_schema()).unwrap();
    let (outcome, subscriber) = dataplane
        .subscribe_receiver("pub", "sub", &ContextSnapshot::default(), Timestamp(1))
        .unwrap();
    assert!(outcome.is_delivered());

    // Fill the 1-slot mailbox and queue more: the shard parks on the hand-off.
    for t in 2..10 {
        dataplane.publish_message("pub", &reading_message(), Timestamp(t)).unwrap();
    }
    // Give the worker time to actually park on the full mailbox.
    std::thread::sleep(Duration::from_millis(30));

    // Drop the Subscriber first (closes the mailbox, waking the shard), then
    // the Dataplane (joins workers). Neither may hang.
    drop(subscriber);
    drop(dataplane);
    done.store(true, Ordering::Relaxed);
}
