//! Durable-audit crash-recovery conformance: a seeded fleet runs on a
//! dataplane whose audit chains stream retained-out records to on-disk
//! segment stores, and the disk is checked against the same reference model
//! that checks the live engine:
//!
//! 1. a graceful durable run leaves each shard's **complete** record stream on
//!    disk — recovery is clean, ids are dense, every recovered `FlowChecked`
//!    record keys a predicted outcome with the predicted decision, and the
//!    allowed records total exactly the oracle's delivered count;
//! 2. a dataplane torn down mid-churn with injected segment IO faults
//!    (`segment.write` short write, `segment.sync` error) recovers to a
//!    verified chain *prefix* that still matches the oracle prefix record for
//!    record, with the accounting identity exact at the teardown point and
//!    every truncated tail reported — never silently lost;
//! 3. a second incarnation on the same directories re-anchors on the last
//!    persisted hash and extends the same verifiable chain.
//!
//! Reproducible from its seed: `LEGALIOT_FLEET_SEED` (default 1),
//! `LEGALIOT_FLEET_DEPLOYMENTS` (default 200), `LEGALIOT_FLEET_ROUNDS`
//! (default 4) and `LEGALIOT_FLEET_SHARDS` (default 4) tune the matrix.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use legaliot::audit::{AuditEvent, RecoveryReport, SegmentStore};
use legaliot::context::{ContextSnapshot, Timestamp};
use legaliot::dataplane::{
    AuditDetail, Dataplane, DataplaneConfig, FailpointRegistry, FailpointSite, FailpointSpec,
    FaultKind, PersistenceConfig,
};
use legaliot::fleet::{
    generate, predict, run_fleet, run_fleet_partial, Fleet, FleetConfig, PredictedOutcome,
    Prediction,
};
use legaliot::ifc::SecurityContext;
use legaliot::middleware::{Component, Message, Principal};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Aborts the whole process if `done` is not set within `limit` — a durability
/// run that hangs must fail loudly, not eat the CI job's timeout.
fn watchdog(label: &'static str, limit: Duration, done: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let start = std::time::Instant::now();
        while start.elapsed() < limit {
            if done.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("watchdog: `{label}` still running after {limit:?} — aborting");
        std::process::exit(1);
    });
}

fn fleet_under_test() -> (Fleet, usize, String) {
    let seed = env_u64("LEGALIOT_FLEET_SEED", 1);
    let deployments = env_u64("LEGALIOT_FLEET_DEPLOYMENTS", 200) as usize;
    let rounds = env_u64("LEGALIOT_FLEET_ROUNDS", 4) as usize;
    let shards = env_u64("LEGALIOT_FLEET_SHARDS", 4) as usize;
    let ctx = format!(
        "[reproduce with LEGALIOT_FLEET_SEED={seed} LEGALIOT_FLEET_DEPLOYMENTS={deployments} \
         LEGALIOT_FLEET_ROUNDS={rounds} LEGALIOT_FLEET_SHARDS={shards}]"
    );
    (generate(FleetConfig { seed, deployments, rounds }), shards, ctx)
}

/// A fresh unique persistence root for one test run.
fn durable_root(tag: &str) -> PathBuf {
    let seed = env_u64("LEGALIOT_FLEET_SEED", 1);
    let shards = env_u64("LEGALIOT_FLEET_SHARDS", 4);
    let dir = std::env::temp_dir()
        .join(format!("legaliot-durability-{tag}-s{seed}-n{shards}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Durable-audit configuration: full per-check records, a small batch and
/// retention window so the bulk of the history streams to disk *mid-run*
/// (not just at the shutdown epilogue), and fsync on every flush.
fn durable_config(shards: usize, dir: &std::path::Path) -> DataplaneConfig {
    DataplaneConfig {
        shards,
        audit_detail: AuditDetail::Full,
        audit_batch: 16,
        audit_retention: Some(32),
        persistence: Some(PersistenceConfig {
            dir: dir.to_path_buf(),
            max_segment_records: 256,
            sync_on_flush: true,
        }),
        ..DataplaneConfig::default()
    }
}

/// Recovers every shard directory under `dir`.
fn recover_all(dir: &std::path::Path, shards: usize) -> Vec<RecoveryReport> {
    (0..shards)
        .map(|shard| {
            SegmentStore::recover(dir.join(format!("shard-{shard}")))
                .unwrap_or_else(|e| panic!("recovery of shard {shard} failed: {e}"))
        })
        .collect()
}

/// Checks one shard's recovered stream against the oracle: intact chain, ids
/// dense from 0, and every `FlowChecked` record keyed at a predicted outcome
/// with the predicted decision. Returns (flow checks seen, allowed among them).
fn check_recovered_shard(
    shard: usize,
    report: &RecoveryReport,
    prediction: &Prediction,
    ctx: &str,
) -> (u64, u64) {
    assert!(
        report.chain.is_intact(),
        "shard {shard} recovered chain must verify {ctx}: {:?}",
        report.chain
    );
    for (i, record) in report.records.iter().enumerate() {
        assert_eq!(record.id.0, i as u64, "shard {shard} ids must be dense {ctx}");
    }
    let mut checks = 0u64;
    let mut allowed = 0u64;
    for record in &report.records {
        if let AuditEvent::FlowChecked { source, destination, decision, .. } = &record.event {
            checks += 1;
            let key = (source.clone(), destination.clone(), record.at_millis);
            match prediction.outcomes.get(&key) {
                Some(PredictedOutcome::Delivered(_)) => {
                    assert!(
                        decision.is_allowed(),
                        "shard {shard}: disk says denied, oracle says delivered at {key:?} {ctx}"
                    );
                    allowed += 1;
                }
                Some(PredictedOutcome::Denied) => {
                    assert!(
                        decision.is_denied(),
                        "shard {shard}: disk says allowed, oracle says denied at {key:?} {ctx}"
                    );
                }
                None => panic!("shard {shard}: unpredicted FlowChecked at {key:?} {ctx}"),
            }
        }
    }
    (checks, allowed)
}

fn predicted_deliveries(prediction: &Prediction) -> BTreeMap<(String, String, u64), Message> {
    prediction
        .outcomes
        .iter()
        .filter_map(|(key, outcome)| match outcome {
            PredictedOutcome::Delivered(message) => Some((key.clone(), (**message).clone())),
            PredictedOutcome::Denied => None,
        })
        .collect()
}

/// A graceful durable run: zero hot-path loss, and the disk ends up holding
/// each shard's complete oracle-conformant history, fsynced and sealed.
#[test]
fn durable_fleet_run_leaves_complete_verified_history_on_disk() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog("audit_durability_graceful", Duration::from_secs(240), Arc::clone(&done));

    let (fleet, shards, ctx) = fleet_under_test();
    let ctx = format!("{ctx} durable=graceful");
    let prediction = predict(&fleet);
    let dir = durable_root("graceful");
    let outcome = run_fleet(&fleet, "fleet-durability", durable_config(shards, &dir))
        .unwrap_or_else(|error| panic!("fleet run failed {ctx}: {error}"));

    assert_eq!(outcome.worker_panics, 0, "no worker escaped supervision {ctx}");
    assert!(outcome.chains_intact, "in-memory chains verify {ctx}");
    assert_eq!(outcome.stats.deliveries_lost, 0, "nothing lost without faults {ctx}");
    assert_eq!(outcome.stats.published, prediction.published, "published diverged {ctx}");
    assert_eq!(outcome.stats.delivered, prediction.delivered, "delivered diverged {ctx}");
    assert_eq!(outcome.stats.denied, prediction.denied, "denied diverged {ctx}");
    assert!(outcome.stats.segment_records_persisted > 0, "history streamed to disk {ctx}");
    assert!(outcome.stats.segment_bytes_fsynced > 0, "flushes were fsynced {ctx}");
    assert_eq!(outcome.stats.segment_records_dropped, 0, "no store wedged {ctx}");
    assert_eq!(outcome.stats.recovery_truncations, 0, "fresh directories {ctx}");

    let mut disk_records = 0u64;
    let mut disk_allowed = 0u64;
    for (shard, report) in recover_all(&dir, shards).iter().enumerate() {
        assert!(report.is_clean(), "shard {shard} truncations {ctx}: {:?}", report.truncations);
        let (_, allowed) = check_recovered_shard(shard, report, &prediction, &ctx);
        disk_records += report.records.len() as u64;
        disk_allowed += allowed;
    }
    assert_eq!(
        disk_records, outcome.stats.segment_records_persisted,
        "every persisted record is recoverable {ctx}"
    );
    assert_eq!(
        disk_allowed, prediction.delivered,
        "disk evidences exactly the oracle's deliveries {ctx}"
    );
    println!(
        "durable graceful {ctx}: disk_records={disk_records} allowed={disk_allowed} \
         fsynced_bytes={}",
        outcome.stats.segment_bytes_fsynced
    );
    std::fs::remove_dir_all(&dir).unwrap();
    done.store(true, Ordering::Relaxed);
}

/// The crash drill: IO faults wedge segment stores mid-churn, the dataplane is
/// torn down at a round boundary, and recovery from disk must yield verified
/// chain prefixes matching the oracle prefix — then a second incarnation
/// extends the same chain.
#[test]
fn durable_fleet_recovers_from_mid_churn_teardown() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog("audit_durability_crash", Duration::from_secs(240), Arc::clone(&done));

    let (fleet, shards, ctx) = fleet_under_test();
    let ctx = format!("{ctx} durable=crash");
    let seed = env_u64("LEGALIOT_FLEET_SEED", 1);
    let dir = durable_root("crash");

    // Segment IO faults: a short write (torn frame, store wedged) early in the
    // stream and a sync error later — whichever a shard hits first wedges its
    // store with the tail at that point, modelling a crash of the persistence
    // layer while enforcement keeps running.
    let registry = Arc::new(
        FailpointRegistry::new(seed)
            .with_spec(
                FailpointSpec::on_hits(FailpointSite::SegmentWrite, FaultKind::ShortWrite, 50, 1)
                    .limit(1),
            )
            .with_spec(
                FailpointSpec::on_hits(FailpointSite::SegmentSync, FaultKind::IoError, 9, 1)
                    .limit(1),
            ),
    );
    let config =
        DataplaneConfig { failpoints: Some(Arc::clone(&registry)), ..durable_config(shards, &dir) };

    // Play half the script, then tear the engine down (abandon path) — the
    // wedged stores leave torn/partial tails on disk.
    let crash_after = fleet.rounds.len().div_ceil(2);
    let partial = run_fleet_partial(&fleet, "fleet-durability-crash", config, crash_after)
        .unwrap_or_else(|error| panic!("partial fleet run failed {ctx}: {error}"));
    assert!(
        registry.fired(FailpointSite::SegmentWrite) >= 1,
        "the short-write fault must fire {ctx}"
    );
    assert_eq!(
        partial.stats.published,
        partial.stats.delivered
            + partial.stats.denied
            + partial.stats.missing_endpoint
            + partial.stats.deliveries_lost,
        "accounting identity exact at the teardown point {ctx}: {:?}",
        partial.stats
    );
    let observed = partial.observed.clone();
    let pre_crash_stats = partial.stats;
    drop(partial); // drops the Dataplane: the mid-churn teardown

    // The oracle over the played prefix of the script.
    let mut prefix = fleet.clone();
    prefix.rounds.truncate(crash_after);
    let prediction = predict(&prefix);
    assert_eq!(pre_crash_stats.published, prediction.published, "published diverged {ctx}");
    assert_eq!(pre_crash_stats.delivered, prediction.delivered, "delivered diverged {ctx}");
    assert_eq!(pre_crash_stats.denied, prediction.denied, "denied diverged {ctx}");
    let expected = predicted_deliveries(&prediction);
    assert_eq!(observed, expected, "observed deliveries diverged from the oracle {ctx}");

    // Recovery: every shard yields a verified chain prefix of oracle-conformant
    // records, and the short write's torn tail is reported, not silently lost.
    let recovered = recover_all(&dir, shards);
    let mut truncations = 0usize;
    let mut first_pass_records = Vec::with_capacity(shards);
    for (shard, report) in recovered.iter().enumerate() {
        check_recovered_shard(shard, report, &prediction, &ctx);
        truncations += report.truncations.len();
        first_pass_records.push(report.records.len());
    }
    assert!(truncations >= 1, "the torn tail must be reported {ctx}");

    // A second incarnation on the repaired directories: startup recovery is
    // clean now, new traffic re-anchors on the recovered heads, and the final
    // disk state still verifies as one chain per shard across incarnations.
    let dataplane = Dataplane::new("fleet-durability-restart", durable_config(shards, &dir));
    assert_eq!(
        dataplane.stats().recovery_truncations,
        0,
        "manual recovery already repaired the tails {ctx}"
    );
    let restart_ctx = SecurityContext::from_names(["restart"], Vec::<&str>::new());
    for name in ["restart-pub", "restart-sub"] {
        dataplane
            .register(
                Component::builder(name, Principal::new("op")).context(restart_ctx.clone()).build(),
            )
            .unwrap();
        dataplane.allow_sends_to(name);
    }
    let snapshot = ContextSnapshot::default();
    assert!(dataplane
        .subscribe("restart-pub", "restart-sub", &snapshot, Timestamp(1))
        .unwrap()
        .is_delivered());
    for t in 0..50 {
        dataplane.publish("restart-pub", Timestamp(10 + t)).unwrap();
    }
    dataplane.drain();
    let report = dataplane.shutdown();
    assert_eq!(report.unsynced_bytes, 0, "graceful close leaves nothing unsynced {ctx}");
    assert!(report.segments_sealed >= 1, "the restart incarnation sealed its segments {ctx}");

    let mut grew = false;
    for (shard, report) in recover_all(&dir, shards).iter().enumerate() {
        assert!(report.is_clean(), "final recovery clean {ctx}: {:?}", report.truncations);
        assert!(report.chain.is_intact(), "shard {shard} chain verifies across incarnations {ctx}");
        for (i, record) in report.records.iter().enumerate() {
            assert_eq!(record.id.0, i as u64, "shard {shard} ids stay dense {ctx}");
        }
        grew |= report.records.len() > first_pass_records[shard];
    }
    assert!(grew, "the second incarnation extended a recovered chain {ctx}");
    println!(
        "durable crash {ctx}: rounds={crash_after} truncations={truncations} \
         pre_crash={pre_crash_stats:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
    done.store(true, Ordering::Relaxed);
}
