//! A named registry of metrics with lock-free recording.
//!
//! Registration (first lookup of a name) takes a write lock; every subsequent
//! recording happens through the returned `Arc` with relaxed atomics only. Components
//! that prefer typed metric structs (the dataplane does) can skip the registry and
//! build a [`MetricsSnapshot`] directly; the registry is for looser wiring, e.g. the
//! bus exposing a handful of named series without a bespoke snapshot type.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::expose::MetricsSnapshot;
use crate::histogram::LatencyHistogram;
use crate::metrics::{Counter, MaxGauge};

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<MaxGauge>>,
    histograms: BTreeMap<String, Arc<LatencyHistogram>>,
}

/// A collection of metrics addressable by name.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.read().counters.get(name) {
            return Arc::clone(c);
        }
        let mut inner = self.inner.write();
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    /// Returns the high-water-mark gauge registered under `name`, creating it on
    /// first use.
    pub fn gauge(&self, name: &str) -> Arc<MaxGauge> {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return Arc::clone(g);
        }
        let mut inner = self.inner.write();
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    /// Returns the histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        if let Some(h) = self.inner.read().histograms.get(name) {
            return Arc::clone(h);
        }
        let mut inner = self.inner.write();
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// Snapshots every registered metric into an exposable [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read();
        let mut out = MetricsSnapshot::new();
        for (name, c) in &inner.counters {
            out.record_counter(name.clone(), c.get());
        }
        for (name, g) in &inner.gauges {
            out.record_gauge(name.clone(), g.get());
        }
        for (name, h) in &inner.histograms {
            out.record_histogram(name.clone(), h.snapshot());
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn same_name_returns_same_metric() {
        let registry = Registry::new();
        registry.counter("messages").add(3);
        registry.counter("messages").add(4);
        assert_eq!(registry.counter("messages").get(), 7);

        registry.gauge("depth").record(9);
        registry.gauge("depth").record(2);
        assert_eq!(registry.gauge("depth").get(), 9);

        registry.histogram("latency").record(100);
        registry.histogram("latency").record(200);
        assert_eq!(registry.histogram("latency").snapshot().count(), 2);
    }

    #[test]
    fn snapshot_carries_all_kinds() {
        let registry = Registry::new();
        registry.counter("a").inc();
        registry.gauge("b").record(5);
        registry.histogram("c").record(50);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a"), Some(1));
        assert_eq!(snap.gauge("b"), Some(5));
        assert_eq!(snap.histogram("c").unwrap().count(), 1);
    }

    #[test]
    fn concurrent_registration_converges_on_one_metric() {
        let registry = Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let registry = Arc::clone(&registry);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        registry.counter("shared").inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(registry.counter("shared").get(), 8_000);
    }
}
