//! Log2-bucketed latency histograms with mergeable snapshots.
//!
//! A [`LatencyHistogram`] holds 65 power-of-two buckets: bucket 0 is exactly `{0}` and
//! bucket `i` (1 ≤ i ≤ 64) covers `[2^(i-1), 2^i - 1]`. The bucket index of a value is
//! its bit length, so recording is one `leading_zeros` plus four relaxed atomic RMWs —
//! no locks, no allocation, shareable across shard workers.
//!
//! Quantiles come from snapshots: the rank-`q` sample lands in a known bucket, so the
//! estimate is bounded by that bucket's `[lo, hi]` range (a ≤ 2× relative error,
//! tightened further by the observed min/max). Per-shard snapshots merge by summing
//! buckets, which is exact: merging then ranking equals ranking the union.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit length of a `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, otherwise the value's bit length.
#[inline]
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` range of values a bucket covers.
///
/// Bucket 0 is `(0, 0)`; bucket `i ≥ 1` is `(2^(i-1), 2^i - 1)` with bucket 64
/// capped at `u64::MAX`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (index - 1);
        let hi = if index == 64 { u64::MAX } else { (1u64 << index) - 1 };
        (lo, hi)
    }
}

/// A lock-free histogram of `u64` samples (nanoseconds, by convention here).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    /// `u64::MAX` until the first sample.
    min: AtomicU64,
    max: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: four relaxed atomic RMWs.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Copies the current state. Concurrent recorders keep running; the snapshot is a
    /// consistent-enough point-in-time view (bucket loads are relaxed and independent,
    /// so a snapshot racing a `record` may see the count without the sum or vice
    /// versa — totals are monotone and exact once recorders quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// An owned, mergeable copy of a histogram's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot { counts: [0; BUCKETS], sum: 0, min: u64::MAX, max: 0 }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.max)
        }
    }

    /// Integer mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Per-bucket `(lo, hi, count)` rows for non-empty buckets, in ascending order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let (lo, hi) = bucket_bounds(i);
            (lo, hi, c)
        })
    }

    /// Adds another snapshot into this one (exact: bucket-wise sums).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The inclusive `[lo, hi]` range guaranteed to contain the rank-`q` sample,
    /// or `None` when the histogram is empty.
    ///
    /// The rank is `ceil(q · count)` clamped to `[1, count]` (so `q = 0.5` over four
    /// samples picks the second). The bucket holding that rank bounds the true sample
    /// value; the bracket is tightened by the observed global min/max, which are valid
    /// bounds for every sample.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let (lo, hi) = bucket_bounds(i);
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        None
    }

    /// Conservative (upper-bound) estimate of the rank-`q` sample; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).map_or(0, |(_, hi)| hi)
    }

    /// Upper-bound estimate of the median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Upper-bound estimate of the 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Upper-bound estimate of the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Upper-bound estimate of the 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_bounds(0), (0, 0));
        let mut next = 1u64;
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, next, "bucket {i} lower bound");
            assert!(hi >= lo);
            // Every value in [lo, hi] maps back to bucket i.
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            next = hi.wrapping_add(1);
        }
        assert_eq!(next, 0, "buckets cover the full u64 range");
    }

    #[test]
    fn empty_snapshot_has_no_quantiles() {
        let snap = LatencyHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.min(), None);
        assert_eq!(snap.max(), None);
        assert_eq!(snap.mean(), 0);
        assert_eq!(snap.quantile_bounds(0.5), None);
        assert_eq!(snap.p99(), 0);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let h = LatencyHistogram::new();
        h.record(777);
        let snap = h.snapshot();
        // min/max clamping collapses the bucket bracket to the exact value.
        assert_eq!(snap.quantile_bounds(0.5), Some((777, 777)));
        assert_eq!(snap.p999(), 777);
        assert_eq!(snap.mean(), 777);
    }

    #[test]
    fn merge_matches_union() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let union = LatencyHistogram::new();
        for v in [5u64, 80, 80, 1_000] {
            a.record(v);
            union.record(v);
        }
        for v in [0u64, 3, 40_000] {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.min(), Some(0));
        assert_eq!(merged.max(), Some(40_000));
    }

    /// Satellite: concurrent recording from N threads loses no counts.
    #[test]
    fn concurrent_recording_loses_nothing() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 20_000;
        let h = Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Deterministic spread across many buckets.
                        h.record((t * PER_THREAD + i) % 100_003);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), THREADS * PER_THREAD);
        let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|v| v % 100_003).sum();
        assert_eq!(snap.sum(), expected_sum);
    }

    /// True rank-`q` sample from raw values, using the same rank convention as
    /// `quantile_bounds`.
    fn true_quantile(sorted: &[u64], q: f64) -> u64 {
        let count = sorted.len() as u64;
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        sorted[(rank - 1) as usize]
    }

    proptest! {
        /// Satellite: merged per-shard histogram quantiles bracket the true sample
        /// quantiles (the log2-bucket error bound).
        #[test]
        fn merged_quantiles_bracket_true_quantiles(
            values in proptest::collection::vec(0u64..1_000_000_000_000, 1..300),
            shards in 1usize..5,
        ) {
            // Scatter samples across per-shard histograms, as the dataplane does.
            let hists: Vec<LatencyHistogram> =
                (0..shards).map(|_| LatencyHistogram::new()).collect();
            for (i, &v) in values.iter().enumerate() {
                hists[i % shards].record(v);
            }
            let mut merged = HistogramSnapshot::empty();
            for h in &hists {
                merged.merge(&h.snapshot());
            }
            prop_assert_eq!(merged.count(), values.len() as u64);
            prop_assert_eq!(merged.sum(), values.iter().sum::<u64>());

            let mut sorted = values.clone();
            sorted.sort_unstable();
            prop_assert_eq!(merged.min(), Some(sorted[0]));
            prop_assert_eq!(merged.max(), Some(*sorted.last().unwrap()));

            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let truth = true_quantile(&sorted, q);
                let (lo, hi) = merged.quantile_bounds(q).unwrap();
                prop_assert!(
                    lo <= truth && truth <= hi,
                    "q={} truth={} outside [{}, {}]", q, truth, lo, hi
                );
                // The reported estimate is the bracket's upper bound.
                prop_assert_eq!(merged.quantile(q), hi);
                // Log2 bound: hi < 2·max(lo, 1), so the estimate is within 2× of
                // some value that really was recorded in that bucket.
                prop_assert!(hi <= lo.saturating_mul(2).max(1));
            }
        }
    }
}
