//! Scalar metrics: monotone counters and high-water-mark gauges.
//!
//! Both are single relaxed atomics — safe to share across shard workers and cheap
//! enough to leave on even when span timing is disabled.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that keeps the maximum value ever recorded (high-water mark).
///
/// Used for queue depths: producers record the post-push length and the gauge
/// retains the peak, which is the number that matters for sizing and for spotting
/// sustained backpressure.
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        MaxGauge(AtomicU64::new(0))
    }

    /// Raises the high-water mark to `value` if it is larger.
    pub fn record(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// The largest value recorded so far (zero if none).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn max_gauge_keeps_peak() {
        let g = MaxGauge::new();
        g.record(3);
        g.record(9);
        g.record(5);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
