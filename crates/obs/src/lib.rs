//! # legaliot-obs
//!
//! Lock-free observability primitives for the enforcement middleware: atomic
//! [`Counter`]s and [`MaxGauge`]s, log2-bucketed [`LatencyHistogram`]s with mergeable
//! [`HistogramSnapshot`]s and `p50/p90/p99/p999` estimation, a named [`Registry`], and
//! a stable text / JSON exposition surface ([`MetricsSnapshot`]).
//!
//! The paper's central claim (Singh et al., Middleware 2016) is that policy enforcement
//! can live *inside* the messaging layer at low overhead. Substantiating that requires
//! more than end-to-end msgs/s: each pipeline stage — isolation, contextual AC, IFC,
//! quenching, audit — has its own tax, and regressions (e.g. the 4-shard scaling dip in
//! `BENCH_dataplane.json`) are only attributable when per-stage latency is visible.
//! This crate provides the recording primitives; `legaliot-dataplane` threads them
//! through the shard workers and exposes [`MetricsSnapshot`] via
//! `Dataplane::telemetry()`.
//!
//! Design constraints:
//!
//! - **Recording is lock-free.** Every `record`/`inc` is a handful of relaxed atomic
//!   RMWs; no allocation, no locks, no syscalls. Histograms use 65 power-of-two
//!   buckets, so the bucket index is a `leading_zeros` away.
//! - **Snapshots are mergeable.** Per-shard histograms merge into one by summing
//!   bucket counts, which is how per-shard telemetry becomes a single dataplane-wide
//!   percentile report.
//! - **Quantiles are bucket-bounded estimates.** `quantile(q)` returns the upper bound
//!   of the bucket holding the rank-`q` sample; [`HistogramSnapshot::quantile_bounds`]
//!   exposes the full `[lo, hi]` bracket so callers (and the property tests) can reason
//!   about the log2 error bound: the true sample quantile always lies inside it.
//! - **Disabled means nearly free.** [`ObsConfig::disabled()`] lets instrumented code
//!   skip every clock read; the residual cost is the pre-existing relaxed counters.
//!
//! ```
//! use legaliot_obs::{LatencyHistogram, MetricsSnapshot};
//!
//! let h = LatencyHistogram::new();
//! for v in [120_u64, 340, 950, 4_100] {
//!     h.record(v);
//! }
//! let snap = h.snapshot();
//! assert_eq!(snap.count(), 4);
//! let (lo, hi) = snap.quantile_bounds(0.5).unwrap();
//! assert!(lo <= 340 && 340 <= hi);
//!
//! let mut out = MetricsSnapshot::new();
//! out.record_histogram("stage.delivery", snap);
//! assert!(out.to_json().contains("\"stage.delivery\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
mod histogram;
mod metrics;
mod registry;

pub use expose::MetricsSnapshot;
pub use histogram::{bucket_bounds, HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use metrics::{Counter, MaxGauge};
pub use registry::Registry;

/// Whether instrumented components should take timestamps at all.
///
/// Threaded through `DataplaneConfig` (and the bus). When disabled, instrumented code
/// paths skip every `Instant::now()` call; only always-on relaxed counters remain, so
/// the enforcement hot path keeps its uninstrumented cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// When `false`, span timing is skipped entirely (no clock reads).
    pub enabled: bool,
}

impl ObsConfig {
    /// Telemetry on: per-stage span timing and latency histograms are recorded.
    pub fn enabled() -> Self {
        ObsConfig { enabled: true }
    }

    /// Telemetry off: no clock reads; instrumentation reduces to the handful of
    /// relaxed atomics that exist regardless.
    pub fn disabled() -> Self {
        ObsConfig { enabled: false }
    }

    /// Whether span timing is active.
    pub fn is_enabled(self) -> bool {
        self.enabled
    }
}

impl Default for ObsConfig {
    /// Telemetry defaults to **on**: observability out of the box, with the bench
    /// quantifying the (small) cost and `disabled()` available for peak-throughput
    /// deployments.
    fn default() -> Self {
        ObsConfig::enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_config_roundtrip() {
        assert!(ObsConfig::default().is_enabled());
        assert!(ObsConfig::enabled().is_enabled());
        assert!(!ObsConfig::disabled().is_enabled());
    }
}
