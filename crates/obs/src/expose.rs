//! Text and JSON exposition of a set of named metrics.
//!
//! [`MetricsSnapshot`] is an owned, ordered (BTreeMap-backed, so deterministic)
//! collection of counters, gauges and histogram snapshots. Instrumented components
//! build one on demand (`Dataplane::telemetry()` does) and render it with
//! [`to_text`](MetricsSnapshot::to_text) or [`to_json`](MetricsSnapshot::to_json).
//!
//! ## Stable schemas
//!
//! **Text** — one line per metric, space-separated, sorted by name within each kind:
//!
//! ```text
//! counter <name> <value>
//! gauge <name> <value>
//! histogram <name> count=<n> sum=<n> min=<n> max=<n> mean=<n> p50=<n> p90=<n> p99=<n> p999=<n>
//! ```
//!
//! **JSON** — a single object with three fixed keys; histogram values are objects with
//! the fields below plus non-empty buckets as `[lo, hi, count]` triples:
//!
//! ```json
//! {
//!   "counters": {"name": 1},
//!   "gauges": {"name": 2},
//!   "histograms": {
//!     "name": {"count": 3, "sum": 30, "min": 5, "max": 20, "mean": 10,
//!              "p50": 7, "p90": 20, "p99": 20, "p999": 20,
//!              "buckets": [[4, 7, 2], [16, 31, 1]]}
//!   }
//! }
//! ```
//!
//! All values are integers (nanoseconds for the dataplane's histograms); empty
//! histograms render `min`/`max` as 0. Keys are escaped per JSON; consumers can parse
//! the output with any JSON parser (the workspace's `telemetry_exposition` integration
//! test round-trips it through `serde_json`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;

/// An ordered collection of named metric values, renderable as text or JSON.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Records a counter value under `name` (replacing any previous value).
    pub fn record_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Records a gauge value under `name` (replacing any previous value).
    pub fn record_gauge(&mut self, name: impl Into<String>, value: u64) {
        self.gauges.insert(name.into(), value);
    }

    /// Records a histogram snapshot under `name` (replacing any previous value).
    pub fn record_histogram(&mut self, name: impl Into<String>, snapshot: HistogramSnapshot) {
        self.histograms.insert(name.into(), snapshot);
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Iterates all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates all gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the line-oriented text exposition (schema in the module docs).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} sum={} min={} max={} mean={} p50={} p90={} p99={} p999={}",
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
            );
        }
        out
    }

    /// Renders the JSON exposition (schema in the module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        write_scalar_map(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        write_scalar_map(&mut out, &self.gauges);
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            write_json_string(&mut out, name);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [",
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
            );
            let mut first_bucket = true;
            for (lo, hi, count) in h.buckets() {
                if !first_bucket {
                    out.push_str(", ");
                }
                first_bucket = false;
                let _ = write!(out, "[{lo}, {hi}, {count}]");
            }
            out.push_str("]}");
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }
}

fn write_scalar_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (name, value) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_json_string(out, name);
        let _ = write!(out, ": {value}");
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Writes `s` as a JSON string literal with the required escapes.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::LatencyHistogram;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.record_counter("published", 10);
        snap.record_counter("denied", 2);
        snap.record_gauge("shard0.queue_depth_hwm", 7);
        let h = LatencyHistogram::new();
        for v in [100u64, 200, 3_000] {
            h.record(v);
        }
        snap.record_histogram("stage.delivery", h.snapshot());
        snap
    }

    #[test]
    fn text_exposition_is_sorted_and_line_oriented() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "counter denied 2");
        assert_eq!(lines[1], "counter published 10");
        assert_eq!(lines[2], "gauge shard0.queue_depth_hwm 7");
        assert!(lines[3].starts_with("histogram stage.delivery count=3 sum=3300 min=100 max=3000"));
    }

    #[test]
    fn json_exposition_has_fixed_top_level_keys() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"published\": 10"));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"buckets\": ["));
    }

    #[test]
    fn json_escapes_awkward_names() {
        let mut snap = MetricsSnapshot::new();
        snap.record_counter("we\"ird\\name\n", 1);
        let json = snap.to_json();
        assert!(json.contains("\"we\\\"ird\\\\name\\n\": 1"));
    }

    #[test]
    fn lookups_return_recorded_values() {
        let snap = sample();
        assert_eq!(snap.counter("published"), Some(10));
        assert_eq!(snap.counter("absent"), None);
        assert_eq!(snap.gauge("shard0.queue_depth_hwm"), Some(7));
        assert_eq!(snap.histogram("stage.delivery").unwrap().count(), 3);
        assert_eq!(snap.counters().count(), 2);
        assert_eq!(snap.gauges().count(), 1);
        assert_eq!(snap.histograms().count(), 1);
    }
}
