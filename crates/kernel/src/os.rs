//! The simulated OS: processes, kernel objects and IFC-mediated system calls.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_audit::{AuditEvent, AuditLog};
use legaliot_ifc::{
    Entity, EntityKind, FlowDecision, IfcError, PrivilegeKind, SecurityContext, Tag,
};

use crate::lsm::{EnforcementMode, HookStats, LsmHooks};

/// Identifier of a process within one simulated OS instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Identifier of a kernel object (file, pipe, socket, shared memory segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KernelObjectId(pub u32);

impl fmt::Display for KernelObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// The kinds of kernel object the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// A regular file.
    File,
    /// A pipe between processes.
    Pipe,
    /// A network socket endpoint (hand-off point to the messaging substrate, Fig. 9).
    Socket,
    /// A shared-memory segment.
    SharedMemory,
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::File => "file",
            ObjectKind::Pipe => "pipe",
            ObjectKind::Socket => "socket",
            ObjectKind::SharedMemory => "shm",
        };
        f.write_str(s)
    }
}

/// Errors raised by the simulated OS API (distinct from flow denials, which are
/// [`SyscallOutcome::Refused`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The referenced process does not exist.
    UnknownProcess {
        /// The offending pid.
        pid: ProcessId,
    },
    /// The referenced kernel object does not exist.
    UnknownObject {
        /// The offending object id.
        object: KernelObjectId,
    },
    /// An IFC privilege error (e.g. label change without privilege).
    Ifc(IfcError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownProcess { pid } => write!(f, "unknown process {pid}"),
            KernelError::UnknownObject { object } => write!(f, "unknown kernel object {object}"),
            KernelError::Ifc(e) => write!(f, "ifc error: {e}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<IfcError> for KernelError {
    fn from(value: IfcError) -> Self {
        KernelError::Ifc(value)
    }
}

/// The outcome of an IFC-mediated system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallOutcome {
    /// The call proceeded.
    Completed,
    /// The call was refused by the enforcement hook; carries the flow decision.
    Refused(FlowDecision),
}

impl SyscallOutcome {
    /// Whether the call proceeded.
    pub fn is_completed(&self) -> bool {
        matches!(self, SyscallOutcome::Completed)
    }
}

#[derive(Debug, Clone)]
struct Process {
    entity: Entity,
}

#[derive(Debug, Clone)]
struct KernelObject {
    entity: Entity,
    kind: ObjectKind,
}

/// One simulated OS instance with CamFlow-style enforcement.
///
/// ```
/// use legaliot_kernel::{Os, EnforcementMode, ObjectKind};
/// use legaliot_ifc::{SecurityContext, Tag, PrivilegeKind};
///
/// let mut os = Os::new("cloud-node-1", EnforcementMode::Enforce);
/// let analyser = os.spawn("analyser", SecurityContext::from_names(["medical"], Vec::<&str>::new()));
/// let file = os.create_object(analyser, "patient-db", ObjectKind::File).unwrap();
/// // The analyser can write to the file it created (same security context)...
/// assert!(os.write(analyser, file, 100).unwrap().is_completed());
/// // ...and an unlabelled process cannot read it back.
/// let curious = os.spawn("curious", SecurityContext::public());
/// assert!(!os.read(curious, file, 110).unwrap().is_completed());
/// ```
#[derive(Debug)]
pub struct Os {
    name: String,
    hooks: LsmHooks,
    processes: BTreeMap<ProcessId, Process>,
    objects: BTreeMap<KernelObjectId, KernelObject>,
    next_pid: u32,
    next_oid: u32,
    audit: AuditLog,
}

impl Os {
    /// Creates an OS instance with the given enforcement mode.
    pub fn new(name: impl Into<String>, mode: EnforcementMode) -> Self {
        let name = name.into();
        Os {
            audit: AuditLog::new(format!("os:{name}")),
            name,
            hooks: LsmHooks::new(mode),
            processes: BTreeMap::new(),
            objects: BTreeMap::new(),
            next_pid: 1,
            next_oid: 1,
        }
    }

    /// The OS instance's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enforcement hook statistics (experiment E12).
    pub fn hook_stats(&self) -> HookStats {
        self.hooks.stats()
    }

    /// Switches enforcement mode (trusted operation).
    pub fn set_enforcement_mode(&mut self, mode: EnforcementMode) {
        self.hooks.set_mode(mode);
    }

    /// The audit log recorded by this OS instance.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Takes the audit log, leaving an empty one (offload to the middleware/auditor).
    pub fn take_audit(&mut self) -> AuditLog {
        std::mem::replace(&mut self.audit, AuditLog::new(format!("os:{}", self.name)))
    }

    /// Spawns a process with the given security context.
    pub fn spawn(&mut self, name: impl Into<String>, context: SecurityContext) -> ProcessId {
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(pid, Process { entity: Entity::active(name, context) });
        pid
    }

    /// Forks a process: the child inherits the parent's security context but none of
    /// its privileges (creation flow, §6).
    pub fn fork(
        &mut self,
        parent: ProcessId,
        child_name: impl Into<String>,
    ) -> Result<ProcessId, KernelError> {
        let parent_entity =
            &self.processes.get(&parent).ok_or(KernelError::UnknownProcess { pid: parent })?.entity;
        let child_entity = parent_entity.create_child(child_name, EntityKind::Active);
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(pid, Process { entity: child_entity });
        Ok(pid)
    }

    /// Grants a label-change privilege to a process (performed by the application
    /// manager / tag owner via trusted middleware, §8.2.1).
    pub fn grant_privilege(
        &mut self,
        pid: ProcessId,
        tag: Tag,
        kind: PrivilegeKind,
    ) -> Result<(), KernelError> {
        let process = self.processes.get_mut(&pid).ok_or(KernelError::UnknownProcess { pid })?;
        process.entity.privileges_mut().grant(tag, kind);
        Ok(())
    }

    /// A process changes its own security context using its privileges
    /// (declassification / endorsement).
    pub fn change_label(
        &mut self,
        pid: ProcessId,
        add_secrecy: &[Tag],
        remove_secrecy: &[Tag],
        add_integrity: &[Tag],
        remove_integrity: &[Tag],
        at_millis: u64,
    ) -> Result<(), KernelError> {
        let process = self.processes.get_mut(&pid).ok_or(KernelError::UnknownProcess { pid })?;
        let before = process.entity.context().clone();
        for t in add_secrecy {
            process.entity.add_secrecy_tag(t.clone())?;
        }
        for t in remove_secrecy {
            process.entity.remove_secrecy_tag(t)?;
        }
        for t in add_integrity {
            process.entity.add_integrity_tag(t.clone())?;
        }
        for t in remove_integrity {
            process.entity.remove_integrity_tag(t)?;
        }
        let after = process.entity.context().clone();
        let entity_name = process.entity.name().to_string();
        self.audit.record(
            AuditEvent::LabelChanged { entity: entity_name, before, after, algorithm: None },
            at_millis,
        );
        Ok(())
    }

    /// The current security context of a process.
    pub fn process_context(&self, pid: ProcessId) -> Result<&SecurityContext, KernelError> {
        self.processes
            .get(&pid)
            .map(|p| p.entity.context())
            .ok_or(KernelError::UnknownProcess { pid })
    }

    /// The current security context of a kernel object.
    pub fn object_context(&self, object: KernelObjectId) -> Result<&SecurityContext, KernelError> {
        self.objects
            .get(&object)
            .map(|o| o.entity.context())
            .ok_or(KernelError::UnknownObject { object })
    }

    /// Creates a kernel object owned by `creator`; the object inherits the creator's
    /// security context (creation flow).
    pub fn create_object(
        &mut self,
        creator: ProcessId,
        name: impl Into<String>,
        kind: ObjectKind,
    ) -> Result<KernelObjectId, KernelError> {
        let creator_entity = &self
            .processes
            .get(&creator)
            .ok_or(KernelError::UnknownProcess { pid: creator })?
            .entity;
        let entity = creator_entity.create_child(name, EntityKind::Passive);
        let oid = KernelObjectId(self.next_oid);
        self.next_oid += 1;
        self.objects.insert(oid, KernelObject { entity, kind });
        Ok(oid)
    }

    fn flow_checked(
        &mut self,
        source_name: String,
        source_ctx: SecurityContext,
        dest_name: String,
        dest_ctx: SecurityContext,
        data_item: Option<String>,
        at_millis: u64,
    ) -> SyscallOutcome {
        let (decision, permitted) = self.hooks.check_flow(&source_ctx, &dest_ctx);
        if self.hooks.mode() != EnforcementMode::Disabled {
            self.audit.record(
                AuditEvent::FlowChecked {
                    source: source_name,
                    destination: dest_name,
                    source_context: source_ctx,
                    destination_context: dest_ctx,
                    decision: decision.clone(),
                    data_item,
                },
                at_millis,
            );
        }
        if permitted {
            SyscallOutcome::Completed
        } else {
            SyscallOutcome::Refused(decision)
        }
    }

    /// `write(pid, object)`: information flows from the process to the object.
    pub fn write(
        &mut self,
        pid: ProcessId,
        object: KernelObjectId,
        at_millis: u64,
    ) -> Result<SyscallOutcome, KernelError> {
        let (pname, pctx) = {
            let p = self.processes.get(&pid).ok_or(KernelError::UnknownProcess { pid })?;
            (p.entity.name().to_string(), p.entity.context().clone())
        };
        let (oname, octx) = {
            let o = self.objects.get(&object).ok_or(KernelError::UnknownObject { object })?;
            (o.entity.name().to_string(), o.entity.context().clone())
        };
        Ok(self.flow_checked(pname, pctx, oname.clone(), octx, Some(oname), at_millis))
    }

    /// `read(pid, object)`: information flows from the object to the process.
    pub fn read(
        &mut self,
        pid: ProcessId,
        object: KernelObjectId,
        at_millis: u64,
    ) -> Result<SyscallOutcome, KernelError> {
        let (pname, pctx) = {
            let p = self.processes.get(&pid).ok_or(KernelError::UnknownProcess { pid })?;
            (p.entity.name().to_string(), p.entity.context().clone())
        };
        let (oname, octx) = {
            let o = self.objects.get(&object).ok_or(KernelError::UnknownObject { object })?;
            (o.entity.name().to_string(), o.entity.context().clone())
        };
        Ok(self.flow_checked(oname.clone(), octx, pname, pctx, Some(oname), at_millis))
    }

    /// Inter-process communication: information flows from `from` to `to` (pipe write +
    /// read collapsed into one mediated flow).
    pub fn ipc(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        at_millis: u64,
    ) -> Result<SyscallOutcome, KernelError> {
        let (fname, fctx) = {
            let p = self.processes.get(&from).ok_or(KernelError::UnknownProcess { pid: from })?;
            (p.entity.name().to_string(), p.entity.context().clone())
        };
        let (tname, tctx) = {
            let p = self.processes.get(&to).ok_or(KernelError::UnknownProcess { pid: to })?;
            (p.entity.name().to_string(), p.entity.context().clone())
        };
        Ok(self.flow_checked(fname, fctx, tname, tctx, None, at_millis))
    }

    /// The kind of a kernel object.
    pub fn object_kind(&self, object: KernelObjectId) -> Result<ObjectKind, KernelError> {
        self.objects.get(&object).map(|o| o.kind).ok_or(KernelError::UnknownObject { object })
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of kernel objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn medical_ctx() -> SecurityContext {
        SecurityContext::from_names(["medical", "ann"], ["hosp-dev"])
    }

    #[test]
    fn created_objects_inherit_context() {
        let mut os = Os::new("node", EnforcementMode::Enforce);
        let p = os.spawn("analyser", medical_ctx());
        let f = os.create_object(p, "db", ObjectKind::File).unwrap();
        assert_eq!(os.object_context(f).unwrap(), &medical_ctx());
        assert_eq!(os.object_kind(f).unwrap(), ObjectKind::File);
        assert_eq!(os.process_count(), 1);
        assert_eq!(os.object_count(), 1);
    }

    #[test]
    fn fork_inherits_context_without_privileges() {
        let mut os = Os::new("node", EnforcementMode::Enforce);
        let parent = os.spawn("parent", medical_ctx());
        os.grant_privilege(parent, Tag::new("ann"), PrivilegeKind::SecrecyRemove).unwrap();
        let child = os.fork(parent, "child").unwrap();
        assert_eq!(os.process_context(child).unwrap(), &medical_ctx());
        // The child cannot declassify: privileges were not inherited.
        let err = os.change_label(child, &[], &[Tag::new("ann")], &[], &[], 0).unwrap_err();
        assert!(matches!(err, KernelError::Ifc(_)));
        // The parent can.
        os.change_label(parent, &[], &[Tag::new("ann")], &[], &[], 0).unwrap();
        assert!(!os.process_context(parent).unwrap().secrecy().contains_name("ann"));
    }

    #[test]
    fn write_and_read_enforce_flow_rule() {
        let mut os = Os::new("node", EnforcementMode::Enforce);
        let analyser = os.spawn("analyser", medical_ctx());
        let file = os.create_object(analyser, "db", ObjectKind::File).unwrap();
        assert!(os.write(analyser, file, 1).unwrap().is_completed());
        assert!(os.read(analyser, file, 2).unwrap().is_completed());

        let curious = os.spawn("curious", SecurityContext::public());
        // Reading secret data into a public process is refused.
        let outcome = os.read(curious, file, 3).unwrap();
        assert!(matches!(outcome, SyscallOutcome::Refused(FlowDecision::Denied(_))));
        // Writing from a public process into the medical file fails the integrity check
        // (the file requires hosp-dev integrity).
        let outcome = os.write(curious, file, 4).unwrap();
        assert!(!outcome.is_completed());
        // All four checks were audited.
        assert_eq!(os.audit().len(), 4);
        assert_eq!(os.audit().denied_flows().count(), 2);
    }

    #[test]
    fn ipc_between_same_domain_processes() {
        let mut os = Os::new("node", EnforcementMode::Enforce);
        let a = os.spawn("a", medical_ctx());
        let b = os.spawn("b", medical_ctx());
        let public = os.spawn("p", SecurityContext::public());
        assert!(os.ipc(a, b, 1).unwrap().is_completed());
        // Medical data must not reach the public process (secrecy).
        assert!(!os.ipc(a, public, 2).unwrap().is_completed());
        // The public process cannot write to the analyser either: the analyser requires
        // hosp-dev integrity the public process lacks.
        assert!(!os.ipc(public, a, 3).unwrap().is_completed());
    }

    #[test]
    fn audit_only_mode_permits_but_records() {
        let mut os = Os::new("node", EnforcementMode::AuditOnly);
        let secret = os.spawn("secret", medical_ctx());
        let public = os.spawn("public", SecurityContext::public());
        assert!(os.ipc(secret, public, 1).unwrap().is_completed());
        assert_eq!(os.hook_stats().observed_violations, 1);
        assert_eq!(os.audit().denied_flows().count(), 1);
    }

    #[test]
    fn disabled_mode_skips_audit() {
        let mut os = Os::new("node", EnforcementMode::Disabled);
        let secret = os.spawn("secret", medical_ctx());
        let public = os.spawn("public", SecurityContext::public());
        assert!(os.ipc(secret, public, 1).unwrap().is_completed());
        assert_eq!(os.audit().len(), 0);
        assert_eq!(os.hook_stats().invocations, 1);
    }

    #[test]
    fn unknown_ids_error() {
        let mut os = Os::new("node", EnforcementMode::Enforce);
        let p = os.spawn("p", SecurityContext::public());
        assert!(matches!(
            os.read(ProcessId(99), KernelObjectId(1), 0),
            Err(KernelError::UnknownProcess { .. })
        ));
        assert!(matches!(
            os.read(p, KernelObjectId(99), 0),
            Err(KernelError::UnknownObject { .. })
        ));
        assert!(matches!(os.fork(ProcessId(99), "c"), Err(KernelError::UnknownProcess { .. })));
        assert!(matches!(
            os.process_context(ProcessId(99)),
            Err(KernelError::UnknownProcess { .. })
        ));
        assert!(matches!(
            os.object_context(KernelObjectId(99)),
            Err(KernelError::UnknownObject { .. })
        ));
        assert!(matches!(
            os.grant_privilege(ProcessId(99), Tag::new("t"), PrivilegeKind::SecrecyAdd),
            Err(KernelError::UnknownProcess { .. })
        ));
    }

    #[test]
    fn endorsement_pipeline_fig5_at_os_level() {
        // Zeb's raw reading can reach the analyser only after the sanitiser endorses it.
        let mut os = Os::new("node", EnforcementMode::Enforce);
        let zeb_ctx = SecurityContext::from_names(["medical", "zeb"], ["zeb-dev", "consent"]);
        let analyser_ctx = SecurityContext::from_names(["medical", "zeb"], ["hosp-dev", "consent"]);

        let device = os.spawn("zeb-device", zeb_ctx.clone());
        let raw = os.create_object(device, "raw-reading", ObjectKind::File).unwrap();
        let analyser = os.spawn("zeb-analyser", analyser_ctx);
        // Direct read of the raw reading by the analyser is refused (integrity).
        assert!(!os.read(analyser, raw, 1).unwrap().is_completed());

        // The sanitiser starts in Zeb's context, reads, endorses itself, writes out.
        let sanitiser = os.spawn("sanitiser", zeb_ctx);
        os.grant_privilege(sanitiser, Tag::new("hosp-dev"), PrivilegeKind::IntegrityAdd).unwrap();
        os.grant_privilege(sanitiser, Tag::new("zeb-dev"), PrivilegeKind::IntegrityRemove).unwrap();
        assert!(os.read(sanitiser, raw, 2).unwrap().is_completed());
        os.change_label(sanitiser, &[], &[], &[Tag::new("hosp-dev")], &[Tag::new("zeb-dev")], 3)
            .unwrap();
        let standard = os.create_object(sanitiser, "standard-reading", ObjectKind::File).unwrap();
        assert!(os.write(sanitiser, standard, 4).unwrap().is_completed());
        assert!(os.read(analyser, standard, 5).unwrap().is_completed());
        // The label change is in the audit trail.
        assert_eq!(os.audit().of_kind(legaliot_audit::AuditEventKind::LabelChanged).count(), 1);
    }

    #[test]
    fn take_audit_leaves_fresh_log() {
        let mut os = Os::new("node", EnforcementMode::Enforce);
        let a = os.spawn("a", SecurityContext::public());
        let b = os.spawn("b", SecurityContext::public());
        os.ipc(a, b, 1).unwrap();
        let taken = os.take_audit();
        assert_eq!(taken.len(), 1);
        assert!(os.audit().is_empty());
        assert_eq!(os.name(), "node");
    }

    #[test]
    fn error_display() {
        assert!(KernelError::UnknownProcess { pid: ProcessId(1) }.to_string().contains("pid1"));
        assert!(KernelError::UnknownObject { object: KernelObjectId(2) }
            .to_string()
            .contains("obj2"));
        assert_eq!(ObjectKind::SharedMemory.to_string(), "shm");
        assert_eq!(ProcessId(3).to_string(), "pid3");
    }

    proptest! {
        /// Transparency invariant: in Enforce mode, a refused call never changes any
        /// context, and hook counters always add up.
        #[test]
        fn prop_refusal_has_no_side_effects(tags in proptest::collection::btree_set("[a-c]", 0..3)) {
            let mut os = Os::new("node", EnforcementMode::Enforce);
            let secret_ctx = SecurityContext::from_names(tags.iter().map(String::as_str), Vec::<&str>::new());
            let secret = os.spawn("secret", secret_ctx.clone());
            let public = os.spawn("public", SecurityContext::public());
            let before_secret = os.process_context(secret).unwrap().clone();
            let before_public = os.process_context(public).unwrap().clone();
            let _ = os.ipc(secret, public, 0).unwrap();
            prop_assert_eq!(os.process_context(secret).unwrap(), &before_secret);
            prop_assert_eq!(os.process_context(public).unwrap(), &before_public);
            let stats = os.hook_stats();
            prop_assert_eq!(stats.invocations, stats.allowed + stats.denied + stats.observed_violations);
        }
    }
}
