//! # legaliot-kernel
//!
//! A CamFlow-style OS-level IFC enforcement simulator (§8.2.1 of Singh et al.,
//! Middleware 2016).
//!
//! CamFlow implements IFC "at the OS kernel level, for entities co-hosted in the same OS
//! instance, including for inter-process communication", as a Linux Security Module
//! whose hooks are "invoked on system calls to decide whether a call is allowed to
//! proceed", attaching to each kernel object "a structure for storing security metadata
//! comprising the object's security context and privileges".
//!
//! This crate reproduces that architecture in simulation: an [`Os`] holds processes and
//! kernel objects (files, pipes, sockets, shared memory), every "system call" passes
//! through the [`lsm`] hook layer, which applies the IFC flow rule from `legaliot-ifc`,
//! records an audit event, and either permits or refuses the call — without the calling
//! "application" needing any awareness of IFC, exactly the transparency property the
//! paper stresses. Per-call overhead counters support experiment E12 ("the LSM
//! performance overhead is minimal").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lsm;
pub mod os;

pub use lsm::{EnforcementMode, HookStats, LsmHooks};
pub use os::{KernelError, KernelObjectId, ObjectKind, Os, ProcessId, SyscallOutcome};
