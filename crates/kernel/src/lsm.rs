//! The LSM-style hook layer: every kernel-mediated flow passes through here.

use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_ifc::{can_flow, FlowDecision, SecurityContext};

/// Whether IFC enforcement is active, audit-only, or disabled.
///
/// `Disabled` is the baseline for the overhead experiment (E12): the hook is still
/// called (as it would be with an inert LSM) but performs no label comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnforcementMode {
    /// Check labels and refuse violating calls.
    Enforce,
    /// Check labels and record decisions, but never refuse a call (provenance-only
    /// deployments, §8.3).
    AuditOnly,
    /// Perform no checks (baseline).
    Disabled,
}

impl fmt::Display for EnforcementMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EnforcementMode::Enforce => "enforce",
            EnforcementMode::AuditOnly => "audit-only",
            EnforcementMode::Disabled => "disabled",
        };
        f.write_str(s)
    }
}

/// Counters kept by the hook layer, used to quantify enforcement overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HookStats {
    /// Total hook invocations.
    pub invocations: u64,
    /// Flows allowed.
    pub allowed: u64,
    /// Flows denied (only in `Enforce` mode).
    pub denied: u64,
    /// Violations observed but not blocked (only in `AuditOnly` mode).
    pub observed_violations: u64,
}

/// The hook layer itself: a mode plus counters.
#[derive(Debug, Clone, Default)]
pub struct LsmHooks {
    mode: Option<EnforcementMode>,
    stats: HookStats,
}

impl LsmHooks {
    /// Creates a hook layer in the given mode.
    pub fn new(mode: EnforcementMode) -> Self {
        LsmHooks { mode: Some(mode), stats: HookStats::default() }
    }

    /// The current mode.
    pub fn mode(&self) -> EnforcementMode {
        self.mode.unwrap_or(EnforcementMode::Enforce)
    }

    /// Switches mode (e.g. a trusted reconfiguration turning a node to audit-only).
    pub fn set_mode(&mut self, mode: EnforcementMode) {
        self.mode = Some(mode);
    }

    /// The counters so far.
    pub fn stats(&self) -> HookStats {
        self.stats
    }

    /// Resets the counters (between benchmark iterations).
    pub fn reset_stats(&mut self) {
        self.stats = HookStats::default();
    }

    /// The hook proper: decides whether a flow from `source` to `destination` may
    /// proceed. Returns the decision; in `AuditOnly`/`Disabled` modes the call is always
    /// permitted but the decision still reports what enforcement *would* have done (in
    /// `Disabled` mode no check is made and `Allowed` is reported).
    pub fn check_flow(
        &mut self,
        source: &SecurityContext,
        destination: &SecurityContext,
    ) -> (FlowDecision, bool) {
        self.stats.invocations += 1;
        match self.mode() {
            EnforcementMode::Disabled => {
                self.stats.allowed += 1;
                (FlowDecision::Allowed, true)
            }
            EnforcementMode::AuditOnly => {
                let decision = can_flow(source, destination);
                if decision.is_denied() {
                    self.stats.observed_violations += 1;
                } else {
                    self.stats.allowed += 1;
                }
                (decision, true)
            }
            EnforcementMode::Enforce => {
                let decision = can_flow(source, destination);
                let permitted = decision.is_allowed();
                if permitted {
                    self.stats.allowed += 1;
                } else {
                    self.stats.denied += 1;
                }
                (decision, permitted)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(s: &[&str], i: &[&str]) -> SecurityContext {
        SecurityContext::from_names(s.iter().copied(), i.iter().copied())
    }

    #[test]
    fn enforce_mode_blocks_and_counts() {
        let mut hooks = LsmHooks::new(EnforcementMode::Enforce);
        let secret = ctx(&["medical"], &[]);
        let public = ctx(&[], &[]);
        let (decision, permitted) = hooks.check_flow(&public, &secret);
        assert!(decision.is_allowed());
        assert!(permitted);
        let (decision, permitted) = hooks.check_flow(&secret, &public);
        assert!(decision.is_denied());
        assert!(!permitted);
        let stats = hooks.stats();
        assert_eq!(stats.invocations, 2);
        assert_eq!(stats.allowed, 1);
        assert_eq!(stats.denied, 1);
        assert_eq!(stats.observed_violations, 0);
    }

    #[test]
    fn audit_only_mode_observes_but_permits() {
        let mut hooks = LsmHooks::new(EnforcementMode::AuditOnly);
        let secret = ctx(&["medical"], &[]);
        let public = ctx(&[], &[]);
        let (decision, permitted) = hooks.check_flow(&secret, &public);
        assert!(decision.is_denied());
        assert!(permitted);
        assert_eq!(hooks.stats().observed_violations, 1);
        assert_eq!(hooks.stats().denied, 0);
    }

    #[test]
    fn disabled_mode_skips_checks() {
        let mut hooks = LsmHooks::new(EnforcementMode::Disabled);
        let secret = ctx(&["medical"], &[]);
        let public = ctx(&[], &[]);
        let (decision, permitted) = hooks.check_flow(&secret, &public);
        assert!(decision.is_allowed());
        assert!(permitted);
        assert_eq!(hooks.stats().allowed, 1);
    }

    #[test]
    fn mode_switching_and_reset() {
        let mut hooks = LsmHooks::new(EnforcementMode::Enforce);
        assert_eq!(hooks.mode(), EnforcementMode::Enforce);
        hooks.set_mode(EnforcementMode::AuditOnly);
        assert_eq!(hooks.mode(), EnforcementMode::AuditOnly);
        hooks.check_flow(&SecurityContext::public(), &SecurityContext::public());
        assert_eq!(hooks.stats().invocations, 1);
        hooks.reset_stats();
        assert_eq!(hooks.stats(), HookStats::default());
        assert_eq!(EnforcementMode::Enforce.to_string(), "enforce");
        assert_eq!(EnforcementMode::AuditOnly.to_string(), "audit-only");
        assert_eq!(EnforcementMode::Disabled.to_string(), "disabled");
    }

    #[test]
    fn default_hooks_enforce() {
        let hooks = LsmHooks::default();
        assert_eq!(hooks.mode(), EnforcementMode::Enforce);
    }
}
