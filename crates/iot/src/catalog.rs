//! Device and deployment catalogs for fleet generation.
//!
//! The hand-built workloads in [`crate::workload`] model two concrete
//! deployments. Fleet-scale testing (thousands of heterogeneous deployments)
//! instead draws from a *catalog*: per-deployment-kind lists of device and hub
//! archetypes that a seeded generator instantiates into [`crate::Thing`]s.
//! Keeping the vocabulary here (rather than in the generator) means workloads,
//! docs and generated fleets name the same device population.

use crate::things::ThingKind;

/// A device archetype: a template a generator stamps out into concrete things.
///
/// `stem` becomes part of the thing name (`{deployment}-{stem}-{i}`) and
/// `message_stem` part of the message type it produces or consumes
/// (`{deployment}.{message_stem}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceArchetype {
    /// Name stem, e.g. `bed-sensor`.
    pub stem: &'static str,
    /// The thing kind instances take.
    pub kind: ThingKind,
    /// Message-type stem for the telemetry it emits (producers) or the feed it
    /// serves (hubs), e.g. `bed-telemetry`.
    pub message_stem: &'static str,
    /// The unit or nature of the primary reading, for schema attribute naming.
    pub unit: &'static str,
}

/// The kind of deployment a profile describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeploymentKind {
    /// A monitored home (§7's medical home-monitoring shape).
    Home,
    /// A hospital ward.
    Hospital,
    /// A managed vehicle fleet.
    VehicleFleet,
}

impl DeploymentKind {
    /// Stable lowercase name, used in generated deployment manifests.
    pub fn name(self) -> &'static str {
        match self {
            DeploymentKind::Home => "home",
            DeploymentKind::Hospital => "hospital",
            DeploymentKind::VehicleFleet => "vehicle-fleet",
        }
    }
}

/// A deployment profile: the device population one kind of deployment draws
/// from. `devices` are producers (sensors/actuators reporting state); `hubs`
/// are consumers (gateways, applications, cloud services) that subscribe to
/// device telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentProfile {
    /// Which deployment kind this profile describes.
    pub kind: DeploymentKind,
    /// Producer archetypes (each emits its `message_stem` telemetry).
    pub devices: &'static [DeviceArchetype],
    /// Consumer archetypes (each subscribes to device telemetry).
    pub hubs: &'static [DeviceArchetype],
}

/// The home profile: ambient and medical sensing behind a home hub.
pub const HOME: DeploymentProfile = DeploymentProfile {
    kind: DeploymentKind::Home,
    devices: &[
        DeviceArchetype {
            stem: "bed-sensor",
            kind: ThingKind::Sensor,
            message_stem: "bed-telemetry",
            unit: "occupancy",
        },
        DeviceArchetype {
            stem: "door-sensor",
            kind: ThingKind::Sensor,
            message_stem: "door-events",
            unit: "open",
        },
        DeviceArchetype {
            stem: "thermostat",
            kind: ThingKind::Actuator,
            message_stem: "climate",
            unit: "celsius",
        },
        DeviceArchetype {
            stem: "wearable",
            kind: ThingKind::Sensor,
            message_stem: "vitals",
            unit: "bpm",
        },
    ],
    hubs: &[
        DeviceArchetype {
            stem: "home-hub",
            kind: ThingKind::Gateway,
            message_stem: "home-feed",
            unit: "events",
        },
        DeviceArchetype {
            stem: "carer-app",
            kind: ThingKind::Application,
            message_stem: "carer-feed",
            unit: "events",
        },
    ],
};

/// The hospital-ward profile: clinical devices behind ward and records systems.
pub const HOSPITAL: DeploymentProfile = DeploymentProfile {
    kind: DeploymentKind::Hospital,
    devices: &[
        DeviceArchetype {
            stem: "ward-monitor",
            kind: ThingKind::Sensor,
            message_stem: "ward-obs",
            unit: "spo2",
        },
        DeviceArchetype {
            stem: "infusion-pump",
            kind: ThingKind::Actuator,
            message_stem: "infusion",
            unit: "ml-per-hour",
        },
        DeviceArchetype {
            stem: "ecg",
            kind: ThingKind::Sensor,
            message_stem: "ecg-trace",
            unit: "mv",
        },
    ],
    hubs: &[
        DeviceArchetype {
            stem: "ward-station",
            kind: ThingKind::Gateway,
            message_stem: "ward-feed",
            unit: "events",
        },
        DeviceArchetype {
            stem: "ehr-service",
            kind: ThingKind::CloudService,
            message_stem: "ehr-feed",
            unit: "records",
        },
    ],
};

/// The vehicle-fleet profile: on-vehicle units reporting to fleet services.
pub const VEHICLE_FLEET: DeploymentProfile = DeploymentProfile {
    kind: DeploymentKind::VehicleFleet,
    devices: &[
        DeviceArchetype {
            stem: "gps-tracker",
            kind: ThingKind::Sensor,
            message_stem: "position",
            unit: "degrees",
        },
        DeviceArchetype {
            stem: "engine-ecu",
            kind: ThingKind::Sensor,
            message_stem: "engine-stats",
            unit: "rpm",
        },
        DeviceArchetype {
            stem: "dashcam",
            kind: ThingKind::Sensor,
            message_stem: "dash-footage",
            unit: "frames",
        },
        DeviceArchetype {
            stem: "cargo-sensor",
            kind: ThingKind::Sensor,
            message_stem: "cargo-state",
            unit: "kg",
        },
    ],
    hubs: &[
        DeviceArchetype {
            stem: "fleet-gateway",
            kind: ThingKind::Gateway,
            message_stem: "fleet-feed",
            unit: "events",
        },
        DeviceArchetype {
            stem: "dispatch-service",
            kind: ThingKind::CloudService,
            message_stem: "dispatch-feed",
            unit: "jobs",
        },
    ],
};

/// Every deployment profile, in a stable order generators index by seed.
pub const PROFILES: &[DeploymentProfile] = &[HOME, HOSPITAL, VEHICLE_FLEET];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn profiles_cover_all_kinds_in_stable_order() {
        let kinds: Vec<_> = PROFILES.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![DeploymentKind::Home, DeploymentKind::Hospital, DeploymentKind::VehicleFleet]
        );
        assert_eq!(DeploymentKind::Home.name(), "home");
        assert_eq!(DeploymentKind::Hospital.name(), "hospital");
        assert_eq!(DeploymentKind::VehicleFleet.name(), "vehicle-fleet");
    }

    #[test]
    fn every_profile_has_devices_and_hubs() {
        for profile in PROFILES {
            assert!(!profile.devices.is_empty(), "{} has no devices", profile.kind.name());
            assert!(!profile.hubs.is_empty(), "{} has no hubs", profile.kind.name());
            for hub in profile.hubs {
                assert!(
                    !matches!(hub.kind, ThingKind::Sensor | ThingKind::Actuator),
                    "hub archetype {} should not be a device kind",
                    hub.stem
                );
            }
        }
    }

    #[test]
    fn stems_and_message_stems_are_unique_within_a_profile() {
        for profile in PROFILES {
            let all: Vec<_> = profile.devices.iter().chain(profile.hubs).collect();
            let stems: BTreeSet<_> = all.iter().map(|a| a.stem).collect();
            let msgs: BTreeSet<_> = all.iter().map(|a| a.message_stem).collect();
            assert_eq!(stems.len(), all.len(), "duplicate stem in {}", profile.kind.name());
            assert_eq!(msgs.len(), all.len(), "duplicate message stem in {}", profile.kind.name());
        }
    }
}
