//! # legaliot-iot
//!
//! IoT entity modelling and synthetic workload generation for the reproduction's
//! scenarios (§2 and §7 of Singh et al., Middleware 2016).
//!
//! * [`things`] — the 'thing' taxonomy (sensors, actuators, gateways, cloud services,
//!   applications), functional component chains (Fig. 2) and their conversion into
//!   middleware components;
//! * [`workload`] — deterministic synthetic workloads: the medical home-monitoring
//!   deployment of §7 (patients, hospital-issued and third-party devices, analysers,
//!   statistics generation, emergencies) and a smart-city sensing workload, substituting
//!   for the real deployments the paper envisions (see DESIGN.md);
//! * [`catalog`] — device/deployment archetype catalogs (homes, hospital wards,
//!   vehicle fleets) that fleet generators instantiate into things at scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod things;
pub mod workload;

pub use catalog::{DeploymentKind, DeploymentProfile, DeviceArchetype, PROFILES};
pub use things::{Chain, Thing, ThingKind};
pub use workload::{CityWorkload, HomeMonitoringWorkload, Patient, SensorReading, WorkloadEvent};
