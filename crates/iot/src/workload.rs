//! Synthetic workload generators.
//!
//! The paper motivates its design with a medical home-monitoring deployment (§7,
//! Figs. 4–7) and applications such as smart cities (§1). Neither deployment's real
//! data is available, so the workloads here generate deterministic synthetic equivalents
//! that exercise the same code paths (see the substitution table in DESIGN.md): streams
//! of sensor readings with occasional emergencies, and city sensors spread across
//! administrative domains.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use legaliot_ifc::SecurityContext;

use crate::things::{Thing, ThingKind};

/// A patient in the home-monitoring workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Patient {
    /// The patient's name (lower-case, used as an IFC tag).
    pub name: String,
    /// Whether their device is hospital-issued (`hosp-dev`) or third-party (needs the
    /// input sanitiser, Fig. 5).
    pub hospital_device: bool,
    /// Whether consent for processing has been recorded.
    pub consent: bool,
}

/// A single sensor reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// The patient the reading belongs to.
    pub patient: String,
    /// The producing sensor component.
    pub sensor: String,
    /// Heart rate in bpm.
    pub heart_rate: u32,
    /// Simulated time of the reading (ms).
    pub at_millis: u64,
}

impl SensorReading {
    /// Whether the reading indicates a medical emergency (the Fig. 7 trigger).
    pub fn is_emergency(&self) -> bool {
        self.heart_rate >= 180
    }
}

/// An event produced by a workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadEvent {
    /// A sensor produced a reading.
    Reading(SensorReading),
    /// A nurse arrived at or left a patient's home.
    NursePresence {
        /// The nurse's name.
        nurse: String,
        /// The patient whose home it is.
        patient: String,
        /// Whether the nurse is now present.
        present: bool,
        /// When (ms).
        at_millis: u64,
    },
}

/// The medical home-monitoring workload of §7.
///
/// Generates the things (sensors, analysers, sanitiser, statistics generator, ward
/// manager) and a deterministic stream of readings with configurable emergency
/// probability.
#[derive(Debug, Clone)]
pub struct HomeMonitoringWorkload {
    /// The patients enrolled.
    pub patients: Vec<Patient>,
    rng: StdRng,
    /// Probability that any given reading is an emergency (0.0–1.0).
    pub emergency_probability: f64,
    /// Interval between readings per patient, in simulated ms.
    pub reading_interval_millis: u64,
}

impl HomeMonitoringWorkload {
    /// Creates the standard two-patient workload of the paper's figures: Ann (hospital
    /// device) and Zeb (third-party device).
    pub fn fig7(seed: u64) -> Self {
        HomeMonitoringWorkload {
            patients: vec![
                Patient { name: "ann".into(), hospital_device: true, consent: true },
                Patient { name: "zeb".into(), hospital_device: false, consent: true },
            ],
            rng: StdRng::seed_from_u64(seed),
            emergency_probability: 0.05,
            reading_interval_millis: 1_000,
        }
    }

    /// Creates a workload with `n` synthetic patients (for scale experiments).
    pub fn with_patients(n: usize, seed: u64) -> Self {
        let patients = (0..n)
            .map(|i| Patient {
                name: format!("patient-{i}"),
                hospital_device: i % 3 != 0,
                consent: true,
            })
            .collect();
        HomeMonitoringWorkload {
            patients,
            rng: StdRng::seed_from_u64(seed),
            emergency_probability: 0.02,
            reading_interval_millis: 1_000,
        }
    }

    /// The security context of a patient's sensor (Fig. 4).
    pub fn sensor_context(patient: &Patient) -> SecurityContext {
        let device_tag = if patient.hospital_device { "hosp-dev" } else { "third-party-dev" };
        let mut integrity = vec![device_tag.to_string()];
        if patient.consent {
            integrity.push("consent".to_string());
        }
        SecurityContext::from_names(["medical".to_string(), patient.name.clone()], integrity)
    }

    /// The security context of a patient's hospital-based analyser (Fig. 4): requires
    /// hospital-standard, consented data.
    pub fn analyser_context(patient: &Patient) -> SecurityContext {
        SecurityContext::from_names(
            ["medical".to_string(), patient.name.clone()],
            ["hosp-dev".to_string(), "consent".to_string()],
        )
    }

    /// Generates every thing in the deployment: per-patient sensors and analysers, the
    /// shared input sanitiser, statistics generator and ward manager (Fig. 7).
    pub fn things(&self) -> Vec<Thing> {
        let mut things = Vec::new();
        for p in &self.patients {
            things.push(
                Thing::new(
                    format!("{}-sensor", p.name),
                    ThingKind::Sensor,
                    p.name.clone(),
                    format!("{}-home-gateway", p.name),
                    Self::sensor_context(p),
                )
                .produces("sensor-reading")
                .consumes("actuation-command"),
            );
            things.push(
                Thing::new(
                    format!("{}-analyser", p.name),
                    ThingKind::CloudService,
                    "hospital",
                    "hospital-cloud",
                    Self::analyser_context(p),
                )
                .consumes("sensor-reading")
                .produces("analysis-report"),
            );
        }
        // The input sanitiser starts able to read third-party data for every patient.
        let all_patients: Vec<String> = self.patients.iter().map(|p| p.name.clone()).collect();
        let mut sanitiser_secrecy = vec!["medical".to_string()];
        sanitiser_secrecy.extend(all_patients.clone());
        things.push(
            Thing::new(
                "input-sanitiser",
                ThingKind::CloudService,
                "hospital",
                "hospital-cloud",
                SecurityContext::from_names(
                    sanitiser_secrecy.clone(),
                    ["third-party-dev".to_string(), "consent".to_string()],
                ),
            )
            .consumes("sensor-reading")
            .produces("sensor-reading"),
        );
        // The statistics generator reads every patient's (standardised) data.
        things.push(
            Thing::new(
                "stats-generator",
                ThingKind::CloudService,
                "hospital",
                "hospital-cloud",
                SecurityContext::from_names(
                    sanitiser_secrecy,
                    ["hosp-dev".to_string(), "consent".to_string()],
                ),
            )
            .consumes("sensor-reading")
            .produces("statistics"),
        );
        // The ward manager may only see anonymised statistics (Fig. 6).
        things.push(
            Thing::new(
                "ward-manager",
                ThingKind::Application,
                "hospital",
                "hospital-cloud",
                SecurityContext::from_names(["medical", "stats"], ["anon"]),
            )
            .consumes("statistics"),
        );
        // The emergency doctor is connected only by the emergency-response policy; the
        // emergency team must be able to receive any patient's data once connected
        // ("replugging the sensor-data streams", §3 Concern 6), so its secrecy label
        // covers every enrolled patient.
        let mut doctor_secrecy = vec!["medical".to_string()];
        doctor_secrecy.extend(all_patients);
        things.push(
            Thing::new(
                "emergency-doctor",
                ThingKind::Application,
                "hospital",
                "hospital-cloud",
                SecurityContext::from_names(doctor_secrecy, Vec::<&str>::new()),
            )
            .consumes("analysis-report"),
        );
        things
    }

    /// Generates `per_patient` readings for every patient, starting at `start_millis`.
    pub fn readings(&mut self, per_patient: usize, start_millis: u64) -> Vec<SensorReading> {
        let mut out = Vec::with_capacity(per_patient * self.patients.len());
        for round in 0..per_patient {
            let at = start_millis + round as u64 * self.reading_interval_millis;
            for p in &self.patients {
                let emergency = self.rng.gen_bool(self.emergency_probability);
                let heart_rate = if emergency {
                    self.rng.gen_range(180..220)
                } else {
                    self.rng.gen_range(55..110)
                };
                out.push(SensorReading {
                    patient: p.name.clone(),
                    sensor: format!("{}-sensor", p.name),
                    heart_rate,
                    at_millis: at,
                });
            }
        }
        out
    }
}

/// A smart-city sensing workload: traffic and air-quality sensors across city districts,
/// with a council analytics service and a commercial advertiser that must never receive
/// personally identifiable movement data.
#[derive(Debug, Clone)]
pub struct CityWorkload {
    /// Number of districts.
    pub districts: usize,
    /// Sensors per district.
    pub sensors_per_district: usize,
}

impl CityWorkload {
    /// Creates a city workload.
    pub fn new(districts: usize, sensors_per_district: usize) -> Self {
        CityWorkload { districts, sensors_per_district }
    }

    /// Generates the city's things: per-district sensors and gateways, the council
    /// analytics service, an anonymiser, and the advertiser endpoint.
    pub fn things(&self) -> Vec<Thing> {
        let mut things = Vec::new();
        for d in 0..self.districts {
            for s in 0..self.sensors_per_district {
                things.push(
                    Thing::new(
                        format!("district{d}-sensor{s}"),
                        ThingKind::Sensor,
                        "city-council",
                        format!("district{d}-gateway"),
                        SecurityContext::from_names(["city", "movement"], ["council-dev"]),
                    )
                    .produces("traffic-reading"),
                );
            }
            things.push(
                Thing::new(
                    format!("district{d}-gateway"),
                    ThingKind::Gateway,
                    "city-council",
                    format!("district{d}-gateway"),
                    SecurityContext::from_names(["city", "movement"], ["council-dev"]),
                )
                .consumes("traffic-reading")
                .produces("traffic-reading"),
            );
        }
        things.push(
            Thing::new(
                "council-analytics",
                ThingKind::CloudService,
                "city-council",
                "council-cloud",
                SecurityContext::from_names(["city", "movement"], ["council-dev"]),
            )
            .consumes("traffic-reading")
            .produces("city-statistics"),
        );
        things.push(
            Thing::new(
                "city-anonymiser",
                ThingKind::CloudService,
                "city-council",
                "council-cloud",
                SecurityContext::from_names(["city", "movement"], ["council-dev"]),
            )
            .consumes("traffic-reading")
            .produces("city-statistics"),
        );
        things.push(
            Thing::new(
                "advertiser",
                ThingKind::Application,
                "ad-corp",
                "ad-cloud",
                SecurityContext::from_names(["city"], Vec::<&str>::new()),
            )
            .consumes("city-statistics"),
        );
        things
    }

    /// Total number of sensors.
    pub fn sensor_count(&self) -> usize {
        self.districts * self.sensors_per_district
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_ifc::can_flow;

    #[test]
    fn fig7_workload_matches_paper_labels() {
        let w = HomeMonitoringWorkload::fig7(1);
        assert_eq!(w.patients.len(), 2);
        let ann = &w.patients[0];
        let zeb = &w.patients[1];
        let ann_sensor = HomeMonitoringWorkload::sensor_context(ann);
        let ann_analyser = HomeMonitoringWorkload::analyser_context(ann);
        let zeb_sensor = HomeMonitoringWorkload::sensor_context(zeb);
        // Fig. 4: Ann's sensor flows to her analyser; Zeb's sensor does not.
        assert!(can_flow(&ann_sensor, &ann_analyser).is_allowed());
        assert!(can_flow(&zeb_sensor, &ann_analyser).is_denied());
        // Zeb's own analyser still refuses his raw (non-standard) data.
        let zeb_analyser = HomeMonitoringWorkload::analyser_context(zeb);
        assert!(can_flow(&zeb_sensor, &zeb_analyser).is_denied());
    }

    #[test]
    fn things_cover_the_fig7_deployment() {
        let w = HomeMonitoringWorkload::fig7(1);
        let things = w.things();
        let names: Vec<&str> = things.iter().map(|t| t.name.as_str()).collect();
        for expected in [
            "ann-sensor",
            "ann-analyser",
            "zeb-sensor",
            "zeb-analyser",
            "input-sanitiser",
            "stats-generator",
            "ward-manager",
            "emergency-doctor",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // 2 per patient + 4 shared.
        assert_eq!(things.len(), 8);
    }

    #[test]
    fn readings_are_deterministic_for_a_seed() {
        let mut a = HomeMonitoringWorkload::fig7(99);
        let mut b = HomeMonitoringWorkload::fig7(99);
        assert_eq!(a.readings(10, 0), b.readings(10, 0));
        let mut c = HomeMonitoringWorkload::fig7(100);
        assert_ne!(a.readings(10, 0), c.readings(10, 0));
    }

    #[test]
    fn emergencies_follow_probability() {
        let mut w = HomeMonitoringWorkload::fig7(7);
        w.emergency_probability = 1.0;
        let readings = w.readings(5, 0);
        assert!(readings.iter().all(SensorReading::is_emergency));
        w.emergency_probability = 0.0;
        let readings = w.readings(5, 0);
        assert!(readings.iter().all(|r| !r.is_emergency()));
    }

    #[test]
    fn scale_workload_generates_n_patients() {
        let w = HomeMonitoringWorkload::with_patients(25, 3);
        assert_eq!(w.patients.len(), 25);
        // 2 things per patient + 4 shared.
        assert_eq!(w.things().len(), 2 * 25 + 4);
        // A third of patients use third-party devices.
        assert!(w.patients.iter().any(|p| !p.hospital_device));
    }

    #[test]
    fn readings_advance_time_per_round() {
        let mut w = HomeMonitoringWorkload::fig7(1);
        let readings = w.readings(3, 1_000);
        assert_eq!(readings.len(), 6);
        assert_eq!(readings[0].at_millis, 1_000);
        assert_eq!(readings[5].at_millis, 3_000);
        assert!(readings[0].sensor.ends_with("-sensor"));
    }

    #[test]
    fn city_workload_shape() {
        let city = CityWorkload::new(4, 3);
        assert_eq!(city.sensor_count(), 12);
        let things = city.things();
        // 12 sensors + 4 gateways + analytics + anonymiser + advertiser.
        assert_eq!(things.len(), 12 + 4 + 3);
        // The advertiser must not be able to receive raw movement data directly.
        let sensor = things.iter().find(|t| t.name == "district0-sensor0").unwrap();
        let advertiser = things.iter().find(|t| t.name == "advertiser").unwrap();
        assert!(can_flow(&sensor.context, &advertiser.context).is_denied());
    }
}
