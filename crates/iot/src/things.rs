//! Things and functional component chains.

use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_ifc::SecurityContext;
use legaliot_middleware::{Component, Principal};

/// The kinds of 'thing' in the paper's architecture (§2): "an entity, physical or
/// virtual, capable of interaction in its own right".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThingKind {
    /// A sensor producing readings.
    Sensor,
    /// An actuator accepting commands.
    Actuator,
    /// A gateway/hub fronting a subsystem (§2.1).
    Gateway,
    /// A cloud-hosted service (storage, processing, analytics; §2.2).
    CloudService,
    /// An application or user-facing endpoint.
    Application,
}

impl fmt::Display for ThingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThingKind::Sensor => "sensor",
            ThingKind::Actuator => "actuator",
            ThingKind::Gateway => "gateway",
            ThingKind::CloudService => "cloud-service",
            ThingKind::Application => "application",
        };
        f.write_str(s)
    }
}

/// A 'thing': a named entity of a given kind, owned by a principal, hosted on a node,
/// with an IFC security context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Thing {
    /// The thing's name (unique in a deployment).
    pub name: String,
    /// What kind of thing it is.
    pub kind: ThingKind,
    /// The owning principal (person or organisation).
    pub owner: String,
    /// The network node hosting it.
    pub node: String,
    /// Its initial security context.
    pub context: SecurityContext,
    /// Message types it produces.
    pub produces: Vec<String>,
    /// Message types it consumes.
    pub consumes: Vec<String>,
}

impl Thing {
    /// Creates a thing with no declared message types.
    pub fn new(
        name: impl Into<String>,
        kind: ThingKind,
        owner: impl Into<String>,
        node: impl Into<String>,
        context: SecurityContext,
    ) -> Self {
        Thing {
            name: name.into(),
            kind,
            owner: owner.into(),
            node: node.into(),
            context,
            produces: Vec::new(),
            consumes: Vec::new(),
        }
    }

    /// Declares a produced message type.
    pub fn produces(mut self, message_type: impl Into<String>) -> Self {
        self.produces.push(message_type.into());
        self
    }

    /// Declares a consumed message type.
    pub fn consumes(mut self, message_type: impl Into<String>) -> Self {
        self.consumes.push(message_type.into());
        self
    }

    /// Converts the thing into a middleware [`Component`].
    pub fn to_component(&self) -> Component {
        let mut builder = Component::builder(
            self.name.clone(),
            Principal::new(self.owner.clone()).with_role(self.kind.to_string()),
        )
        .context(self.context.clone())
        .on_node(self.node.clone());
        for p in &self.produces {
            builder = builder.produces(p.as_str());
        }
        for c in &self.consumes {
            builder = builder.consumes(c.as_str());
        }
        builder.build()
    }
}

impl fmt::Display for Thing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, owned by {})", self.name, self.kind, self.owner)
    }
}

/// A functional component chain (Fig. 2): an ordered sequence of things through which
/// data flows to realise some functionality.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Chain {
    /// The chain's name (e.g. `home-manager → gateway → app → DB → analyser`).
    pub name: String,
    /// The ordered component names.
    pub stages: Vec<String>,
}

impl Chain {
    /// Creates a named chain from ordered stage names.
    pub fn new<I, S>(name: impl Into<String>, stages: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Chain { name: name.into(), stages: stages.into_iter().map(Into::into).collect() }
    }

    /// The consecutive `(from, to)` hops of the chain.
    pub fn hops(&self) -> Vec<(String, String)> {
        self.stages.windows(2).map(|w| (w[0].clone(), w[1].clone())).collect()
    }

    /// The number of hops (stages minus one, zero for degenerate chains).
    pub fn len(&self) -> usize {
        self.stages.len().saturating_sub(1)
    }

    /// Whether the chain has no hops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A synthetic chain of `n` stages named `prefix-0 … prefix-(n-1)`, used by the
    /// chain-length experiments (E2).
    pub fn synthetic(prefix: &str, n: usize) -> Self {
        Chain::new(format!("{prefix}-chain"), (0..n).map(|i| format!("{prefix}-{i}")))
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.stages.join(" -> "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thing_to_component_carries_everything() {
        let thing = Thing::new(
            "ann-sensor",
            ThingKind::Sensor,
            "ann",
            "ann-home-gateway",
            SecurityContext::from_names(["medical", "ann"], ["hosp-dev", "consent"]),
        )
        .produces("sensor-reading")
        .consumes("actuation-command");
        let component = thing.to_component();
        assert_eq!(component.name(), "ann-sensor");
        assert_eq!(component.principal().name, "ann");
        assert!(component.principal().has_role("sensor"));
        assert_eq!(component.node(), "ann-home-gateway");
        assert!(component.context().secrecy().contains_name("medical"));
        assert_eq!(component.produces().len(), 1);
        assert_eq!(component.consumes().len(), 1);
        assert!(thing.to_string().contains("ann-sensor"));
    }

    #[test]
    fn chain_hops_and_length() {
        let chain = Chain::new("fig2", ["home-manager", "gateway", "app", "db", "analyser"]);
        assert_eq!(chain.len(), 4);
        assert!(!chain.is_empty());
        let hops = chain.hops();
        assert_eq!(hops.len(), 4);
        assert_eq!(hops[0], ("home-manager".to_string(), "gateway".to_string()));
        assert_eq!(hops[3], ("db".to_string(), "analyser".to_string()));
        assert!(chain.to_string().contains("->"));
    }

    #[test]
    fn degenerate_chains() {
        assert!(Chain::new("empty", Vec::<String>::new()).is_empty());
        assert!(Chain::new("single", ["only"]).is_empty());
        assert_eq!(Chain::default().len(), 0);
    }

    #[test]
    fn synthetic_chain_generation() {
        let chain = Chain::synthetic("stage", 8);
        assert_eq!(chain.stages.len(), 8);
        assert_eq!(chain.len(), 7);
        assert_eq!(chain.stages[0], "stage-0");
        assert_eq!(chain.stages[7], "stage-7");
    }

    #[test]
    fn kind_display() {
        assert_eq!(ThingKind::Sensor.to_string(), "sensor");
        assert_eq!(ThingKind::CloudService.to_string(), "cloud-service");
        assert_eq!(ThingKind::Gateway.to_string(), "gateway");
        assert_eq!(ThingKind::Actuator.to_string(), "actuator");
        assert_eq!(ThingKind::Application.to_string(), "application");
    }
}
