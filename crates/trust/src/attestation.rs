//! Simulated hardware roots of trust and remote attestation.
//!
//! §4 surveys TPM, Intel SGX and ARM TrustZone, and §9.2 Concern 4 notes that hardware
//! support can "certify the physical (GPS) location of machines" or "guarantee sensor
//! accuracy or other physical properties". §9.3 Challenge 5 relies on remote attestation
//! to establish trust before interacting with components "never before seen".
//!
//! A [`HardwareRoot`] holds a device key and produces [`AttestationQuote`]s over a set
//! of [`PlatformClaim`]s (measured software, location, enforcement capability). A
//! verifier checks a quote against the root's registered key and its own freshness and
//! claim requirements.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A claim about the attested platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlatformClaim {
    /// The platform runs the named, measured software stack (e.g. `camflow-lsm v0.9`).
    MeasuredSoftware {
        /// The software identity string.
        identity: String,
    },
    /// The platform enforces IFC at the kernel level.
    IfcEnforcementPresent,
    /// The platform is physically located at the given coordinates (geo-fencing, \[44\]).
    Location {
        /// Latitude in degrees.
        latitude: f64,
        /// Longitude in degrees.
        longitude: f64,
    },
    /// The platform's sensors are calibrated to the given accuracy class.
    SensorAccuracy {
        /// Accuracy class label, e.g. `clinical-grade`.
        class: String,
    },
    /// A free-form claim.
    Custom {
        /// Claim key.
        key: String,
        /// Claim value.
        value: String,
    },
}

impl fmt::Display for PlatformClaim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformClaim::MeasuredSoftware { identity } => write!(f, "software={identity}"),
            PlatformClaim::IfcEnforcementPresent => write!(f, "ifc-enforcement=present"),
            PlatformClaim::Location { latitude, longitude } => {
                write!(f, "location=({latitude},{longitude})")
            }
            PlatformClaim::SensorAccuracy { class } => write!(f, "sensor-accuracy={class}"),
            PlatformClaim::Custom { key, value } => write!(f, "{key}={value}"),
        }
    }
}

/// The verifier's verdict on a quote.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttestationVerdict {
    /// The quote verifies and satisfies the verifier's requirements.
    Trusted,
    /// The quote's signature does not verify against the registered root key.
    BadSignature,
    /// The quote is older than the verifier's freshness window.
    Stale,
    /// A required claim is missing from the quote.
    MissingClaim {
        /// Display form of the missing claim requirement.
        requirement: String,
    },
}

impl AttestationVerdict {
    /// Whether the platform should be trusted.
    pub fn is_trusted(&self) -> bool {
        matches!(self, AttestationVerdict::Trusted)
    }
}

impl fmt::Display for AttestationVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestationVerdict::Trusted => write!(f, "trusted"),
            AttestationVerdict::BadSignature => write!(f, "bad signature"),
            AttestationVerdict::Stale => write!(f, "stale quote"),
            AttestationVerdict::MissingClaim { requirement } => {
                write!(f, "missing claim: {requirement}")
            }
        }
    }
}

/// A quote produced by a hardware root: a set of claims, a timestamp, and a signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttestationQuote {
    /// The name of the platform attested (e.g. the node or component name).
    pub platform: String,
    /// The claims made.
    pub claims: Vec<PlatformClaim>,
    /// Simulated time at which the quote was produced.
    pub produced_at_millis: u64,
    /// Signature over platform, claims and timestamp.
    pub signature: u64,
}

/// A simulated hardware root of trust (TPM / SGX / TrustZone equivalent) for a platform.
#[derive(Debug, Clone)]
pub struct HardwareRoot {
    platform: String,
    device_secret: u64,
}

impl HardwareRoot {
    /// Provisions a hardware root for the named platform.
    pub fn provision<R: Rng + ?Sized>(platform: impl Into<String>, rng: &mut R) -> Self {
        HardwareRoot { platform: platform.into(), device_secret: rng.gen() }
    }

    /// The platform name.
    pub fn platform(&self) -> &str {
        &self.platform
    }

    /// The public identity a verifier registers (the simulated endorsement key).
    pub fn endorsement_key(&self) -> u64 {
        // Derived from the secret so registration does not expose the secret itself.
        let mut h = DefaultHasher::new();
        self.device_secret.hash(&mut h);
        "endorsement".hash(&mut h);
        h.finish()
    }

    fn sign(&self, platform: &str, claims: &[PlatformClaim], at_millis: u64) -> u64 {
        let mut h = DefaultHasher::new();
        self.device_secret.hash(&mut h);
        platform.hash(&mut h);
        format!("{claims:?}").hash(&mut h);
        at_millis.hash(&mut h);
        h.finish()
    }

    /// Produces a quote over the given claims at simulated time `now_millis`.
    pub fn quote(&self, claims: Vec<PlatformClaim>, now_millis: u64) -> AttestationQuote {
        let signature = self.sign(&self.platform, &claims, now_millis);
        AttestationQuote {
            platform: self.platform.clone(),
            claims,
            produced_at_millis: now_millis,
            signature,
        }
    }

    /// Verifies a quote allegedly produced by this root (the verifier holds the root's
    /// registration; in real hardware this is the endorsement-key check).
    ///
    /// `max_age_millis` bounds freshness; `required` lists claims that must be present
    /// (matched exactly except for `Location`, which matches any location claim).
    pub fn verify(
        &self,
        quote: &AttestationQuote,
        now_millis: u64,
        max_age_millis: u64,
        required: &[PlatformClaim],
    ) -> AttestationVerdict {
        let expected = self.sign(&quote.platform, &quote.claims, quote.produced_at_millis);
        if expected != quote.signature || quote.platform != self.platform {
            return AttestationVerdict::BadSignature;
        }
        if now_millis.saturating_sub(quote.produced_at_millis) > max_age_millis {
            return AttestationVerdict::Stale;
        }
        for req in required {
            let satisfied = quote.claims.iter().any(|c| match (req, c) {
                (PlatformClaim::Location { .. }, PlatformClaim::Location { .. }) => true,
                (a, b) => a == b,
            });
            if !satisfied {
                return AttestationVerdict::MissingClaim { requirement: req.to_string() };
            }
        }
        AttestationVerdict::Trusted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn root() -> HardwareRoot {
        let mut rng = StdRng::seed_from_u64(7);
        HardwareRoot::provision("cloud-node-1", &mut rng)
    }

    fn standard_claims() -> Vec<PlatformClaim> {
        vec![
            PlatformClaim::MeasuredSoftware { identity: "camflow-lsm v0.9".into() },
            PlatformClaim::IfcEnforcementPresent,
            PlatformClaim::Location { latitude: 52.2, longitude: 0.1 },
        ]
    }

    #[test]
    fn quote_verifies_with_required_claims() {
        let root = root();
        let quote = root.quote(standard_claims(), 1_000);
        let verdict = root.verify(&quote, 1_500, 10_000, &[PlatformClaim::IfcEnforcementPresent]);
        assert!(verdict.is_trusted());
        assert_eq!(quote.platform, "cloud-node-1");
        assert_eq!(root.platform(), "cloud-node-1");
    }

    #[test]
    fn tampered_quote_fails() {
        let root = root();
        let mut quote = root.quote(standard_claims(), 1_000);
        quote.claims.push(PlatformClaim::Custom { key: "extra".into(), value: "claim".into() });
        assert_eq!(root.verify(&quote, 1_500, 10_000, &[]), AttestationVerdict::BadSignature);
    }

    #[test]
    fn quote_from_other_platform_fails() {
        let mut rng = StdRng::seed_from_u64(9);
        let other = HardwareRoot::provision("rogue-node", &mut rng);
        let quote = other.quote(standard_claims(), 1_000);
        assert_eq!(root().verify(&quote, 1_500, 10_000, &[]), AttestationVerdict::BadSignature);
    }

    #[test]
    fn stale_quotes_rejected() {
        let root = root();
        let quote = root.quote(standard_claims(), 1_000);
        assert_eq!(root.verify(&quote, 100_000, 10_000, &[]), AttestationVerdict::Stale);
    }

    #[test]
    fn missing_required_claim_rejected() {
        let root = root();
        let quote =
            root.quote(vec![PlatformClaim::MeasuredSoftware { identity: "stack".into() }], 0);
        let verdict = root.verify(&quote, 0, 10, &[PlatformClaim::IfcEnforcementPresent]);
        match &verdict {
            AttestationVerdict::MissingClaim { requirement } => {
                assert!(requirement.contains("ifc-enforcement"));
            }
            other => panic!("expected missing claim, got {other:?}"),
        }
        assert!(!verdict.is_trusted());
    }

    #[test]
    fn location_requirement_matches_any_location_claim() {
        let root = root();
        let quote = root.quote(standard_claims(), 0);
        let verdict = root.verify(
            &quote,
            0,
            10,
            &[PlatformClaim::Location { latitude: 0.0, longitude: 0.0 }],
        );
        assert!(verdict.is_trusted());
    }

    #[test]
    fn endorsement_key_is_stable_and_not_the_secret() {
        let root = root();
        assert_eq!(root.endorsement_key(), root.endorsement_key());
        let mut rng = StdRng::seed_from_u64(8);
        let other = HardwareRoot::provision("cloud-node-1", &mut rng);
        assert_ne!(root.endorsement_key(), other.endorsement_key());
    }

    #[test]
    fn claim_and_verdict_display() {
        assert!(PlatformClaim::IfcEnforcementPresent.to_string().contains("present"));
        assert!(PlatformClaim::SensorAccuracy { class: "clinical".into() }
            .to_string()
            .contains("clinical"));
        assert!(PlatformClaim::Custom { key: "k".into(), value: "v".into() }
            .to_string()
            .contains("k=v"));
        assert_eq!(AttestationVerdict::Trusted.to_string(), "trusted");
        assert_eq!(AttestationVerdict::Stale.to_string(), "stale quote");
        assert_eq!(AttestationVerdict::BadSignature.to_string(), "bad signature");
    }
}
