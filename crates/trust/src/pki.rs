//! Simulated public-key infrastructure: key pairs, identity and attribute certificates,
//! a certificate authority, revocation, and a web-of-trust alternative.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::hash::{Hash, Hasher};

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Errors raised by the trust layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrustError {
    /// The certificate's signature does not verify against the issuer's key.
    BadSignature,
    /// The certificate has been revoked.
    Revoked,
    /// The certificate has expired (simulated time).
    Expired,
    /// The issuer is not trusted by the verifier.
    UntrustedIssuer {
        /// The issuer's name.
        issuer: String,
    },
    /// The named subject does not match the presented key.
    SubjectMismatch,
}

impl fmt::Display for TrustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustError::BadSignature => write!(f, "certificate signature does not verify"),
            TrustError::Revoked => write!(f, "certificate has been revoked"),
            TrustError::Expired => write!(f, "certificate has expired"),
            TrustError::UntrustedIssuer { issuer } => {
                write!(f, "issuer `{issuer}` is not trusted by the verifier")
            }
            TrustError::SubjectMismatch => write!(f, "certificate subject does not match the key"),
        }
    }
}

impl std::error::Error for TrustError {}

/// A simulated key pair. The "public key" is a random 64-bit identifier; the "private
/// key" is a second random value used to produce keyed-hash signatures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    /// The public half, shared freely.
    pub public: u64,
    private: u64,
}

impl KeyPair {
    /// Generates a fresh key pair using the supplied RNG.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        KeyPair { public: rng.gen(), private: rng.gen() }
    }

    /// Signs a byte string, producing a simulated signature.
    pub fn sign(&self, message: &[u8]) -> u64 {
        let mut h = DefaultHasher::new();
        self.private.hash(&mut h);
        message.hash(&mut h);
        h.finish()
    }

    /// Verifies a signature over `message` allegedly made by the holder of `public`.
    ///
    /// In the simulation verification requires the key pair (we model the maths, not the
    /// asymmetry); verifiers therefore go through [`CertificateAuthority::verify`] or
    /// [`WebOfTrust`], which hold the issuer key pairs.
    pub fn verify(&self, message: &[u8], signature: u64) -> bool {
        self.sign(message) == signature
    }
}

/// An identity certificate binding a subject name to a public key, signed by an issuer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// The subject (a 'thing', a person, an organisation).
    pub subject: String,
    /// The subject's public key.
    pub subject_public: u64,
    /// The issuing authority's name.
    pub issuer: String,
    /// Expiry in simulated milliseconds (`u64::MAX` = never).
    pub expires_at_millis: u64,
    /// The issuer's signature over (subject, key, expiry).
    pub signature: u64,
}

impl Certificate {
    fn signing_bytes(subject: &str, subject_public: u64, issuer: &str, expires: u64) -> Vec<u8> {
        format!("{subject}|{subject_public}|{issuer}|{expires}").into_bytes()
    }
}

/// An attribute certificate binding an attribute (role, privilege, context claim) to a
/// subject, as SBUS does for privileges and credentials (§8.1, footnote 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeCertificate {
    /// The subject the attribute is asserted about.
    pub subject: String,
    /// The attribute, e.g. `role=nurse`, `privilege=secrecy-remove(medical)`.
    pub attribute: String,
    /// The issuing authority.
    pub issuer: String,
    /// Expiry in simulated milliseconds.
    pub expires_at_millis: u64,
    /// The issuer's signature.
    pub signature: u64,
}

impl AttributeCertificate {
    fn signing_bytes(subject: &str, attribute: &str, issuer: &str, expires: u64) -> Vec<u8> {
        format!("{subject}|{attribute}|{issuer}|{expires}").into_bytes()
    }
}

/// The outcome of verifying a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerificationOutcome {
    /// The certificate verified.
    Valid,
    /// The certificate failed verification.
    Invalid(TrustError),
}

impl VerificationOutcome {
    /// Whether the certificate verified.
    pub fn is_valid(&self) -> bool {
        matches!(self, VerificationOutcome::Valid)
    }
}

/// A revocation list maintained by an authority.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevocationList {
    revoked_subjects: BTreeSet<String>,
}

impl RevocationList {
    /// Creates an empty revocation list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Revokes every certificate issued to `subject`.
    pub fn revoke(&mut self, subject: impl Into<String>) {
        self.revoked_subjects.insert(subject.into());
    }

    /// Whether the subject's certificates are revoked.
    pub fn is_revoked(&self, subject: &str) -> bool {
        self.revoked_subjects.contains(subject)
    }

    /// Number of revoked subjects.
    pub fn len(&self) -> usize {
        self.revoked_subjects.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.revoked_subjects.is_empty()
    }
}

/// A certificate authority: issues identity and attribute certificates and verifies
/// them, maintaining a revocation list.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    name: String,
    keys: KeyPair,
    revocations: RevocationList,
    issued: BTreeMap<String, u64>,
}

impl CertificateAuthority {
    /// Creates a CA with a fresh key pair.
    pub fn new<R: Rng + ?Sized>(name: impl Into<String>, rng: &mut R) -> Self {
        CertificateAuthority {
            name: name.into(),
            keys: KeyPair::generate(rng),
            revocations: RevocationList::new(),
            issued: BTreeMap::new(),
        }
    }

    /// The CA's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issues an identity certificate for `subject` holding `subject_public`.
    pub fn issue(
        &mut self,
        subject: impl Into<String>,
        subject_public: u64,
        expires_at_millis: u64,
    ) -> Certificate {
        let subject = subject.into();
        let signature = self.keys.sign(&Certificate::signing_bytes(
            &subject,
            subject_public,
            &self.name,
            expires_at_millis,
        ));
        self.issued.insert(subject.clone(), subject_public);
        Certificate {
            subject,
            subject_public,
            issuer: self.name.clone(),
            expires_at_millis,
            signature,
        }
    }

    /// Issues an attribute certificate asserting `attribute` about `subject`.
    pub fn issue_attribute(
        &mut self,
        subject: impl Into<String>,
        attribute: impl Into<String>,
        expires_at_millis: u64,
    ) -> AttributeCertificate {
        let subject = subject.into();
        let attribute = attribute.into();
        let signature = self.keys.sign(&AttributeCertificate::signing_bytes(
            &subject,
            &attribute,
            &self.name,
            expires_at_millis,
        ));
        AttributeCertificate {
            subject,
            attribute,
            issuer: self.name.clone(),
            expires_at_millis,
            signature,
        }
    }

    /// Revokes every certificate issued to `subject`.
    pub fn revoke(&mut self, subject: impl Into<String>) {
        self.revocations.revoke(subject);
    }

    /// The CA's revocation list.
    pub fn revocations(&self) -> &RevocationList {
        &self.revocations
    }

    /// Verifies an identity certificate at simulated time `now_millis`.
    pub fn verify(&self, cert: &Certificate, now_millis: u64) -> VerificationOutcome {
        if cert.issuer != self.name {
            return VerificationOutcome::Invalid(TrustError::UntrustedIssuer {
                issuer: cert.issuer.clone(),
            });
        }
        if self.revocations.is_revoked(&cert.subject) {
            return VerificationOutcome::Invalid(TrustError::Revoked);
        }
        if now_millis >= cert.expires_at_millis {
            return VerificationOutcome::Invalid(TrustError::Expired);
        }
        let expected = Certificate::signing_bytes(
            &cert.subject,
            cert.subject_public,
            &cert.issuer,
            cert.expires_at_millis,
        );
        if !self.keys.verify(&expected, cert.signature) {
            return VerificationOutcome::Invalid(TrustError::BadSignature);
        }
        VerificationOutcome::Valid
    }

    /// Verifies an attribute certificate at simulated time `now_millis`.
    pub fn verify_attribute(
        &self,
        cert: &AttributeCertificate,
        now_millis: u64,
    ) -> VerificationOutcome {
        if cert.issuer != self.name {
            return VerificationOutcome::Invalid(TrustError::UntrustedIssuer {
                issuer: cert.issuer.clone(),
            });
        }
        if self.revocations.is_revoked(&cert.subject) {
            return VerificationOutcome::Invalid(TrustError::Revoked);
        }
        if now_millis >= cert.expires_at_millis {
            return VerificationOutcome::Invalid(TrustError::Expired);
        }
        let expected = AttributeCertificate::signing_bytes(
            &cert.subject,
            &cert.attribute,
            &cert.issuer,
            cert.expires_at_millis,
        );
        if !self.keys.verify(&expected, cert.signature) {
            return VerificationOutcome::Invalid(TrustError::BadSignature);
        }
        VerificationOutcome::Valid
    }
}

/// A decentralised web-of-trust: principals endorse each other's keys directly, and a
/// verifier accepts a binding if a trust path of bounded length exists from someone it
/// trusts (§4: "Decentralised trust models (a web-of-trust) are also possible").
#[derive(Debug, Clone, Default)]
pub struct WebOfTrust {
    /// endorser -> set of (subject, subject_public) bindings they vouch for.
    endorsements: BTreeMap<String, BTreeSet<(String, u64)>>,
}

impl WebOfTrust {
    /// Creates an empty web of trust.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `endorser` vouches for `subject` holding `subject_public`.
    pub fn endorse(
        &mut self,
        endorser: impl Into<String>,
        subject: impl Into<String>,
        subject_public: u64,
    ) {
        self.endorsements
            .entry(endorser.into())
            .or_default()
            .insert((subject.into(), subject_public));
    }

    /// Whether a verifier that directly trusts `trusted_roots` should accept the binding
    /// `subject ↔ subject_public`, following endorsement chains up to `max_hops`.
    pub fn accepts(
        &self,
        trusted_roots: &[&str],
        subject: &str,
        subject_public: u64,
        max_hops: usize,
    ) -> bool {
        let mut frontier: BTreeSet<String> = trusted_roots.iter().map(|s| s.to_string()).collect();
        for _ in 0..max_hops {
            let mut next = BTreeSet::new();
            for endorser in &frontier {
                if let Some(bindings) = self.endorsements.get(endorser) {
                    for (s, k) in bindings {
                        if s == subject && *k == subject_public {
                            return true;
                        }
                        next.insert(s.clone());
                    }
                }
            }
            if next.is_subset(&frontier) {
                break;
            }
            frontier.extend(next);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn sign_and_verify_round_trip() {
        let mut r = rng();
        let k = KeyPair::generate(&mut r);
        let sig = k.sign(b"hello");
        assert!(k.verify(b"hello", sig));
        assert!(!k.verify(b"tampered", sig));
        let other = KeyPair::generate(&mut r);
        assert!(!other.verify(b"hello", sig));
    }

    #[test]
    fn ca_issues_and_verifies_identity_certificates() {
        let mut r = rng();
        let mut ca = CertificateAuthority::new("hospital-ca", &mut r);
        let device_key = KeyPair::generate(&mut r);
        let cert = ca.issue("ann-sensor", device_key.public, 10_000);
        assert_eq!(ca.name(), "hospital-ca");
        assert!(ca.verify(&cert, 5_000).is_valid());
    }

    #[test]
    fn expired_and_revoked_certificates_rejected() {
        let mut r = rng();
        let mut ca = CertificateAuthority::new("ca", &mut r);
        let key = KeyPair::generate(&mut r);
        let cert = ca.issue("thing", key.public, 1_000);
        assert_eq!(ca.verify(&cert, 1_000), VerificationOutcome::Invalid(TrustError::Expired));
        let cert2 = ca.issue("rogue", key.public, u64::MAX);
        ca.revoke("rogue");
        assert_eq!(ca.verify(&cert2, 0), VerificationOutcome::Invalid(TrustError::Revoked));
        assert!(ca.revocations().is_revoked("rogue"));
        assert_eq!(ca.revocations().len(), 1);
        assert!(!ca.revocations().is_empty());
    }

    #[test]
    fn tampered_certificates_fail_signature_check() {
        let mut r = rng();
        let mut ca = CertificateAuthority::new("ca", &mut r);
        let key = KeyPair::generate(&mut r);
        let mut cert = ca.issue("thing", key.public, u64::MAX);
        cert.subject = "impostor".into();
        assert_eq!(ca.verify(&cert, 0), VerificationOutcome::Invalid(TrustError::BadSignature));
    }

    #[test]
    fn certificates_from_other_issuers_are_untrusted() {
        let mut r = rng();
        let mut ca1 = CertificateAuthority::new("ca-1", &mut r);
        let ca2 = CertificateAuthority::new("ca-2", &mut r);
        let key = KeyPair::generate(&mut r);
        let cert = ca1.issue("thing", key.public, u64::MAX);
        match ca2.verify(&cert, 0) {
            VerificationOutcome::Invalid(TrustError::UntrustedIssuer { issuer }) => {
                assert_eq!(issuer, "ca-1");
            }
            other => panic!("expected untrusted issuer, got {other:?}"),
        }
    }

    #[test]
    fn attribute_certificates_carry_privileges() {
        let mut r = rng();
        let mut ca = CertificateAuthority::new("hospital-ca", &mut r);
        let cert = ca.issue_attribute("sanitiser", "privilege=integrity+(hosp-dev)", 10_000);
        assert!(ca.verify_attribute(&cert, 5_000).is_valid());
        assert_eq!(
            ca.verify_attribute(&cert, 20_000),
            VerificationOutcome::Invalid(TrustError::Expired)
        );
        let mut tampered = cert.clone();
        tampered.attribute = "privilege=secrecy-(everything)".into();
        assert_eq!(
            ca.verify_attribute(&tampered, 0),
            VerificationOutcome::Invalid(TrustError::BadSignature)
        );
        ca.revoke("sanitiser");
        assert_eq!(
            ca.verify_attribute(&cert, 5_000),
            VerificationOutcome::Invalid(TrustError::Revoked)
        );
    }

    #[test]
    fn web_of_trust_paths() {
        let mut r = rng();
        let ann_key = KeyPair::generate(&mut r).public;
        let mut wot = WebOfTrust::new();
        // alice endorses bob's key registry, bob endorses ann's device.
        wot.endorse("alice", "bob", 1);
        wot.endorse("bob", "ann-device", ann_key);
        assert!(wot.accepts(&["alice"], "ann-device", ann_key, 3));
        // Direct trust in bob also works with a single hop.
        assert!(wot.accepts(&["bob"], "ann-device", ann_key, 1));
        // Too few hops: not reachable.
        assert!(!wot.accepts(&["alice"], "ann-device", ann_key, 1));
        // Wrong key: rejected.
        assert!(!wot.accepts(&["alice"], "ann-device", ann_key ^ 1, 5));
        // Unknown root: rejected.
        assert!(!wot.accepts(&["mallory"], "ann-device", ann_key, 5));
    }

    #[test]
    fn error_display() {
        assert!(TrustError::BadSignature.to_string().contains("signature"));
        assert!(TrustError::Revoked.to_string().contains("revoked"));
        assert!(TrustError::Expired.to_string().contains("expired"));
        assert!(TrustError::SubjectMismatch.to_string().contains("subject"));
        assert!(TrustError::UntrustedIssuer { issuer: "x".into() }.to_string().contains("x"));
    }
}
