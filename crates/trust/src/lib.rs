//! # legaliot-trust
//!
//! Simulated trust infrastructure: PKI, attribute certificates and hardware-style
//! attestation (§4 "Common security approaches" and §9.3 Challenge 5 of Singh et al.,
//! Middleware 2016).
//!
//! The paper relies on these as building blocks: "One can envisage a PKI where 'things'
//! have private keys and public key certificates, signed by a certificate authority
//! linking them to their owners"; SBUS represents "privileges, credentials and context
//! … as X.509 certificates"; and hardware roots of trust (TPM/SGX/TrustZone) provide
//! integrity guarantees and remote attestation, including certifying physical properties
//! such as geographic location.
//!
//! Everything here is a *simulation*: key pairs are random identifiers, signatures are
//! keyed hashes, and attestation quotes are structured claims signed by a simulated
//! hardware root. What matters for the reproduction is that the *protocol shape* —
//! issue, present, verify, revoke, attest-before-interacting — is exercised by the
//! middleware and scenarios, not that the cryptography is real (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod pki;

pub use attestation::{AttestationQuote, AttestationVerdict, HardwareRoot, PlatformClaim};
pub use pki::{
    AttributeCertificate, Certificate, CertificateAuthority, KeyPair, RevocationList, TrustError,
    VerificationOutcome, WebOfTrust,
};
