//! A small term ontology for policy vocabularies.
//!
//! Challenge 2 ("Defining policy") points to "work on ontologies that relate to policy
//! semantics", and §10.2 notes ontological approaches "allow context, tags, privileges,
//! etc. to be defined, based on semantics". The reproduction provides a minimal
//! subsumption hierarchy: terms with broader/narrower relations, so a policy written
//! against `personal-data` also covers `medical-data` and `location-data`, and a
//! vocabulary owner can check that two federations' codings can be aligned.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

/// The relation asserted between two terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TermRelation {
    /// The first term is a narrower kind of the second (`medical-data` ⊑ `personal-data`).
    NarrowerThan,
    /// The two terms are declared equivalent (used to align federated vocabularies).
    EquivalentTo,
}

impl fmt::Display for TermRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermRelation::NarrowerThan => write!(f, "narrower-than"),
            TermRelation::EquivalentTo => write!(f, "equivalent-to"),
        }
    }
}

/// A term ontology: a set of terms plus narrower/equivalent relations, with subsumption
/// queries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ontology {
    terms: BTreeSet<String>,
    /// term -> set of directly broader terms.
    broader: BTreeMap<String, BTreeSet<String>>,
    /// term -> set of declared-equivalent terms (kept symmetric).
    equivalent: BTreeMap<String, BTreeSet<String>>,
}

impl Ontology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a term (idempotent).
    pub fn declare(&mut self, term: impl Into<String>) -> &mut Self {
        self.terms.insert(term.into());
        self
    }

    /// Asserts that `narrow` is a narrower kind of `broad` (both are declared if new).
    pub fn narrower(&mut self, narrow: impl Into<String>, broad: impl Into<String>) -> &mut Self {
        let narrow = narrow.into();
        let broad = broad.into();
        self.terms.insert(narrow.clone());
        self.terms.insert(broad.clone());
        self.broader.entry(narrow).or_default().insert(broad);
        self
    }

    /// Asserts that two terms are equivalent (symmetric; both declared if new).
    pub fn equivalent(&mut self, a: impl Into<String>, b: impl Into<String>) -> &mut Self {
        let a = a.into();
        let b = b.into();
        self.terms.insert(a.clone());
        self.terms.insert(b.clone());
        self.equivalent.entry(a.clone()).or_default().insert(b.clone());
        self.equivalent.entry(b).or_default().insert(a);
        self
    }

    /// Whether a term has been declared.
    pub fn contains(&self, term: &str) -> bool {
        self.terms.contains(term)
    }

    /// Number of declared terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the ontology is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// All terms reachable from `term` by equivalence (including the term itself).
    fn equivalence_class(&self, term: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::from([term.to_string()]);
        let mut queue = VecDeque::from([term.to_string()]);
        while let Some(t) = queue.pop_front() {
            if let Some(eqs) = self.equivalent.get(&t) {
                for e in eqs {
                    if seen.insert(e.clone()) {
                        queue.push_back(e.clone());
                    }
                }
            }
        }
        seen
    }

    /// Whether `narrow` is subsumed by `broad`: they are equal, equivalent, or `narrow`
    /// is (transitively) narrower than something equivalent to `broad`.
    pub fn subsumed_by(&self, narrow: &str, broad: &str) -> bool {
        let target = self.equivalence_class(broad);
        if target.contains(narrow) {
            return true;
        }
        // BFS upwards through broader terms, expanding equivalence classes as we go.
        let mut seen: BTreeSet<String> = self.equivalence_class(narrow);
        let mut queue: VecDeque<String> = seen.iter().cloned().collect();
        while let Some(t) = queue.pop_front() {
            if target.contains(&t) {
                return true;
            }
            if let Some(broader) = self.broader.get(&t) {
                for b in broader {
                    for member in self.equivalence_class(b) {
                        if target.contains(&member) {
                            return true;
                        }
                        if seen.insert(member.clone()) {
                            queue.push_back(member);
                        }
                    }
                }
            }
        }
        false
    }

    /// All declared terms subsumed by `broad` (its narrower terms, transitively,
    /// including equivalents). Useful for expanding a policy's scope into concrete tags.
    pub fn expand(&self, broad: &str) -> Vec<String> {
        self.terms.iter().filter(|t| self.subsumed_by(t, broad)).cloned().collect()
    }

    /// A default healthcare/IoT vocabulary used by the scenarios and examples.
    pub fn standard_iot() -> Self {
        let mut o = Ontology::new();
        o.narrower("medical-data", "personal-data");
        o.narrower("location-data", "personal-data");
        o.narrower("heart-rate", "medical-data");
        o.narrower("blood-pressure", "medical-data");
        o.narrower("viewing-habits", "behavioural-data");
        o.narrower("behavioural-data", "personal-data");
        o.narrower("actuation-command", "control-data");
        o.equivalent("gdpr:personal-data", "personal-data");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_contains() {
        let mut o = Ontology::new();
        assert!(o.is_empty());
        o.declare("personal-data");
        assert!(o.contains("personal-data"));
        assert!(!o.contains("medical-data"));
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn subsumption_is_reflexive_and_transitive() {
        let o = Ontology::standard_iot();
        assert!(o.subsumed_by("medical-data", "medical-data"));
        assert!(o.subsumed_by("heart-rate", "medical-data"));
        assert!(o.subsumed_by("heart-rate", "personal-data"));
        assert!(!o.subsumed_by("personal-data", "heart-rate"));
        assert!(!o.subsumed_by("actuation-command", "personal-data"));
    }

    #[test]
    fn equivalence_aligns_vocabularies() {
        let o = Ontology::standard_iot();
        // The GDPR coding and the local coding are interchangeable.
        assert!(o.subsumed_by("heart-rate", "gdpr:personal-data"));
        assert!(o.subsumed_by("gdpr:personal-data", "personal-data"));
        assert!(o.subsumed_by("personal-data", "gdpr:personal-data"));
    }

    #[test]
    fn expand_lists_narrower_terms() {
        let o = Ontology::standard_iot();
        let personal = o.expand("personal-data");
        assert!(personal.contains(&"heart-rate".to_string()));
        assert!(personal.contains(&"medical-data".to_string()));
        assert!(personal.contains(&"viewing-habits".to_string()));
        assert!(!personal.contains(&"actuation-command".to_string()));
    }

    #[test]
    fn chained_equivalence() {
        let mut o = Ontology::new();
        o.equivalent("a", "b");
        o.equivalent("b", "c");
        assert!(o.subsumed_by("a", "c"));
        assert!(o.subsumed_by("c", "a"));
    }

    #[test]
    fn unknown_terms_are_not_subsumed() {
        let o = Ontology::standard_iot();
        assert!(!o.subsumed_by("unknown-term", "personal-data"));
        // Except trivially by themselves.
        assert!(o.subsumed_by("unknown-term", "unknown-term"));
    }

    #[test]
    fn relation_display() {
        assert_eq!(TermRelation::NarrowerThan.to_string(), "narrower-than");
        assert_eq!(TermRelation::EquivalentTo.to_string(), "equivalent-to");
    }
}
