//! Context-keyed caching of access-control decisions.
//!
//! Contextual AC is evaluated per interaction (§8.1's "general AC regime" consults
//! principal attributes *and context*), and in a high-throughput dataplane the same
//! `(component, principal, operation, message type)` question is asked millions of
//! times between context changes. Unlike IFC decisions — pure functions of two security
//! contexts, cacheable by their hashes ([`legaliot_ifc::DecisionCache`]) — an AC
//! decision depends on whatever [`ContextStore`] keys the rules' conditions actually
//! read, so correct caching needs *key-level* invalidation:
//!
//! 1. every cached decision records the context keys the deciding rule set references
//!    ([`crate::Condition::referenced_keys`]);
//! 2. the cache subscribes to the [`ContextStore`]; [`AcDecisionCache::sync`] polls the
//!    subscription (cheap version check first) and drops exactly the entries that
//!    reference a changed key, forcing a fresh evaluation against the new context;
//! 3. time-dependent conditions ([`crate::Condition::is_time_dependent`]) are never
//!    cached — their outcome can change without any store write.
//!
//! The cache is value-generic so enforcement layers can store their own decision type
//! (e.g. the middleware's `AccessDecision`) without this crate depending on them.

use std::collections::{HashMap, HashSet};

use legaliot_context::{ContextStore, SubscriptionId};

/// Counters describing an [`AcDecisionCache`]'s effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AcCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh rule-set evaluation.
    pub misses: u64,
    /// Entries dropped because a context key they reference changed.
    pub invalidated: u64,
    /// Entries currently cached.
    pub entries: usize,
}

impl AcCacheStats {
    /// Hit ratio in `[0, 1]`; `0` when no lookups have happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    /// The context keys this entry depends on (for removal from the reverse index).
    keys: Vec<String>,
}

/// A cache of access-control decisions keyed by a caller-provided stable 64-bit key
/// (e.g. a hash of `(component, principal, roles, operation, message type)`), with
/// entries invalidated when any [`ContextStore`] key they reference changes.
///
/// Single-owner by design (no interior locking), mirroring
/// [`legaliot_ifc::DecisionCache`]: a sharded enforcement engine gives each shard its
/// own cache, each holding its own store subscription.
///
/// ```
/// use legaliot_context::{ContextStore, Timestamp};
/// use legaliot_policy::AcDecisionCache;
///
/// let store = ContextStore::new();
/// let mut cache: AcDecisionCache<bool> = AcDecisionCache::new();
/// cache.attach(&store);
/// cache.insert(7, true, ["patient.heart-rate"]);
/// assert_eq!(cache.lookup(7), Some(true));
/// store.set("patient.heart-rate", 150i64, Timestamp(1));
/// assert_eq!(cache.sync(&store), 1); // the dependent entry is dropped
/// assert_eq!(cache.lookup(7), None); // forcing re-evaluation
/// ```
#[derive(Debug)]
pub struct AcDecisionCache<V> {
    entries: HashMap<u64, Entry<V>>,
    /// Reverse index: context key name → cache keys of entries referencing it.
    by_context_key: HashMap<String, HashSet<u64>>,
    /// Store subscription used by [`Self::sync`] (set by [`Self::attach`]).
    subscription: Option<SubscriptionId>,
    /// Last store version [`Self::sync`] processed (version-check fast path).
    seen_version: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    invalidated: u64,
}

impl<V> Default for AcDecisionCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> AcDecisionCache<V> {
    /// Default maximum number of cached decisions.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a cache with [`Self::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a cache holding at most `capacity` decisions. When full, the next
    /// insert clears the cache (epoch eviction, as in the IFC decision cache).
    pub fn with_capacity(capacity: usize) -> Self {
        AcDecisionCache {
            entries: HashMap::new(),
            by_context_key: HashMap::new(),
            subscription: None,
            seen_version: 0,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            invalidated: 0,
        }
    }

    /// Subscribes to `store` so [`Self::sync`] can invalidate by changed key. Entries
    /// cached before attachment stay valid (the subscription cursor starts at the
    /// store's current version).
    pub fn attach(&mut self, store: &ContextStore) {
        self.subscription = Some(store.subscribe());
        self.seen_version = store.version();
    }

    /// Releases the store subscription taken by [`Self::attach`]. An attached cache
    /// that is simply dropped leaves its cursor behind in the store, and under a
    /// retention bound ([`ContextStore::set_retention`]) an abandoned cursor pins
    /// change-history compaction forever — so owners discarding an attached cache
    /// (e.g. when rebuilding a shard's state after a panic) must detach it first.
    pub fn detach(&mut self, store: &ContextStore) {
        if let Some(id) = self.subscription.take() {
            store.unsubscribe(id);
        }
    }

    /// Brings the cache up to date with the store: a no-op (one read-locked version
    /// check) when nothing changed; otherwise polls the subscription and drops every
    /// entry referencing a changed key. Returns how many entries were invalidated.
    ///
    /// Without a prior [`Self::attach`], a version change conservatively clears the
    /// whole cache (there is no change feed to consult).
    pub fn sync(&mut self, store: &ContextStore) -> usize {
        let version = store.version();
        if version == self.seen_version {
            return 0;
        }
        self.seen_version = version;
        match self.subscription {
            Some(id) => {
                let mut dropped = 0;
                for change in store.poll(id) {
                    dropped += self.invalidate_key(change.key.name());
                }
                dropped
            }
            None => {
                let dropped = self.entries.len();
                self.invalidated += dropped as u64;
                self.entries.clear();
                self.by_context_key.clear();
                dropped
            }
        }
    }

    /// Caches a decision for `key`, recording the context keys it depends on.
    ///
    /// Callers must *not* insert decisions whose rules are time-dependent
    /// ([`crate::Condition::is_time_dependent`]); such decisions can flip without any
    /// context change, which this cache cannot observe.
    pub fn insert<I, K>(&mut self, key: u64, value: V, referenced_keys: I)
    where
        I: IntoIterator<Item = K>,
        K: Into<String>,
    {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.entries.clear();
            self.by_context_key.clear();
        }
        if let Some(old) = self.entries.remove(&key) {
            self.unindex(key, &old.keys);
        }
        let mut keys: Vec<String> = referenced_keys.into_iter().map(Into::into).collect();
        keys.sort_unstable();
        keys.dedup();
        for name in &keys {
            self.by_context_key.entry(name.clone()).or_default().insert(key);
        }
        self.entries.insert(key, Entry { value, keys });
    }

    /// Drops every entry that references the named context key, returning how many
    /// were removed.
    pub fn invalidate_key(&mut self, context_key: &str) -> usize {
        let Some(dependents) = self.by_context_key.remove(context_key) else {
            return 0;
        };
        let mut removed = 0;
        for cache_key in dependents {
            if let Some(entry) = self.entries.remove(&cache_key) {
                removed += 1;
                self.unindex(cache_key, &entry.keys);
            }
        }
        self.invalidated += removed as u64;
        removed
    }

    fn unindex(&mut self, cache_key: u64, keys: &[String]) {
        for name in keys {
            if let Some(set) = self.by_context_key.get_mut(name) {
                set.remove(&cache_key);
                if set.is_empty() {
                    self.by_context_key.remove(name);
                }
            }
        }
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached decision (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_context_key.clear();
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> AcCacheStats {
        AcCacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidated: self.invalidated,
            entries: self.entries.len(),
        }
    }
}

impl<V: Clone> AcDecisionCache<V> {
    /// Returns the cached decision for `key`, if present.
    pub fn lookup(&mut self, key: u64) -> Option<V> {
        match self.entries.get(&key) {
            Some(entry) => {
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_context::Timestamp;

    #[test]
    fn lookup_insert_and_stats() {
        let mut cache: AcDecisionCache<u32> = AcDecisionCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(1), None);
        cache.insert(1, 10, ["a", "b"]);
        cache.insert(2, 20, Vec::<String>::new());
        assert_eq!(cache.lookup(1), Some(10));
        assert_eq!(cache.lookup(2), Some(20));
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 2));
        assert!((stats.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(AcCacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn key_invalidation_drops_exactly_the_dependent_entries() {
        let mut cache: AcDecisionCache<u32> = AcDecisionCache::new();
        cache.insert(1, 10, ["patient.heart-rate", "emergency.active"]);
        cache.insert(2, 20, ["emergency.active"]);
        cache.insert(3, 30, Vec::<&str>::new());
        assert_eq!(cache.invalidate_key("patient.heart-rate"), 1);
        assert_eq!(cache.lookup(1), None);
        assert_eq!(cache.lookup(2), Some(20));
        assert_eq!(cache.lookup(3), Some(30));
        // Entry 1 is gone from the other key's index too.
        assert_eq!(cache.invalidate_key("emergency.active"), 1);
        assert_eq!(cache.lookup(2), None);
        assert_eq!(cache.lookup(3), Some(30));
        assert_eq!(cache.stats().invalidated, 2);
        // Unknown keys are a no-op.
        assert_eq!(cache.invalidate_key("missing"), 0);
    }

    #[test]
    fn sync_invalidates_by_changed_store_key() {
        let store = ContextStore::new();
        store.set("pre-existing", 1i64, Timestamp(0));
        let mut cache: AcDecisionCache<bool> = AcDecisionCache::new();
        cache.attach(&store);
        cache.insert(1, true, ["patient.heart-rate"]);
        cache.insert(2, false, ["nurse.on-shift"]);
        // No change: free.
        assert_eq!(cache.sync(&store), 0);
        store.set("patient.heart-rate", 150i64, Timestamp(1));
        assert_eq!(cache.sync(&store), 1);
        assert_eq!(cache.lookup(1), None);
        assert_eq!(cache.lookup(2), Some(false));
        // Changes to keys nobody references drop nothing.
        store.set("unrelated", 1i64, Timestamp(2));
        assert_eq!(cache.sync(&store), 0);
        // Syncing twice without new writes is a no-op version check.
        assert_eq!(cache.sync(&store), 0);
    }

    #[test]
    fn sync_without_attachment_clears_conservatively() {
        let store = ContextStore::new();
        let mut cache: AcDecisionCache<bool> = AcDecisionCache::new();
        cache.insert(1, true, ["a"]);
        cache.insert(2, true, Vec::<&str>::new());
        store.set("anything", 1i64, Timestamp(1));
        assert_eq!(cache.sync(&store), 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn detach_releases_the_store_cursor_so_retention_can_compact() {
        let store = ContextStore::with_retention(2);
        let mut cache: AcDecisionCache<bool> = AcDecisionCache::new();
        cache.attach(&store);
        for i in 0..10u64 {
            store.set("k", i as i64, Timestamp(i));
        }
        // The never-synced cache's cursor pins the whole history.
        assert_eq!(store.history().len(), 10);
        cache.detach(&store);
        assert!(store.history().len() <= 2);
        // After detach, sync falls back to the conservative full clear.
        cache.insert(1, true, ["k"]);
        store.set("other", 1i64, Timestamp(11));
        assert_eq!(cache.sync(&store), 1);
        assert!(cache.is_empty());
        // Detaching twice (or while never attached) is a no-op.
        cache.detach(&store);
    }

    #[test]
    fn reinserting_a_key_replaces_its_dependencies() {
        let mut cache: AcDecisionCache<u32> = AcDecisionCache::new();
        cache.insert(1, 10, ["a"]);
        cache.insert(1, 11, ["b"]);
        assert_eq!(cache.len(), 1);
        // The stale index entry for `a` no longer drops key 1.
        assert_eq!(cache.invalidate_key("a"), 0);
        assert_eq!(cache.lookup(1), Some(11));
        assert_eq!(cache.invalidate_key("b"), 1);
        assert_eq!(cache.lookup(1), None);
    }

    #[test]
    fn capacity_eviction_clears_and_refills() {
        let mut cache: AcDecisionCache<u32> = AcDecisionCache::with_capacity(2);
        cache.insert(1, 1, ["a"]);
        cache.insert(2, 2, ["a"]);
        cache.insert(3, 3, ["a"]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(3), Some(3));
        // Re-inserting an existing key never evicts.
        cache.insert(3, 4, ["a"]);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
