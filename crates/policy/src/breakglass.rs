//! Break-glass overrides.
//!
//! §3 Concern 6: "In an emergency, 'break-glass' policy overrides normal security
//! constraints, alerting emergency services and (say) a family member, and replugging
//! the sensor-data streams to make them available to the emergency response team."
//! A [`BreakGlass`] is an exceptional grant: it names the policy it overrides, the
//! justification, an expiry, and the compensating obligations (alerts, audit flags)
//! that must accompany activation. Activations and expiries are auditable events.

use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_context::Timestamp;

use crate::action::Action;
use crate::eca::PolicyId;

/// The lifecycle state of a break-glass override.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakGlassState {
    /// Defined but not active.
    Armed,
    /// Currently overriding normal policy, until the recorded expiry.
    Active {
        /// When the override expires (exclusive).
        expires_at_millis: u64,
    },
    /// No longer active (expired or explicitly revoked).
    Expired,
}

impl fmt::Display for BreakGlassState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakGlassState::Armed => write!(f, "armed"),
            BreakGlassState::Active { expires_at_millis } => {
                write!(f, "active until {expires_at_millis}ms")
            }
            BreakGlassState::Expired => write!(f, "expired"),
        }
    }
}

/// A break-glass override definition and its runtime state.
///
/// ```
/// use legaliot_policy::{BreakGlass, Action};
/// use legaliot_context::Timestamp;
///
/// let mut bg = BreakGlass::new("emergency-access", "hospital", 60_000)
///     .overriding("patient-privacy")
///     .with_emergency_action(Action::Connect {
///         from: "ann-analyser".into(),
///         to: "emergency-doctor".into(),
///     });
/// let actions = bg.activate("cardiac arrest detected", Timestamp(1_000)).unwrap();
/// assert_eq!(actions.len(), 1);
/// assert!(bg.is_active(Timestamp(30_000)));
/// assert!(!bg.is_active(Timestamp(61_001)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakGlass {
    /// The override's identifier.
    pub id: PolicyId,
    /// The authority allowed to activate it.
    pub authority: String,
    /// How long an activation lasts, in milliseconds of simulated time.
    pub duration_millis: u64,
    /// The policies this override suspends while active.
    pub overrides: Vec<PolicyId>,
    /// The emergency actions applied on activation (connections, notifications, …).
    pub emergency_actions: Vec<Action>,
    /// The current state.
    pub state: BreakGlassState,
    /// The justification recorded at the last activation, if any.
    pub justification: Option<String>,
}

impl BreakGlass {
    /// Defines a new, armed break-glass override.
    pub fn new(id: impl Into<String>, authority: impl Into<String>, duration_millis: u64) -> Self {
        BreakGlass {
            id: PolicyId::new(id),
            authority: authority.into(),
            duration_millis,
            overrides: Vec::new(),
            emergency_actions: Vec::new(),
            state: BreakGlassState::Armed,
            justification: None,
        }
    }

    /// Adds a policy that this override suspends while active.
    pub fn overriding(mut self, policy: impl Into<String>) -> Self {
        self.overrides.push(PolicyId::new(policy));
        self
    }

    /// Adds an emergency action applied on activation.
    pub fn with_emergency_action(mut self, action: Action) -> Self {
        self.emergency_actions.push(action);
        self
    }

    /// Activates the override at time `now` with a mandatory justification, returning
    /// the emergency actions to apply.
    ///
    /// # Errors
    ///
    /// Returns an error string if the justification is empty or the override is already
    /// active (re-activation must be explicit after expiry, so activations are
    /// individually auditable).
    pub fn activate(
        &mut self,
        justification: impl Into<String>,
        now: Timestamp,
    ) -> Result<Vec<Action>, String> {
        let justification = justification.into();
        if justification.trim().is_empty() {
            return Err("break-glass activation requires a justification".to_string());
        }
        if self.is_active(now) {
            return Err(format!("break-glass {} is already active", self.id));
        }
        self.state =
            BreakGlassState::Active { expires_at_millis: now.as_millis() + self.duration_millis };
        self.justification = Some(justification);
        Ok(self.emergency_actions.clone())
    }

    /// Whether the override is active at time `now` (also transitions the externally
    /// visible answer after expiry; call [`Self::tick`] to update the stored state).
    pub fn is_active(&self, now: Timestamp) -> bool {
        match self.state {
            BreakGlassState::Active { expires_at_millis } => now.as_millis() < expires_at_millis,
            _ => false,
        }
    }

    /// Whether the given policy is currently suspended by this override.
    pub fn suspends(&self, policy: &PolicyId, now: Timestamp) -> bool {
        self.is_active(now) && self.overrides.contains(policy)
    }

    /// Updates the stored state for the passage of time; returns `true` if the override
    /// expired on this tick (so the caller can emit a deactivation audit event).
    pub fn tick(&mut self, now: Timestamp) -> bool {
        if let BreakGlassState::Active { expires_at_millis } = self.state {
            if now.as_millis() >= expires_at_millis {
                self.state = BreakGlassState::Expired;
                return true;
            }
        }
        false
    }

    /// Explicitly revokes an active override (e.g. the emergency is resolved early).
    /// Returns `true` if it was active.
    pub fn revoke(&mut self) -> bool {
        let was_active = matches!(self.state, BreakGlassState::Active { .. });
        if was_active {
            self.state = BreakGlassState::Expired;
        }
        was_active
    }
}

impl fmt::Display for BreakGlass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "break-glass {} ({}) {}", self.id, self.authority, self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BreakGlass {
        BreakGlass::new("emergency-access", "hospital", 60_000)
            .overriding("patient-privacy")
            .overriding("nurse-shift-only")
            .with_emergency_action(Action::Connect {
                from: "ann-analyser".into(),
                to: "emergency-doctor".into(),
            })
            .with_emergency_action(Action::Notify {
                recipient: "ann-family".into(),
                message: "emergency response started".into(),
            })
    }

    #[test]
    fn activation_returns_emergency_actions() {
        let mut bg = sample();
        assert_eq!(bg.state, BreakGlassState::Armed);
        let actions = bg.activate("cardiac arrest detected", Timestamp(1_000)).unwrap();
        assert_eq!(actions.len(), 2);
        assert!(bg.is_active(Timestamp(1_001)));
        assert_eq!(bg.justification.as_deref(), Some("cardiac arrest detected"));
    }

    #[test]
    fn activation_requires_justification() {
        let mut bg = sample();
        assert!(bg.activate("   ", Timestamp::ZERO).is_err());
        assert_eq!(bg.state, BreakGlassState::Armed);
    }

    #[test]
    fn double_activation_rejected_while_active() {
        let mut bg = sample();
        bg.activate("first", Timestamp(0)).unwrap();
        let err = bg.activate("second", Timestamp(10)).unwrap_err();
        assert!(err.contains("already active"));
    }

    #[test]
    fn expiry_and_reactivation() {
        let mut bg = sample();
        bg.activate("emergency", Timestamp(0)).unwrap();
        assert!(bg.is_active(Timestamp(59_999)));
        assert!(!bg.is_active(Timestamp(60_000)));
        // tick transitions the stored state exactly once.
        assert!(bg.tick(Timestamp(60_000)));
        assert!(!bg.tick(Timestamp(70_000)));
        assert_eq!(bg.state, BreakGlassState::Expired);
        // A new emergency can re-activate after expiry.
        assert!(bg.activate("second emergency", Timestamp(100_000)).is_ok());
        assert!(bg.is_active(Timestamp(100_001)));
    }

    #[test]
    fn suspends_only_named_policies_while_active() {
        let mut bg = sample();
        let privacy = PolicyId::new("patient-privacy");
        let unrelated = PolicyId::new("billing");
        assert!(!bg.suspends(&privacy, Timestamp(0)));
        bg.activate("emergency", Timestamp(0)).unwrap();
        assert!(bg.suspends(&privacy, Timestamp(10)));
        assert!(bg.suspends(&PolicyId::new("nurse-shift-only"), Timestamp(10)));
        assert!(!bg.suspends(&unrelated, Timestamp(10)));
        assert!(!bg.suspends(&privacy, Timestamp(60_001)));
    }

    #[test]
    fn revoke_ends_override_early() {
        let mut bg = sample();
        assert!(!bg.revoke());
        bg.activate("emergency", Timestamp(0)).unwrap();
        assert!(bg.revoke());
        assert!(!bg.is_active(Timestamp(1)));
        assert_eq!(bg.state, BreakGlassState::Expired);
    }

    #[test]
    fn displays() {
        let mut bg = sample();
        assert!(bg.to_string().contains("armed"));
        bg.activate("x", Timestamp(0)).unwrap();
        assert!(bg.to_string().contains("active until"));
        assert_eq!(BreakGlassState::Expired.to_string(), "expired");
    }
}
