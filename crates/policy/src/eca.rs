//! Event–Condition–Action policy rules.
//!
//! "Event-driven systems embody policy-driven behaviour; for example, Event-Condition-
//! Action (ECA) rules can specify the circumstances under which systems need to be
//! reconfigured" (§5). A [`PolicyRule`] names the triggering [`PolicyEvent`] class, a
//! [`Condition`] over context, and the [`Action`]s to take, together with the authority
//! that defined it and a priority used by conflict resolution (Challenge 4).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::action::Action;
use crate::condition::Condition;

/// Identifier of a policy rule (unique within a deployment).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PolicyId(String);

impl PolicyId {
    /// Creates a policy id.
    pub fn new(id: impl Into<String>) -> Self {
        PolicyId(id.into())
    }

    /// The textual id.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PolicyId {
    fn from(value: &str) -> Self {
        PolicyId::new(value)
    }
}

/// Priority of a rule; higher wins under the priority resolution strategy.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PolicyPriority(pub i32);

impl PolicyPriority {
    /// The default priority for ordinary rules.
    pub const NORMAL: PolicyPriority = PolicyPriority(0);
    /// Priority used by regulatory obligations, above user preferences.
    pub const REGULATORY: PolicyPriority = PolicyPriority(100);
    /// Priority used by break-glass/emergency rules, above everything else.
    pub const EMERGENCY: PolicyPriority = PolicyPriority(1000);
}

/// The classes of event that can trigger a policy rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyEvent {
    /// A context key changed value.
    ContextChanged {
        /// The key that changed.
        key: String,
    },
    /// A data flow was attempted between two components (allowed or denied).
    FlowAttempted {
        /// Source component.
        from: String,
        /// Destination component.
        to: String,
        /// Whether the IFC/AC checks allowed it.
        allowed: bool,
    },
    /// A component joined the deployment.
    ComponentJoined {
        /// The new component's name.
        component: String,
    },
    /// A component left or became unreachable.
    ComponentLeft {
        /// The departed component's name.
        component: String,
    },
    /// A periodic evaluation tick (rules may fire on every tick).
    Tick,
}

impl PolicyEvent {
    /// A short class name for matching against [`PolicyRule::trigger`].
    pub fn class(&self) -> &'static str {
        match self {
            PolicyEvent::ContextChanged { .. } => "context-changed",
            PolicyEvent::FlowAttempted { .. } => "flow-attempted",
            PolicyEvent::ComponentJoined { .. } => "component-joined",
            PolicyEvent::ComponentLeft { .. } => "component-left",
            PolicyEvent::Tick => "tick",
        }
    }
}

impl fmt::Display for PolicyEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyEvent::ContextChanged { key } => write!(f, "context-changed({key})"),
            PolicyEvent::FlowAttempted { from, to, allowed } => write!(
                f,
                "flow-attempted({from} -> {to}, {})",
                if *allowed { "allowed" } else { "denied" }
            ),
            PolicyEvent::ComponentJoined { component } => {
                write!(f, "component-joined({component})")
            }
            PolicyEvent::ComponentLeft { component } => write!(f, "component-left({component})"),
            PolicyEvent::Tick => write!(f, "tick"),
        }
    }
}

/// What a rule is triggered by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// Fires on any event (conditions still apply).
    AnyEvent,
    /// Fires when a specific context key changes.
    OnContextKey {
        /// The key of interest.
        key: String,
    },
    /// Fires on flow attempts, optionally restricted to denied ones.
    OnFlowAttempt {
        /// Only fire for denied flows when `true`.
        denied_only: bool,
    },
    /// Fires when a component joins.
    OnComponentJoined,
    /// Fires when a component leaves.
    OnComponentLeft,
    /// Fires on the periodic tick.
    OnTick,
}

impl Trigger {
    /// Whether the trigger matches an event.
    pub fn matches(&self, event: &PolicyEvent) -> bool {
        match (self, event) {
            (Trigger::AnyEvent, _) => true,
            (Trigger::OnContextKey { key }, PolicyEvent::ContextChanged { key: changed }) => {
                key == changed
            }
            (
                Trigger::OnFlowAttempt { denied_only },
                PolicyEvent::FlowAttempted { allowed, .. },
            ) => !*denied_only || !*allowed,
            (Trigger::OnComponentJoined, PolicyEvent::ComponentJoined { .. }) => true,
            (Trigger::OnComponentLeft, PolicyEvent::ComponentLeft { .. }) => true,
            (Trigger::OnTick, PolicyEvent::Tick) => true,
            _ => false,
        }
    }
}

/// An Event–Condition–Action policy rule.
///
/// ```
/// use legaliot_policy::{PolicyRule, Condition, Action, PolicyPriority};
///
/// let rule = PolicyRule::builder("emergency-response", "hospital")
///     .on_context_key("patient.heart-rate")
///     .when(Condition::number_at_least("patient.heart-rate", 180.0))
///     .then(Action::Notify {
///         recipient: "emergency-doctor".into(),
///         message: "cardiac emergency".into(),
///     })
///     .priority(PolicyPriority::EMERGENCY)
///     .build();
/// assert_eq!(rule.actions.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRule {
    /// The rule's identifier.
    pub id: PolicyId,
    /// The authority (person, organisation, regulator) that defined the rule.
    pub authority: String,
    /// What triggers evaluation of the rule.
    pub trigger: Trigger,
    /// The condition over context that must hold for the rule to fire.
    pub condition: Condition,
    /// The actions taken when the rule fires.
    pub actions: Vec<Action>,
    /// Priority for conflict resolution.
    pub priority: PolicyPriority,
    /// Human-readable description (e.g. the legal obligation the rule encodes).
    pub description: String,
}

impl PolicyRule {
    /// Starts building a rule with the given id and authority.
    pub fn builder(id: impl Into<String>, authority: impl Into<String>) -> PolicyRuleBuilder {
        PolicyRuleBuilder {
            id: PolicyId::new(id),
            authority: authority.into(),
            trigger: Trigger::AnyEvent,
            condition: Condition::Always,
            actions: Vec::new(),
            priority: PolicyPriority::NORMAL,
            description: String::new(),
        }
    }

    /// Whether this rule should be evaluated for the given event.
    pub fn triggered_by(&self, event: &PolicyEvent) -> bool {
        self.trigger.matches(event)
    }
}

impl fmt::Display for PolicyRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] when {} then {} action(s)",
            self.id,
            self.authority,
            self.condition,
            self.actions.len()
        )
    }
}

/// Builder for [`PolicyRule`] (non-consuming terminal not needed; rules are cheap).
#[derive(Debug, Clone)]
pub struct PolicyRuleBuilder {
    id: PolicyId,
    authority: String,
    trigger: Trigger,
    condition: Condition,
    actions: Vec<Action>,
    priority: PolicyPriority,
    description: String,
}

impl PolicyRuleBuilder {
    /// Fire when the given context key changes.
    pub fn on_context_key(mut self, key: impl Into<String>) -> Self {
        self.trigger = Trigger::OnContextKey { key: key.into() };
        self
    }

    /// Fire on flow attempts (all of them, or only denied ones).
    pub fn on_flow_attempt(mut self, denied_only: bool) -> Self {
        self.trigger = Trigger::OnFlowAttempt { denied_only };
        self
    }

    /// Fire when a component joins the deployment.
    pub fn on_component_joined(mut self) -> Self {
        self.trigger = Trigger::OnComponentJoined;
        self
    }

    /// Fire when a component leaves the deployment.
    pub fn on_component_left(mut self) -> Self {
        self.trigger = Trigger::OnComponentLeft;
        self
    }

    /// Fire on the periodic tick.
    pub fn on_tick(mut self) -> Self {
        self.trigger = Trigger::OnTick;
        self
    }

    /// Fire on any event.
    pub fn on_any_event(mut self) -> Self {
        self.trigger = Trigger::AnyEvent;
        self
    }

    /// Sets the condition (replacing the default `Always`).
    pub fn when(mut self, condition: Condition) -> Self {
        self.condition = condition;
        self
    }

    /// Adds an action.
    pub fn then(mut self, action: Action) -> Self {
        self.actions.push(action);
        self
    }

    /// Sets the priority.
    pub fn priority(mut self, priority: PolicyPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the human-readable description.
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Finishes building the rule.
    pub fn build(self) -> PolicyRule {
        PolicyRule {
            id: self.id,
            authority: self.authority,
            trigger: self.trigger,
            condition: self.condition,
            actions: self.actions,
            priority: self.priority,
            description: self.description,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_setters() {
        let rule = PolicyRule::builder("r1", "hospital")
            .when(Condition::is_true("emergency.active"))
            .then(Action::Notify { recipient: "doctor".into(), message: "go".into() })
            .then(Action::Isolate { component: "rogue".into() })
            .priority(PolicyPriority::REGULATORY)
            .describe("emergency handling")
            .build();
        assert_eq!(rule.id, PolicyId::new("r1"));
        assert_eq!(rule.authority, "hospital");
        assert_eq!(rule.actions.len(), 2);
        assert_eq!(rule.priority, PolicyPriority::REGULATORY);
        assert!(rule.to_string().contains("r1"));
        assert_eq!(rule.description, "emergency handling");
    }

    #[test]
    fn priorities_order() {
        assert!(PolicyPriority::EMERGENCY > PolicyPriority::REGULATORY);
        assert!(PolicyPriority::REGULATORY > PolicyPriority::NORMAL);
        assert_eq!(PolicyPriority::default(), PolicyPriority::NORMAL);
    }

    #[test]
    fn trigger_matching() {
        let ctx_event = PolicyEvent::ContextChanged { key: "patient.hr".into() };
        let other_ctx = PolicyEvent::ContextChanged { key: "other".into() };
        let denied_flow =
            PolicyEvent::FlowAttempted { from: "a".into(), to: "b".into(), allowed: false };
        let allowed_flow =
            PolicyEvent::FlowAttempted { from: "a".into(), to: "b".into(), allowed: true };
        let joined = PolicyEvent::ComponentJoined { component: "c".into() };
        let left = PolicyEvent::ComponentLeft { component: "c".into() };

        assert!(Trigger::AnyEvent.matches(&ctx_event));
        assert!(Trigger::OnContextKey { key: "patient.hr".into() }.matches(&ctx_event));
        assert!(!Trigger::OnContextKey { key: "patient.hr".into() }.matches(&other_ctx));
        assert!(Trigger::OnFlowAttempt { denied_only: true }.matches(&denied_flow));
        assert!(!Trigger::OnFlowAttempt { denied_only: true }.matches(&allowed_flow));
        assert!(Trigger::OnFlowAttempt { denied_only: false }.matches(&allowed_flow));
        assert!(Trigger::OnComponentJoined.matches(&joined));
        assert!(!Trigger::OnComponentJoined.matches(&left));
        assert!(Trigger::OnComponentLeft.matches(&left));
        assert!(Trigger::OnTick.matches(&PolicyEvent::Tick));
        assert!(!Trigger::OnTick.matches(&joined));
    }

    #[test]
    fn rule_triggered_by_uses_trigger() {
        let rule = PolicyRule::builder("r", "a").on_tick().build();
        assert!(rule.triggered_by(&PolicyEvent::Tick));
        assert!(!rule.triggered_by(&PolicyEvent::ComponentJoined { component: "x".into() }));
    }

    #[test]
    fn event_class_and_display() {
        assert_eq!(PolicyEvent::Tick.class(), "tick");
        assert_eq!(PolicyEvent::ContextChanged { key: "k".into() }.class(), "context-changed");
        assert!(PolicyEvent::FlowAttempted { from: "a".into(), to: "b".into(), allowed: false }
            .to_string()
            .contains("denied"));
        assert!(PolicyEvent::ComponentJoined { component: "c".into() }.to_string().contains("c"));
        assert!(PolicyEvent::ComponentLeft { component: "c".into() }.to_string().contains("c"));
    }

    #[test]
    fn policy_id_conversions() {
        let id: PolicyId = "geo-fence".into();
        assert_eq!(id.as_str(), "geo-fence");
        assert_eq!(id.to_string(), "geo-fence");
    }
}
