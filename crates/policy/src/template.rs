//! Policy authoring templates.
//!
//! Challenge 2 calls for "suitable, intuitive means for IFC tags, privileges and
//! reconfiguration policy to be expressed, so that obligations can be captured and
//! adhered to. Work concerning policy authoring interfaces and templates can be
//! relevant." A [`PolicyTemplate`] is a parameterised recipe that expands a commonly
//! needed legal or operational obligation into concrete [`PolicyRule`]s (and, where
//! relevant, the IFC tags the middleware must apply).

use serde::{Deserialize, Serialize};

use legaliot_ifc::Tag;

use crate::action::Action;
use crate::condition::Condition;
use crate::eca::{PolicyPriority, PolicyRule};

/// A parameterised policy recipe that expands into concrete rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyTemplate {
    /// Data tagged with `data_tag` may only be handled by components inside `region`
    /// (e.g. "personal data must not leave the EU", §9.3 Challenge 1).
    GeoFence {
        /// The secrecy tag identifying the protected data.
        data_tag: Tag,
        /// The region the data must stay within (a context-key convention:
        /// `<component>.in-<region>` must be true at the destination).
        region: String,
        /// The authority imposing the restriction (e.g. `eu-regulator`).
        authority: String,
    },
    /// Flows of data tagged `data_tag` require recorded consent from `subject`.
    ConsentRequired {
        /// The secrecy tag identifying the subject's data.
        data_tag: Tag,
        /// The data subject whose consent is needed.
        subject: String,
        /// The authority imposing the obligation.
        authority: String,
    },
    /// A worker may receive flows only while on shift (`<worker>.on-shift`).
    ShiftOnlyAccess {
        /// The worker (component / principal name).
        worker: String,
        /// The data source they access.
        source: String,
        /// The authority imposing the restriction.
        authority: String,
    },
    /// Data tagged `data_tag` must be routed through `anonymiser` before reaching
    /// `analytics` (anonymise-before-analytics, Fig. 6).
    AnonymiseBeforeAnalytics {
        /// The secrecy tag identifying the raw data.
        data_tag: Tag,
        /// The source of raw data.
        source: String,
        /// The approved anonymising component.
        anonymiser: String,
        /// The analytics consumer.
        analytics: String,
        /// The authority imposing the obligation.
        authority: String,
    },
    /// Data items older than `retention_millis` must be purged from `store`.
    Retention {
        /// The storage component.
        store: String,
        /// Maximum age in milliseconds of simulated time.
        retention_millis: u64,
        /// The authority imposing the obligation.
        authority: String,
    },
    /// When an emergency context key becomes true, connect the responders and raise
    /// sampling (the Fig. 7 pattern).
    EmergencyResponse {
        /// The context key signalling the emergency.
        emergency_key: String,
        /// The analyser holding the patient's data.
        analyser: String,
        /// The responder to connect.
        responder: String,
        /// The sensor to actuate.
        sensor: String,
        /// The authority defining the response.
        authority: String,
    },
}

impl PolicyTemplate {
    /// Expands the template into concrete policy rules.
    pub fn expand(&self) -> Vec<PolicyRule> {
        match self {
            PolicyTemplate::GeoFence { data_tag, region, authority } => vec![PolicyRule::builder(
                format!("geo-fence-{data_tag}-{region}"),
                authority.clone(),
            )
            .on_flow_attempt(false)
            .when(Condition::is_false(format!("destination.in-{region}")))
            .then(Action::DenyFlow { from: "*".into(), to: "*".into() })
            .priority(PolicyPriority::REGULATORY)
            .describe(format!(
                "data tagged `{data_tag}` must not flow to components outside {region}"
            ))
            .build()],
            PolicyTemplate::ConsentRequired { data_tag, subject, authority } => {
                vec![PolicyRule::builder(
                    format!("consent-{subject}-{data_tag}"),
                    authority.clone(),
                )
                .on_flow_attempt(false)
                .when(Condition::is_false(format!("{subject}.consent-given")))
                .then(Action::DenyFlow { from: "*".into(), to: "*".into() })
                .priority(PolicyPriority::REGULATORY)
                .describe(format!("flows of `{data_tag}` require recorded consent from {subject}"))
                .build()]
            }
            PolicyTemplate::ShiftOnlyAccess { worker, source, authority } => vec![
                PolicyRule::builder(format!("shift-only-{worker}"), authority.clone())
                    .on_context_key(format!("{worker}.on-shift"))
                    .when(Condition::is_false(format!("{worker}.on-shift")))
                    .then(Action::Disconnect { from: source.clone(), to: worker.clone() })
                    .describe(format!("{worker} may access {source} only while on shift"))
                    .build(),
                PolicyRule::builder(format!("shift-reconnect-{worker}"), authority.clone())
                    .on_context_key(format!("{worker}.on-shift"))
                    .when(Condition::is_true(format!("{worker}.on-shift")))
                    .then(Action::Connect { from: source.clone(), to: worker.clone() })
                    .describe(format!("{worker} regains access to {source} when on shift"))
                    .build(),
            ],
            PolicyTemplate::AnonymiseBeforeAnalytics {
                data_tag,
                source,
                anonymiser,
                analytics,
                authority,
            } => vec![PolicyRule::builder(
                format!("anonymise-before-analytics-{data_tag}"),
                authority.clone(),
            )
            .on_component_joined()
            .then(Action::RouteVia {
                from: source.clone(),
                via: anonymiser.clone(),
                to: analytics.clone(),
            })
            .then(Action::DenyFlow { from: source.clone(), to: analytics.clone() })
            .priority(PolicyPriority::REGULATORY)
            .describe(format!(
                "`{data_tag}` data must pass through {anonymiser} before {analytics}"
            ))
            .build()],
            PolicyTemplate::Retention { store, retention_millis, authority } => {
                vec![PolicyRule::builder(format!("retention-{store}"), authority.clone())
                    .on_tick()
                    .when(Condition::number_at_least(
                        format!("{store}.oldest-item-age"),
                        *retention_millis as f64,
                    ))
                    .then(Action::Actuate {
                        component: store.clone(),
                        command: format!("purge-older-than={retention_millis}"),
                    })
                    .priority(PolicyPriority::REGULATORY)
                    .describe(format!("{store} must purge items older than {retention_millis}ms"))
                    .build()]
            }
            PolicyTemplate::EmergencyResponse {
                emergency_key,
                analyser,
                responder,
                sensor,
                authority,
            } => vec![
                PolicyRule::builder(format!("emergency-response-{analyser}"), authority.clone())
                    .on_context_key(emergency_key.clone())
                    .when(Condition::is_true(emergency_key.clone()))
                    .then(Action::Notify {
                        recipient: responder.clone(),
                        message: format!("emergency detected by {analyser}"),
                    })
                    .then(Action::Connect { from: analyser.clone(), to: responder.clone() })
                    .then(Action::Actuate {
                        component: sensor.clone(),
                        command: "sample-interval=1s".into(),
                    })
                    .priority(PolicyPriority::EMERGENCY)
                    .describe("emergency response: alert, connect responders, raise sampling")
                    .build(),
                PolicyRule::builder(format!("emergency-standdown-{analyser}"), authority.clone())
                    .on_context_key(emergency_key.clone())
                    .when(Condition::is_false(emergency_key.clone()))
                    .then(Action::Disconnect { from: analyser.clone(), to: responder.clone() })
                    .then(Action::Actuate {
                        component: sensor.clone(),
                        command: "sample-interval=60s".into(),
                    })
                    .describe("stand down once the emergency clears")
                    .build(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eca::PolicyEvent;
    use crate::engine::PolicyEngine;
    use legaliot_context::{ContextSnapshot, Timestamp};

    #[test]
    fn geo_fence_expands_to_regulatory_deny() {
        let rules = PolicyTemplate::GeoFence {
            data_tag: Tag::new("personal"),
            region: "eu".into(),
            authority: "eu-regulator".into(),
        }
        .expand();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].priority, PolicyPriority::REGULATORY);
        assert!(rules[0].description.contains("eu"));
    }

    #[test]
    fn consent_rule_fires_without_consent() {
        let rules = PolicyTemplate::ConsentRequired {
            data_tag: Tag::new("medical"),
            subject: "ann".into(),
            authority: "hospital".into(),
        }
        .expand();
        let mut engine = PolicyEngine::new("e");
        for r in rules {
            engine.add_rule(r);
        }
        let event = PolicyEvent::FlowAttempted {
            from: "sensor".into(),
            to: "analyser".into(),
            allowed: true,
        };
        // No consent recorded: rule fires and denies.
        let outcome = engine.evaluate(&event, &ContextSnapshot::default(), Timestamp::ZERO);
        assert_eq!(outcome.fired.len(), 1);
        // With consent recorded: quiescent.
        let snap = ContextSnapshot::from_pairs([("ann.consent-given", true)]);
        let outcome = engine.evaluate(&event, &snap, Timestamp::ZERO);
        assert!(outcome.is_quiescent());
    }

    #[test]
    fn shift_only_produces_connect_and_disconnect_rules() {
        let rules = PolicyTemplate::ShiftOnlyAccess {
            worker: "nurse".into(),
            source: "ann-analyser".into(),
            authority: "hospital".into(),
        }
        .expand();
        assert_eq!(rules.len(), 2);
        let mut engine = PolicyEngine::new("e");
        for r in rules {
            engine.add_rule(r);
        }
        let event = PolicyEvent::ContextChanged { key: "nurse.on-shift".into() };
        let off = ContextSnapshot::from_pairs([("nurse.on-shift", false)]);
        let outcome = engine.evaluate(&event, &off, Timestamp::ZERO);
        assert_eq!(outcome.commands.len(), 1);
        assert!(matches!(outcome.commands[0].action, Action::Disconnect { .. }));
        let on = ContextSnapshot::from_pairs([("nurse.on-shift", true)]);
        let outcome = engine.evaluate(&event, &on, Timestamp::ZERO);
        assert!(matches!(outcome.commands[0].action, Action::Connect { .. }));
    }

    #[test]
    fn anonymise_template_routes_via_anonymiser() {
        let rules = PolicyTemplate::AnonymiseBeforeAnalytics {
            data_tag: Tag::new("medical"),
            source: "patient-records".into(),
            anonymiser: "stats-generator".into(),
            analytics: "ward-manager".into(),
            authority: "hospital".into(),
        }
        .expand();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].actions.len(), 2);
        assert!(matches!(rules[0].actions[0], Action::RouteVia { .. }));
    }

    #[test]
    fn retention_rule_fires_when_store_has_old_items() {
        let rules = PolicyTemplate::Retention {
            store: "archive".into(),
            retention_millis: 1_000,
            authority: "dpo".into(),
        }
        .expand();
        let mut engine = PolicyEngine::new("e");
        for r in rules {
            engine.add_rule(r);
        }
        let fresh = ContextSnapshot::from_pairs([("archive.oldest-item-age", 500i64)]);
        assert!(engine.evaluate(&PolicyEvent::Tick, &fresh, Timestamp::ZERO).is_quiescent());
        let stale = ContextSnapshot::from_pairs([("archive.oldest-item-age", 5_000i64)]);
        let outcome = engine.evaluate(&PolicyEvent::Tick, &stale, Timestamp::ZERO);
        assert_eq!(outcome.commands.len(), 1);
        assert!(matches!(outcome.commands[0].action, Action::Actuate { .. }));
    }

    #[test]
    fn emergency_response_template_matches_fig7() {
        let rules = PolicyTemplate::EmergencyResponse {
            emergency_key: "ann.emergency".into(),
            analyser: "ann-analyser".into(),
            responder: "emergency-doctor".into(),
            sensor: "ann-sensor".into(),
            authority: "hospital".into(),
        }
        .expand();
        assert_eq!(rules.len(), 2);
        let mut engine = PolicyEngine::new("e");
        for r in rules {
            engine.add_rule(r);
        }
        let event = PolicyEvent::ContextChanged { key: "ann.emergency".into() };
        let emergency = ContextSnapshot::from_pairs([("ann.emergency", true)]);
        let outcome = engine.evaluate(&event, &emergency, Timestamp(100));
        assert_eq!(outcome.fired.len(), 1);
        assert_eq!(outcome.commands.len(), 3);
        let over = ContextSnapshot::from_pairs([("ann.emergency", false)]);
        let outcome = engine.evaluate(&event, &over, Timestamp(200));
        assert_eq!(outcome.commands.len(), 2);
        assert!(matches!(outcome.commands[0].action, Action::Disconnect { .. }));
    }
}
