//! Policy actions and the reconfiguration commands they expand to.
//!
//! §5.2 distinguishes two forms of reconfiguration: *setting the security/management
//! regime* (labels, privileges, an IFC security context) and *proactively taking direct
//! security operations* (initiating/ceasing connections, forcing data through a
//! sanitiser, disconnecting an employee, isolating a rogue 'thing'). [`Action`] is the
//! vocabulary a policy author writes; [`ReconfigurationCommand`] is the concrete,
//! addressed instruction the middleware delivers as a control message (Fig. 8).

use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_ifc::{Privilege, SecurityContext, Tag};

/// A declarative action taken when a policy rule fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Permit a flow class (used by authorisation-style rules).
    AllowFlow {
        /// Source component (name or pattern).
        from: String,
        /// Destination component.
        to: String,
    },
    /// Deny a flow class.
    DenyFlow {
        /// Source component.
        from: String,
        /// Destination component.
        to: String,
    },
    /// Reconfigure a component's security context.
    SetSecurityContext {
        /// The component to reconfigure.
        component: String,
        /// The new context.
        context: SecurityContext,
    },
    /// Add a secrecy or integrity tag to a component's context.
    AddTag {
        /// The component to reconfigure.
        component: String,
        /// The tag to add.
        tag: Tag,
        /// `true` to add to the secrecy label, `false` for integrity.
        secrecy: bool,
    },
    /// Remove a tag from a component's context.
    RemoveTag {
        /// The component to reconfigure.
        component: String,
        /// The tag to remove.
        tag: Tag,
        /// `true` to remove from the secrecy label, `false` for integrity.
        secrecy: bool,
    },
    /// Grant a privilege to a component (requires tag ownership at enforcement time).
    GrantPrivilege {
        /// The component receiving the privilege.
        component: String,
        /// The privilege granted.
        privilege: Privilege,
    },
    /// Revoke a privilege from a component.
    RevokePrivilege {
        /// The component losing the privilege.
        component: String,
        /// The privilege revoked.
        privilege: Privilege,
    },
    /// Establish a messaging channel between two components.
    Connect {
        /// Source component.
        from: String,
        /// Destination component.
        to: String,
    },
    /// Tear down a messaging channel.
    Disconnect {
        /// Source component.
        from: String,
        /// Destination component.
        to: String,
    },
    /// Re-route a flow through an intermediary (e.g. force data through a sanitiser).
    RouteVia {
        /// Source component.
        from: String,
        /// The mandatory intermediary.
        via: String,
        /// Destination component.
        to: String,
    },
    /// Isolate a component: tear down all of its channels and refuse new ones.
    Isolate {
        /// The component to isolate (e.g. a rogue 'thing').
        component: String,
    },
    /// Send an alert/notification to a principal (e.g. emergency services, a relative).
    Notify {
        /// Who to notify.
        recipient: String,
        /// The message.
        message: String,
    },
    /// Request a different sampling rate or actuation from a device.
    Actuate {
        /// The device to actuate.
        component: String,
        /// The actuation command (e.g. `sample-interval=1s`).
        command: String,
    },
}

impl Action {
    /// The component this action primarily targets, if it is addressed to one.
    pub fn target(&self) -> Option<&str> {
        match self {
            Action::SetSecurityContext { component, .. }
            | Action::AddTag { component, .. }
            | Action::RemoveTag { component, .. }
            | Action::GrantPrivilege { component, .. }
            | Action::RevokePrivilege { component, .. }
            | Action::Isolate { component }
            | Action::Actuate { component, .. } => Some(component),
            Action::Connect { from, .. }
            | Action::Disconnect { from, .. }
            | Action::RouteVia { from, .. }
            | Action::AllowFlow { from, .. }
            | Action::DenyFlow { from, .. } => Some(from),
            Action::Notify { .. } => None,
        }
    }

    /// Whether the action changes the IFC security regime (labels/privileges) rather
    /// than performing a direct operation.
    pub fn is_security_regime_change(&self) -> bool {
        matches!(
            self,
            Action::SetSecurityContext { .. }
                | Action::AddTag { .. }
                | Action::RemoveTag { .. }
                | Action::GrantPrivilege { .. }
                | Action::RevokePrivilege { .. }
        )
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::AllowFlow { from, to } => write!(f, "allow flow {from} -> {to}"),
            Action::DenyFlow { from, to } => write!(f, "deny flow {from} -> {to}"),
            Action::SetSecurityContext { component, context } => {
                write!(f, "set context of {component} to {context}")
            }
            Action::AddTag { component, tag, secrecy } => write!(
                f,
                "add {} tag {tag} to {component}",
                if *secrecy { "secrecy" } else { "integrity" }
            ),
            Action::RemoveTag { component, tag, secrecy } => write!(
                f,
                "remove {} tag {tag} from {component}",
                if *secrecy { "secrecy" } else { "integrity" }
            ),
            Action::GrantPrivilege { component, privilege } => {
                write!(f, "grant {privilege} to {component}")
            }
            Action::RevokePrivilege { component, privilege } => {
                write!(f, "revoke {privilege} from {component}")
            }
            Action::Connect { from, to } => write!(f, "connect {from} -> {to}"),
            Action::Disconnect { from, to } => write!(f, "disconnect {from} -> {to}"),
            Action::RouteVia { from, via, to } => write!(f, "route {from} -> {via} -> {to}"),
            Action::Isolate { component } => write!(f, "isolate {component}"),
            Action::Notify { recipient, message } => write!(f, "notify {recipient}: {message}"),
            Action::Actuate { component, command } => write!(f, "actuate {component}: {command}"),
        }
    }
}

/// A concrete reconfiguration instruction issued by the policy engine, addressed to a
/// component and attributed to the policy that produced it.
///
/// The middleware wraps these in control messages (Fig. 8) subject to its own access
/// control before applying them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigurationCommand {
    /// The policy rule that produced the command.
    pub issued_by_policy: String,
    /// The principal on whose authority the policy engine acts.
    pub authority: String,
    /// The action to apply.
    pub action: Action,
    /// Simulated time (ms) at which the command was issued.
    pub issued_at_millis: u64,
}

impl ReconfigurationCommand {
    /// Creates a command.
    pub fn new(
        issued_by_policy: impl Into<String>,
        authority: impl Into<String>,
        action: Action,
        issued_at_millis: u64,
    ) -> Self {
        ReconfigurationCommand {
            issued_by_policy: issued_by_policy.into(),
            authority: authority.into(),
            action,
            issued_at_millis,
        }
    }
}

impl fmt::Display for ReconfigurationCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} by {}] {}", self.issued_by_policy, self.authority, self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_ifc::PrivilegeKind;

    #[test]
    fn targets() {
        assert_eq!(Action::Isolate { component: "rogue".into() }.target(), Some("rogue"));
        assert_eq!(Action::Connect { from: "a".into(), to: "b".into() }.target(), Some("a"));
        assert_eq!(
            Action::Notify { recipient: "doctor".into(), message: "m".into() }.target(),
            None
        );
        assert_eq!(
            Action::Actuate { component: "sensor".into(), command: "faster".into() }.target(),
            Some("sensor")
        );
    }

    #[test]
    fn security_regime_classification() {
        assert!(Action::AddTag { component: "c".into(), tag: Tag::new("medical"), secrecy: true }
            .is_security_regime_change());
        assert!(Action::GrantPrivilege {
            component: "c".into(),
            privilege: Privilege::new("medical", PrivilegeKind::SecrecyRemove),
        }
        .is_security_regime_change());
        assert!(!Action::Connect { from: "a".into(), to: "b".into() }.is_security_regime_change());
        assert!(!Action::Notify { recipient: "r".into(), message: "m".into() }
            .is_security_regime_change());
    }

    #[test]
    fn displays_are_informative() {
        let actions = vec![
            Action::AllowFlow { from: "a".into(), to: "b".into() },
            Action::DenyFlow { from: "a".into(), to: "b".into() },
            Action::SetSecurityContext {
                component: "c".into(),
                context: SecurityContext::public(),
            },
            Action::AddTag { component: "c".into(), tag: Tag::new("t"), secrecy: false },
            Action::RemoveTag { component: "c".into(), tag: Tag::new("t"), secrecy: true },
            Action::GrantPrivilege {
                component: "c".into(),
                privilege: Privilege::new("t", PrivilegeKind::IntegrityAdd),
            },
            Action::RevokePrivilege {
                component: "c".into(),
                privilege: Privilege::new("t", PrivilegeKind::IntegrityAdd),
            },
            Action::Connect { from: "a".into(), to: "b".into() },
            Action::Disconnect { from: "a".into(), to: "b".into() },
            Action::RouteVia { from: "a".into(), via: "san".into(), to: "b".into() },
            Action::Isolate { component: "c".into() },
            Action::Notify { recipient: "r".into(), message: "m".into() },
            Action::Actuate { component: "c".into(), command: "x".into() },
        ];
        for a in actions {
            assert!(!a.to_string().is_empty());
        }
    }

    #[test]
    fn command_display_mentions_policy_and_authority() {
        let cmd = ReconfigurationCommand::new(
            "emergency-response",
            "hospital",
            Action::Connect { from: "analyser".into(), to: "emergency-doctor".into() },
            42,
        );
        let s = cmd.to_string();
        assert!(s.contains("emergency-response"));
        assert!(s.contains("hospital"));
        assert!(s.contains("connect"));
        assert_eq!(cmd.issued_at_millis, 42);
    }
}
