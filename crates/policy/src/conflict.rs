//! Policy conflict detection and resolution (Challenge 4: "Authority and conflict").
//!
//! "Federation means that policy will conflict … Work is certainly required on policy
//! conflict resolution, e.g. standardisation, authoring interfaces and/or mechanisms for
//! runtime negotiation and resolution." This module implements the runtime-resolution
//! half for the reproduction: detecting when the commands produced by simultaneously
//! firing rules contradict each other, and resolving the contradiction under a chosen
//! strategy.
//!
//! Two commands conflict when they target the same component (or the same `from → to`
//! pair) and prescribe incompatible outcomes: connect vs disconnect/isolate, allow vs
//! deny of the same flow, adding vs removing the same tag, granting vs revoking the same
//! privilege, or two different actuation commands for the same device.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::action::{Action, ReconfigurationCommand};
use crate::eca::{PolicyPriority, PolicyRule};

/// How conflicts between simultaneously issued commands are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolutionStrategy {
    /// Higher-priority rule wins; ties resolved by preferring the restrictive command.
    PriorityThenDenyOverrides,
    /// The restrictive (deny/disconnect/isolate/revoke/remove-privilege) command wins
    /// regardless of priority.
    DenyOverrides,
    /// The permissive command wins (used in break-glass situations where availability
    /// trumps confidentiality).
    PermitOverrides,
    /// Keep the command from the rule listed first (deterministic but arbitrary); the
    /// baseline the paper warns against, retained for the E15 ablation.
    FirstApplicable,
}

impl fmt::Display for ResolutionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResolutionStrategy::PriorityThenDenyOverrides => "priority-then-deny-overrides",
            ResolutionStrategy::DenyOverrides => "deny-overrides",
            ResolutionStrategy::PermitOverrides => "permit-overrides",
            ResolutionStrategy::FirstApplicable => "first-applicable",
        };
        f.write_str(s)
    }
}

/// A detected conflict between two commands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConflictReport {
    /// Index (in the submitted command list) of the command that was kept.
    pub kept: usize,
    /// Index of the command that was dropped.
    pub dropped: usize,
    /// Why the pair was considered conflicting.
    pub reason: String,
}

/// Detects and resolves conflicts among the commands of one evaluation round.
#[derive(Debug, Clone)]
pub struct ConflictResolver {
    strategy: ResolutionStrategy,
}

/// Whether an action is "restrictive" for deny/permit-overrides purposes.
fn is_restrictive(action: &Action) -> bool {
    matches!(
        action,
        Action::DenyFlow { .. }
            | Action::Disconnect { .. }
            | Action::Isolate { .. }
            | Action::RevokePrivilege { .. }
            | Action::RemoveTag { .. }
    )
}

/// The "subject" two actions must share to be in conflict, if any.
fn conflict_subject(a: &Action, b: &Action) -> Option<String> {
    use Action::*;
    let pair_key = |from: &str, to: &str| format!("{from}->{to}");
    match (a, b) {
        (AllowFlow { from: f1, to: t1 }, DenyFlow { from: f2, to: t2 })
        | (DenyFlow { from: f1, to: t1 }, AllowFlow { from: f2, to: t2 })
            if f1 == f2 && t1 == t2 =>
        {
            Some(pair_key(f1, t1))
        }
        (Connect { from: f1, to: t1 }, Disconnect { from: f2, to: t2 })
        | (Disconnect { from: f1, to: t1 }, Connect { from: f2, to: t2 })
            if f1 == f2 && t1 == t2 =>
        {
            Some(pair_key(f1, t1))
        }
        (Connect { from, to }, Isolate { component })
        | (Isolate { component }, Connect { from, to })
            if component == from || component == to =>
        {
            Some(component.clone())
        }
        (
            AddTag { component: c1, tag: t1, secrecy: s1 },
            RemoveTag { component: c2, tag: t2, secrecy: s2 },
        )
        | (
            RemoveTag { component: c1, tag: t1, secrecy: s1 },
            AddTag { component: c2, tag: t2, secrecy: s2 },
        ) if c1 == c2 && t1 == t2 && s1 == s2 => Some(format!("{c1}:{t1}")),
        (
            GrantPrivilege { component: c1, privilege: p1 },
            RevokePrivilege { component: c2, privilege: p2 },
        )
        | (
            RevokePrivilege { component: c1, privilege: p1 },
            GrantPrivilege { component: c2, privilege: p2 },
        ) if c1 == c2 && p1 == p2 => Some(format!("{c1}:{p1}")),
        (Actuate { component: c1, command: k1 }, Actuate { component: c2, command: k2 })
            if c1 == c2 && k1 != k2 =>
        {
            Some(c1.clone())
        }
        _ => None,
    }
}

impl ConflictResolver {
    /// Creates a resolver with the given strategy.
    pub fn new(strategy: ResolutionStrategy) -> Self {
        ConflictResolver { strategy }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> ResolutionStrategy {
        self.strategy
    }

    /// Detects conflicting pairs among `commands` without resolving them.
    pub fn detect(&self, commands: &[ReconfigurationCommand]) -> Vec<(usize, usize, String)> {
        let mut conflicts = Vec::new();
        for i in 0..commands.len() {
            for j in (i + 1)..commands.len() {
                if let Some(subject) = conflict_subject(&commands[i].action, &commands[j].action) {
                    conflicts.push((i, j, subject));
                }
            }
        }
        conflicts
    }

    fn priority_of(rules: &[&PolicyRule], command: &ReconfigurationCommand) -> PolicyPriority {
        rules
            .iter()
            .find(|r| r.id.as_str() == command.issued_by_policy)
            .map(|r| r.priority)
            .unwrap_or_default()
    }

    /// Resolves conflicts among `commands`, returning the surviving commands in their
    /// original order. `rules` supplies the priorities of the rules that produced them.
    pub fn resolve(
        &self,
        rules: &[&PolicyRule],
        commands: Vec<ReconfigurationCommand>,
    ) -> Vec<ReconfigurationCommand> {
        let conflicts = self.detect(&commands);
        if conflicts.is_empty() {
            return commands;
        }
        let mut dropped = vec![false; commands.len()];
        for (i, j, _subject) in conflicts {
            if dropped[i] || dropped[j] {
                continue;
            }
            let loser = match self.strategy {
                ResolutionStrategy::FirstApplicable => j,
                ResolutionStrategy::DenyOverrides => {
                    if is_restrictive(&commands[i].action) {
                        j
                    } else if is_restrictive(&commands[j].action) {
                        i
                    } else {
                        j
                    }
                }
                ResolutionStrategy::PermitOverrides => {
                    // The permissive command wins; with two permissive
                    // commands, the earlier one is kept.
                    if is_restrictive(&commands[i].action) {
                        i
                    } else {
                        j
                    }
                }
                ResolutionStrategy::PriorityThenDenyOverrides => {
                    let pi = Self::priority_of(rules, &commands[i]);
                    let pj = Self::priority_of(rules, &commands[j]);
                    if pi > pj {
                        j
                    } else if pj > pi {
                        i
                    } else if is_restrictive(&commands[i].action) {
                        j
                    } else if is_restrictive(&commands[j].action) {
                        i
                    } else {
                        j
                    }
                }
            };
            dropped[loser] = true;
        }
        commands.into_iter().enumerate().filter(|(idx, _)| !dropped[*idx]).map(|(_, c)| c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::eca::PolicyRule;
    use legaliot_ifc::{Privilege, PrivilegeKind, Tag};

    fn cmd(policy: &str, action: Action) -> ReconfigurationCommand {
        ReconfigurationCommand::new(policy, "authority", action, 0)
    }

    fn rule(id: &str, priority: PolicyPriority) -> PolicyRule {
        PolicyRule::builder(id, "auth").when(Condition::Always).priority(priority).build()
    }

    #[test]
    fn detects_connect_disconnect_conflict() {
        let resolver = ConflictResolver::new(ResolutionStrategy::DenyOverrides);
        let commands = vec![
            cmd("p1", Action::Connect { from: "a".into(), to: "b".into() }),
            cmd("p2", Action::Disconnect { from: "a".into(), to: "b".into() }),
            cmd("p3", Action::Connect { from: "a".into(), to: "c".into() }),
        ];
        let conflicts = resolver.detect(&commands);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].0, 0);
        assert_eq!(conflicts[0].1, 1);
    }

    #[test]
    fn deny_overrides_keeps_restrictive_command() {
        let resolver = ConflictResolver::new(ResolutionStrategy::DenyOverrides);
        let commands = vec![
            cmd("p1", Action::AllowFlow { from: "a".into(), to: "b".into() }),
            cmd("p2", Action::DenyFlow { from: "a".into(), to: "b".into() }),
        ];
        let rules = [rule("p1", PolicyPriority::NORMAL), rule("p2", PolicyPriority::NORMAL)];
        let rule_refs: Vec<&PolicyRule> = rules.iter().collect();
        let out = resolver.resolve(&rule_refs, commands);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].action, Action::DenyFlow { .. }));
    }

    #[test]
    fn permit_overrides_keeps_permissive_command() {
        let resolver = ConflictResolver::new(ResolutionStrategy::PermitOverrides);
        let commands = vec![
            cmd("p1", Action::AllowFlow { from: "a".into(), to: "b".into() }),
            cmd("p2", Action::DenyFlow { from: "a".into(), to: "b".into() }),
        ];
        let rules = [rule("p1", PolicyPriority::NORMAL), rule("p2", PolicyPriority::NORMAL)];
        let rule_refs: Vec<&PolicyRule> = rules.iter().collect();
        let out = resolver.resolve(&rule_refs, commands);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].action, Action::AllowFlow { .. }));
    }

    #[test]
    fn priority_wins_over_restrictiveness() {
        let resolver = ConflictResolver::new(ResolutionStrategy::PriorityThenDenyOverrides);
        // The emergency (high-priority) rule wants to connect; a normal rule wants to
        // isolate the same component. Priority must win: break-glass connectivity.
        let commands = vec![
            cmd("emergency", Action::Connect { from: "analyser".into(), to: "doctor".into() }),
            cmd("lockdown", Action::Isolate { component: "analyser".into() }),
        ];
        let rules = [
            rule("emergency", PolicyPriority::EMERGENCY),
            rule("lockdown", PolicyPriority::NORMAL),
        ];
        let rule_refs: Vec<&PolicyRule> = rules.iter().collect();
        let out = resolver.resolve(&rule_refs, commands);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].action, Action::Connect { .. }));
    }

    #[test]
    fn equal_priority_falls_back_to_deny_overrides() {
        let resolver = ConflictResolver::new(ResolutionStrategy::PriorityThenDenyOverrides);
        let commands = vec![
            cmd("p1", Action::Connect { from: "a".into(), to: "b".into() }),
            cmd("p2", Action::Disconnect { from: "a".into(), to: "b".into() }),
        ];
        let rules = [rule("p1", PolicyPriority::NORMAL), rule("p2", PolicyPriority::NORMAL)];
        let rule_refs: Vec<&PolicyRule> = rules.iter().collect();
        let out = resolver.resolve(&rule_refs, commands);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].action, Action::Disconnect { .. }));
    }

    #[test]
    fn tag_and_privilege_conflicts() {
        let resolver = ConflictResolver::new(ResolutionStrategy::DenyOverrides);
        let commands = vec![
            cmd(
                "p1",
                Action::AddTag { component: "c".into(), tag: Tag::new("medical"), secrecy: true },
            ),
            cmd(
                "p2",
                Action::RemoveTag {
                    component: "c".into(),
                    tag: Tag::new("medical"),
                    secrecy: true,
                },
            ),
            cmd(
                "p3",
                Action::GrantPrivilege {
                    component: "c".into(),
                    privilege: Privilege::new("medical", PrivilegeKind::SecrecyRemove),
                },
            ),
            cmd(
                "p4",
                Action::RevokePrivilege {
                    component: "c".into(),
                    privilege: Privilege::new("medical", PrivilegeKind::SecrecyRemove),
                },
            ),
        ];
        assert_eq!(resolver.detect(&commands).len(), 2);
        let rules: Vec<PolicyRule> =
            ["p1", "p2", "p3", "p4"].iter().map(|id| rule(id, PolicyPriority::NORMAL)).collect();
        let rule_refs: Vec<&PolicyRule> = rules.iter().collect();
        let out = resolver.resolve(&rule_refs, commands);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].action, Action::RemoveTag { .. }));
        assert!(matches!(out[1].action, Action::RevokePrivilege { .. }));
    }

    #[test]
    fn differing_actuations_conflict_but_same_do_not() {
        let resolver = ConflictResolver::new(ResolutionStrategy::FirstApplicable);
        let conflicting = vec![
            cmd("p1", Action::Actuate { component: "sensor".into(), command: "1s".into() }),
            cmd("p2", Action::Actuate { component: "sensor".into(), command: "60s".into() }),
        ];
        assert_eq!(resolver.detect(&conflicting).len(), 1);
        let same = vec![
            cmd("p1", Action::Actuate { component: "sensor".into(), command: "1s".into() }),
            cmd("p2", Action::Actuate { component: "sensor".into(), command: "1s".into() }),
        ];
        assert!(resolver.detect(&same).is_empty());
        // FirstApplicable keeps the first command.
        let rules = [rule("p1", PolicyPriority::NORMAL), rule("p2", PolicyPriority::NORMAL)];
        let rule_refs: Vec<&PolicyRule> = rules.iter().collect();
        let out = resolver.resolve(&rule_refs, conflicting);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].issued_by_policy, "p1");
    }

    #[test]
    fn non_conflicting_commands_pass_through() {
        let resolver = ConflictResolver::new(ResolutionStrategy::PriorityThenDenyOverrides);
        let commands = vec![
            cmd("p1", Action::Connect { from: "a".into(), to: "b".into() }),
            cmd("p2", Action::Notify { recipient: "doctor".into(), message: "hi".into() }),
        ];
        let out = resolver.resolve(&[], commands.clone());
        assert_eq!(out, commands);
        assert_eq!(resolver.strategy(), ResolutionStrategy::PriorityThenDenyOverrides);
    }

    #[test]
    fn isolate_conflicts_with_connect_to_or_from() {
        let resolver = ConflictResolver::new(ResolutionStrategy::DenyOverrides);
        let commands = vec![
            cmd("p1", Action::Connect { from: "x".into(), to: "victim".into() }),
            cmd("p2", Action::Isolate { component: "victim".into() }),
        ];
        let rules = [rule("p1", PolicyPriority::NORMAL), rule("p2", PolicyPriority::NORMAL)];
        let rule_refs: Vec<&PolicyRule> = rules.iter().collect();
        let out = resolver.resolve(&rule_refs, commands);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].action, Action::Isolate { .. }));
    }

    #[test]
    fn strategy_display() {
        assert_eq!(
            ResolutionStrategy::PriorityThenDenyOverrides.to_string(),
            "priority-then-deny-overrides"
        );
        assert_eq!(ResolutionStrategy::DenyOverrides.to_string(), "deny-overrides");
        assert_eq!(ResolutionStrategy::PermitOverrides.to_string(), "permit-overrides");
        assert_eq!(ResolutionStrategy::FirstApplicable.to_string(), "first-applicable");
    }
}
