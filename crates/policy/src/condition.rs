//! Condition expressions evaluated against context snapshots.

use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_context::{ContextSnapshot, ContextValue, Timestamp};

/// A boolean condition over a [`ContextSnapshot`].
///
/// Conditions are a small expression tree; they are serialisable so that policies can
/// be distributed to gateways and components (Challenge 1: global policy
/// representation).
///
/// ```
/// use legaliot_policy::Condition;
/// use legaliot_context::ContextSnapshot;
///
/// let c = Condition::is_true("emergency.active")
///     .and(Condition::number_at_least("patient.heart-rate", 120.0));
/// let snap = ContextSnapshot::from_pairs([
///     ("emergency.active", legaliot_context::ContextValue::Bool(true)),
///     ("patient.heart-rate", legaliot_context::ContextValue::Integer(150)),
/// ]);
/// assert!(c.evaluate(&snap, legaliot_context::Timestamp::ZERO));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// Always true.
    Always,
    /// Always false.
    Never,
    /// A boolean context key is present and true.
    IsTrue {
        /// The context key.
        key: String,
    },
    /// A boolean context key is absent or false.
    IsFalse {
        /// The context key.
        key: String,
    },
    /// A text context key equals the given value.
    TextEquals {
        /// The context key.
        key: String,
        /// The expected value.
        value: String,
    },
    /// A numeric context key is `>=` the given threshold.
    NumberAtLeast {
        /// The context key.
        key: String,
        /// The inclusive lower bound.
        threshold: f64,
    },
    /// A numeric context key is `<` the given threshold.
    NumberBelow {
        /// The context key.
        key: String,
        /// The exclusive upper bound.
        threshold: f64,
    },
    /// The current simulated time lies within `[start_millis, end_millis)`.
    WithinTime {
        /// Inclusive start (ms).
        start_millis: u64,
        /// Exclusive end (ms).
        end_millis: u64,
    },
    /// Negation.
    Not(Box<Condition>),
    /// Conjunction of all sub-conditions (true when empty).
    All(Vec<Condition>),
    /// Disjunction of the sub-conditions (false when empty).
    Any(Vec<Condition>),
}

impl Condition {
    /// Shorthand for [`Condition::IsTrue`].
    pub fn is_true(key: impl Into<String>) -> Self {
        Condition::IsTrue { key: key.into() }
    }

    /// Shorthand for [`Condition::IsFalse`].
    pub fn is_false(key: impl Into<String>) -> Self {
        Condition::IsFalse { key: key.into() }
    }

    /// Shorthand for [`Condition::TextEquals`].
    pub fn text_equals(key: impl Into<String>, value: impl Into<String>) -> Self {
        Condition::TextEquals { key: key.into(), value: value.into() }
    }

    /// Shorthand for [`Condition::NumberAtLeast`].
    pub fn number_at_least(key: impl Into<String>, threshold: f64) -> Self {
        Condition::NumberAtLeast { key: key.into(), threshold }
    }

    /// Shorthand for [`Condition::NumberBelow`].
    pub fn number_below(key: impl Into<String>, threshold: f64) -> Self {
        Condition::NumberBelow { key: key.into(), threshold }
    }

    /// Shorthand for [`Condition::WithinTime`].
    pub fn within_time(start_millis: u64, end_millis: u64) -> Self {
        Condition::WithinTime { start_millis, end_millis }
    }

    /// Conjunction with another condition.
    pub fn and(self, other: Condition) -> Self {
        match self {
            Condition::All(mut v) => {
                v.push(other);
                Condition::All(v)
            }
            c => Condition::All(vec![c, other]),
        }
    }

    /// Disjunction with another condition.
    pub fn or(self, other: Condition) -> Self {
        match self {
            Condition::Any(mut v) => {
                v.push(other);
                Condition::Any(v)
            }
            c => Condition::Any(vec![c, other]),
        }
    }

    /// Negation.
    pub fn negate(self) -> Self {
        Condition::Not(Box::new(self))
    }

    /// Evaluates the condition against a context snapshot at simulated time `now`.
    pub fn evaluate(&self, snapshot: &ContextSnapshot, now: Timestamp) -> bool {
        match self {
            Condition::Always => true,
            Condition::Never => false,
            Condition::IsTrue { key } => snapshot.is_true(key),
            Condition::IsFalse { key } => !snapshot.is_true(key),
            Condition::TextEquals { key, value } => snapshot
                .get_name(key)
                .and_then(ContextValue::as_text)
                .map(|t| t == value)
                .unwrap_or(false),
            Condition::NumberAtLeast { key, threshold } => snapshot
                .get_name(key)
                .and_then(ContextValue::as_number)
                .map(|n| n >= *threshold)
                .unwrap_or(false),
            Condition::NumberBelow { key, threshold } => snapshot
                .get_name(key)
                .and_then(ContextValue::as_number)
                .map(|n| n < *threshold)
                .unwrap_or(false),
            Condition::WithinTime { start_millis, end_millis } => {
                now.as_millis() >= *start_millis && now.as_millis() < *end_millis
            }
            Condition::Not(inner) => !inner.evaluate(snapshot, now),
            Condition::All(cs) => cs.iter().all(|c| c.evaluate(snapshot, now)),
            Condition::Any(cs) => cs.iter().any(|c| c.evaluate(snapshot, now)),
        }
    }

    /// Whether any part of this condition depends on the evaluation time
    /// ([`Condition::WithinTime`]). Time-dependent conditions cannot be cached by
    /// context-keyed decision caches ([`crate::AcDecisionCache`]): their outcome can
    /// change without any context key changing.
    pub fn is_time_dependent(&self) -> bool {
        match self {
            Condition::WithinTime { .. } => true,
            Condition::Always
            | Condition::Never
            | Condition::IsTrue { .. }
            | Condition::IsFalse { .. }
            | Condition::TextEquals { .. }
            | Condition::NumberAtLeast { .. }
            | Condition::NumberBelow { .. } => false,
            Condition::Not(inner) => inner.is_time_dependent(),
            Condition::All(cs) | Condition::Any(cs) => cs.iter().any(Condition::is_time_dependent),
        }
    }

    /// The context keys this condition references (used for conflict detection and for
    /// subscribing the engine to relevant context changes only).
    pub fn referenced_keys(&self) -> Vec<&str> {
        match self {
            Condition::Always | Condition::Never | Condition::WithinTime { .. } => Vec::new(),
            Condition::IsTrue { key }
            | Condition::IsFalse { key }
            | Condition::TextEquals { key, .. }
            | Condition::NumberAtLeast { key, .. }
            | Condition::NumberBelow { key, .. } => vec![key.as_str()],
            Condition::Not(inner) => inner.referenced_keys(),
            Condition::All(cs) | Condition::Any(cs) => {
                cs.iter().flat_map(|c| c.referenced_keys()).collect()
            }
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Always => write!(f, "true"),
            Condition::Never => write!(f, "false"),
            Condition::IsTrue { key } => write!(f, "{key}"),
            Condition::IsFalse { key } => write!(f, "!{key}"),
            Condition::TextEquals { key, value } => write!(f, "{key} == \"{value}\""),
            Condition::NumberAtLeast { key, threshold } => write!(f, "{key} >= {threshold}"),
            Condition::NumberBelow { key, threshold } => write!(f, "{key} < {threshold}"),
            Condition::WithinTime { start_millis, end_millis } => {
                write!(f, "time in [{start_millis}, {end_millis})")
            }
            Condition::Not(inner) => write!(f, "!({inner})"),
            Condition::All(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Condition::Any(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn snap() -> ContextSnapshot {
        ContextSnapshot::from_pairs([
            ("emergency.active", ContextValue::Bool(true)),
            ("nurse.on-shift", ContextValue::Bool(false)),
            ("patient.heart-rate", ContextValue::Integer(150)),
            ("patient.ward", ContextValue::Text("ward-3".into())),
        ])
    }

    #[test]
    fn primitive_conditions() {
        let s = snap();
        let t = Timestamp(100);
        assert!(Condition::Always.evaluate(&s, t));
        assert!(!Condition::Never.evaluate(&s, t));
        assert!(Condition::is_true("emergency.active").evaluate(&s, t));
        assert!(!Condition::is_true("nurse.on-shift").evaluate(&s, t));
        assert!(Condition::is_false("nurse.on-shift").evaluate(&s, t));
        assert!(Condition::is_false("missing-key").evaluate(&s, t));
        assert!(Condition::text_equals("patient.ward", "ward-3").evaluate(&s, t));
        assert!(!Condition::text_equals("patient.ward", "ward-4").evaluate(&s, t));
        assert!(!Condition::text_equals("missing", "x").evaluate(&s, t));
        assert!(Condition::number_at_least("patient.heart-rate", 120.0).evaluate(&s, t));
        assert!(!Condition::number_at_least("patient.heart-rate", 151.0).evaluate(&s, t));
        assert!(Condition::number_below("patient.heart-rate", 200.0).evaluate(&s, t));
        assert!(!Condition::number_below("missing", 200.0).evaluate(&s, t));
    }

    #[test]
    fn time_window_condition() {
        let s = snap();
        let c = Condition::within_time(100, 200);
        assert!(!c.evaluate(&s, Timestamp(99)));
        assert!(c.evaluate(&s, Timestamp(100)));
        assert!(c.evaluate(&s, Timestamp(199)));
        assert!(!c.evaluate(&s, Timestamp(200)));
    }

    #[test]
    fn combinators() {
        let s = snap();
        let t = Timestamp::ZERO;
        let c = Condition::is_true("emergency.active")
            .and(Condition::number_at_least("patient.heart-rate", 120.0));
        assert!(c.evaluate(&s, t));
        let c2 = Condition::is_true("nurse.on-shift").or(Condition::is_true("emergency.active"));
        assert!(c2.evaluate(&s, t));
        assert!(!Condition::is_true("emergency.active").negate().evaluate(&s, t));
        // Empty All is true; empty Any is false.
        assert!(Condition::All(vec![]).evaluate(&s, t));
        assert!(!Condition::Any(vec![]).evaluate(&s, t));
        // Chaining `and`/`or` flattens into the same variant.
        let chained =
            Condition::is_true("a").and(Condition::is_true("b")).and(Condition::is_true("c"));
        match chained {
            Condition::All(v) => assert_eq!(v.len(), 3),
            other => panic!("expected All, got {other:?}"),
        }
        let chained =
            Condition::is_true("a").or(Condition::is_true("b")).or(Condition::is_true("c"));
        match chained {
            Condition::Any(v) => assert_eq!(v.len(), 3),
            other => panic!("expected Any, got {other:?}"),
        }
    }

    #[test]
    fn time_dependence_is_detected_through_combinators() {
        assert!(Condition::within_time(0, 10).is_time_dependent());
        assert!(Condition::is_true("a").and(Condition::within_time(0, 10)).is_time_dependent());
        assert!(Condition::within_time(0, 10).negate().is_time_dependent());
        assert!(!Condition::is_true("a")
            .and(Condition::number_below("b", 1.0))
            .is_time_dependent());
        assert!(!Condition::Always.is_time_dependent());
        assert!(!Condition::Never.is_time_dependent());
    }

    #[test]
    fn referenced_keys_collects_all() {
        let c = Condition::is_true("a")
            .and(Condition::number_at_least("b", 1.0))
            .and(Condition::text_equals("c", "x").negate())
            .or(Condition::within_time(0, 10));
        let mut keys = c.referenced_keys();
        keys.sort_unstable();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn display_renders_expression() {
        let c = Condition::is_true("emergency.active")
            .and(Condition::number_at_least("hr", 120.0).negate());
        let s = c.to_string();
        assert!(s.contains("emergency.active"));
        assert!(s.contains("&&"));
        assert!(s.contains("!("));
        let any = Condition::is_true("a").or(Condition::is_false("b"));
        assert!(any.to_string().contains("||"));
        assert!(Condition::within_time(1, 2).to_string().contains("time in"));
    }

    proptest! {
        /// Negation is an involution and De Morgan holds for the evaluator.
        #[test]
        fn prop_negation_and_de_morgan(flag_a in proptest::bool::ANY, flag_b in proptest::bool::ANY) {
            let snap = ContextSnapshot::from_pairs([("a", flag_a), ("b", flag_b)]);
            let t = Timestamp::ZERO;
            let a = Condition::is_true("a");
            let b = Condition::is_true("b");
            prop_assert_eq!(
                a.clone().negate().negate().evaluate(&snap, t),
                a.clone().evaluate(&snap, t)
            );
            let lhs = a.clone().and(b.clone()).negate().evaluate(&snap, t);
            let rhs = a.clone().negate().or(b.clone().negate()).evaluate(&snap, t);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
