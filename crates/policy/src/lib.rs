//! # legaliot-policy
//!
//! The policy model and engine for policy-driven IoT middleware (§3.1, §5, §8.1 of
//! Singh et al., Middleware 2016).
//!
//! "Policy encapsulates a set of concerns, defining the actions to take in particular
//! circumstances to effect some outcome." In this reproduction:
//!
//! * [`condition`] — boolean condition expressions over [`legaliot_context`] snapshots
//!   (attribute comparisons, presence, time windows, conjunction/disjunction/negation);
//! * [`action`] — the reconfiguration vocabulary: label/privilege changes, channel
//!   establishment/teardown, routing through sanitisers, isolation, alerts
//!   (§5.2 "Dynamic, context-aware reconfiguration");
//! * [`cache`] — context-keyed caching of contextual AC decisions, invalidated through
//!   [`legaliot_context::ContextStore`] subscriptions when a referenced key changes;
//! * [`eca`] — Event–Condition–Action rules and the events that trigger them;
//! * [`engine`] — the policy engine: holds a rule set, watches context, and emits
//!   reconfiguration commands (Fig. 7's "application-aware policy engine");
//! * [`conflict`] — conflict detection and resolution across federated authorities
//!   (Challenge 4), with priority, specificity and deny/permit-overrides strategies;
//! * [`breakglass`] — break-glass overrides with expiry and mandatory justification
//!   (§3 Concern 6);
//! * [`template`] — authoring templates that compile common legal obligations
//!   (geo-fencing, consent, retention, anonymise-before-analytics) into rules;
//! * [`ontology`] — a small term ontology for tag/context vocabularies (Challenge 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod breakglass;
pub mod cache;
pub mod condition;
pub mod conflict;
pub mod eca;
pub mod engine;
pub mod ontology;
pub mod template;

pub use action::{Action, ReconfigurationCommand};
pub use breakglass::{BreakGlass, BreakGlassState};
pub use cache::{AcCacheStats, AcDecisionCache};
pub use condition::Condition;
pub use conflict::{ConflictReport, ConflictResolver, ResolutionStrategy};
pub use eca::{PolicyEvent, PolicyId, PolicyPriority, PolicyRule};
pub use engine::{EngineOutcome, PolicyEngine};
pub use ontology::{Ontology, TermRelation};
pub use template::PolicyTemplate;
