//! The policy engine.
//!
//! "We envisage policy engines, entities that encapsulate a range of related policies,
//! monitor environments and use the MW's remote-reconfiguration functionality to issue
//! instructions to components, when/where necessary, to ensure system behaviour remains
//! appropriate over time" (§8.1). The engine here holds a rule set, is fed events (and a
//! context snapshot), and returns the reconfiguration commands to apply. Applying the
//! commands is the middleware's job (`legaliot-middleware`), which keeps the engine
//! purely functional and easy to test and benchmark (experiment E7/E15).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use legaliot_context::{ContextSnapshot, Timestamp};

use crate::action::ReconfigurationCommand;
use crate::conflict::{ConflictResolver, ResolutionStrategy};
use crate::eca::{PolicyEvent, PolicyId, PolicyRule};

/// The result of evaluating one event against the engine's rule set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineOutcome {
    /// The rules whose trigger matched and condition held.
    pub fired: Vec<PolicyId>,
    /// The rules whose trigger matched but condition did not hold.
    pub suppressed: Vec<PolicyId>,
    /// The reconfiguration commands to apply, after conflict resolution.
    pub commands: Vec<ReconfigurationCommand>,
    /// Whether conflict resolution removed any commands.
    pub conflicts_resolved: usize,
}

impl EngineOutcome {
    /// Whether nothing fired.
    pub fn is_quiescent(&self) -> bool {
        self.fired.is_empty()
    }
}

/// A policy engine holding a set of rules for one administrative authority (or a
/// federation of them, with conflicts resolved by the configured strategy).
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    name: String,
    rules: BTreeMap<PolicyId, PolicyRule>,
    resolver: ConflictResolver,
}

impl PolicyEngine {
    /// Creates an engine with the default (priority, then deny-overrides) resolution.
    pub fn new(name: impl Into<String>) -> Self {
        PolicyEngine {
            name: name.into(),
            rules: BTreeMap::new(),
            resolver: ConflictResolver::new(ResolutionStrategy::PriorityThenDenyOverrides),
        }
    }

    /// Creates an engine with an explicit conflict-resolution strategy.
    pub fn with_strategy(name: impl Into<String>, strategy: ResolutionStrategy) -> Self {
        PolicyEngine {
            name: name.into(),
            rules: BTreeMap::new(),
            resolver: ConflictResolver::new(strategy),
        }
    }

    /// The engine's name (used as the issuing authority on commands it produces when a
    /// rule does not carry its own authority).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds (or replaces) a rule. Returns the previous rule with the same id, if any.
    pub fn add_rule(&mut self, rule: PolicyRule) -> Option<PolicyRule> {
        self.rules.insert(rule.id.clone(), rule)
    }

    /// Removes a rule by id.
    pub fn remove_rule(&mut self, id: &PolicyId) -> Option<PolicyRule> {
        self.rules.remove(id)
    }

    /// The number of rules held.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Looks up a rule.
    pub fn rule(&self, id: &PolicyId) -> Option<&PolicyRule> {
        self.rules.get(id)
    }

    /// Iterates over all rules.
    pub fn rules(&self) -> impl Iterator<Item = &PolicyRule> + '_ {
        self.rules.values()
    }

    /// The conflict resolver in use.
    pub fn resolver(&self) -> &ConflictResolver {
        &self.resolver
    }

    /// Evaluates an event against the rule set under the given context snapshot.
    ///
    /// Rules whose trigger matches the event have their condition evaluated; the actions
    /// of all firing rules are expanded into commands, then passed through conflict
    /// resolution.
    pub fn evaluate(
        &self,
        event: &PolicyEvent,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> EngineOutcome {
        let mut fired = Vec::new();
        let mut suppressed = Vec::new();
        let mut firing_rules: Vec<&PolicyRule> = Vec::new();
        for rule in self.rules.values() {
            if !rule.triggered_by(event) {
                continue;
            }
            if rule.condition.evaluate(snapshot, now) {
                fired.push(rule.id.clone());
                firing_rules.push(rule);
            } else {
                suppressed.push(rule.id.clone());
            }
        }

        let raw_commands: Vec<ReconfigurationCommand> = firing_rules
            .iter()
            .flat_map(|rule| {
                rule.actions.iter().map(|action| {
                    ReconfigurationCommand::new(
                        rule.id.as_str(),
                        rule.authority.clone(),
                        action.clone(),
                        now.as_millis(),
                    )
                })
            })
            .collect();

        let before = raw_commands.len();
        let commands = self.resolver.resolve(&firing_rules, raw_commands);
        let conflicts_resolved = before - commands.len();

        EngineOutcome { fired, suppressed, commands, conflicts_resolved }
    }

    /// Evaluates a batch of events in order against the same snapshot, concatenating
    /// commands (used by the middleware when draining a queue of changes).
    pub fn evaluate_all(
        &self,
        events: &[PolicyEvent],
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> Vec<EngineOutcome> {
        events.iter().map(|e| self.evaluate(e, snapshot, now)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::condition::Condition;
    use crate::eca::PolicyPriority;
    use legaliot_context::ContextSnapshot;

    fn emergency_rule() -> PolicyRule {
        PolicyRule::builder("emergency-response", "hospital")
            .on_context_key("patient.heart-rate")
            .when(Condition::number_at_least("patient.heart-rate", 180.0))
            .then(Action::Notify {
                recipient: "emergency-doctor".into(),
                message: "cardiac emergency".into(),
            })
            .then(Action::Actuate {
                component: "ann-sensor".into(),
                command: "sample-interval=1s".into(),
            })
            .then(Action::Connect { from: "ann-analyser".into(), to: "emergency-doctor".into() })
            .priority(PolicyPriority::EMERGENCY)
            .build()
    }

    fn quiet_rule() -> PolicyRule {
        PolicyRule::builder("night-quiet", "ann")
            .on_context_key("patient.heart-rate")
            .when(Condition::number_below("patient.heart-rate", 100.0))
            .then(Action::Actuate {
                component: "ann-sensor".into(),
                command: "sample-interval=60s".into(),
            })
            .build()
    }

    #[test]
    fn rules_fire_when_triggered_and_condition_holds() {
        let mut engine = PolicyEngine::new("hospital-engine");
        engine.add_rule(emergency_rule());
        engine.add_rule(quiet_rule());
        assert_eq!(engine.rule_count(), 2);

        let snap = ContextSnapshot::from_pairs([("patient.heart-rate", 190i64)]);
        let event = PolicyEvent::ContextChanged { key: "patient.heart-rate".into() };
        let outcome = engine.evaluate(&event, &snap, Timestamp(5));
        assert_eq!(outcome.fired, vec![PolicyId::new("emergency-response")]);
        assert_eq!(outcome.suppressed, vec![PolicyId::new("night-quiet")]);
        assert_eq!(outcome.commands.len(), 3);
        assert!(!outcome.is_quiescent());
        assert!(outcome.commands.iter().all(|c| c.issued_by_policy == "emergency-response"));
        assert!(outcome.commands.iter().all(|c| c.issued_at_millis == 5));
    }

    #[test]
    fn unrelated_events_do_not_trigger() {
        let mut engine = PolicyEngine::new("e");
        engine.add_rule(emergency_rule());
        let snap = ContextSnapshot::from_pairs([("patient.heart-rate", 190i64)]);
        let event = PolicyEvent::ContextChanged { key: "unrelated.key".into() };
        let outcome = engine.evaluate(&event, &snap, Timestamp::ZERO);
        assert!(outcome.is_quiescent());
        assert!(outcome.commands.is_empty());
        assert!(outcome.suppressed.is_empty());
    }

    #[test]
    fn add_remove_and_lookup_rules() {
        let mut engine = PolicyEngine::new("e");
        assert!(engine.add_rule(quiet_rule()).is_none());
        // Replacing returns the old rule.
        assert!(engine.add_rule(quiet_rule()).is_some());
        assert!(engine.rule(&PolicyId::new("night-quiet")).is_some());
        assert_eq!(engine.rules().count(), 1);
        assert!(engine.remove_rule(&PolicyId::new("night-quiet")).is_some());
        assert!(engine.remove_rule(&PolicyId::new("night-quiet")).is_none());
        assert_eq!(engine.rule_count(), 0);
        assert_eq!(engine.name(), "e");
    }

    #[test]
    fn conflicting_actuations_resolved_by_priority() {
        // Both rules target the same sensor with different sampling commands; the
        // emergency rule has higher priority and must win.
        let mut engine = PolicyEngine::new("e");
        engine.add_rule(emergency_rule());
        // Make the quiet rule also fire by widening its condition.
        let mut contradictory = quiet_rule();
        contradictory.condition = Condition::Always;
        engine.add_rule(contradictory);

        let snap = ContextSnapshot::from_pairs([("patient.heart-rate", 200i64)]);
        let event = PolicyEvent::ContextChanged { key: "patient.heart-rate".into() };
        let outcome = engine.evaluate(&event, &snap, Timestamp::ZERO);
        assert_eq!(outcome.fired.len(), 2);
        assert!(outcome.conflicts_resolved >= 1);
        let actuations: Vec<&ReconfigurationCommand> = outcome
            .commands
            .iter()
            .filter(|c| matches!(c.action, Action::Actuate { .. }))
            .collect();
        assert_eq!(actuations.len(), 1);
        assert_eq!(actuations[0].issued_by_policy, "emergency-response");
    }

    #[test]
    fn evaluate_all_processes_each_event() {
        let mut engine = PolicyEngine::new("e");
        engine.add_rule(emergency_rule());
        let snap = ContextSnapshot::from_pairs([("patient.heart-rate", 190i64)]);
        let events = vec![
            PolicyEvent::ContextChanged { key: "patient.heart-rate".into() },
            PolicyEvent::Tick,
        ];
        let outcomes = engine.evaluate_all(&events, &snap, Timestamp::ZERO);
        assert_eq!(outcomes.len(), 2);
        assert!(!outcomes[0].is_quiescent());
        assert!(outcomes[1].is_quiescent());
    }

    #[test]
    fn tick_rules_fire_on_tick() {
        let mut engine = PolicyEngine::new("e");
        engine.add_rule(
            PolicyRule::builder("audit-heartbeat", "operator")
                .on_tick()
                .then(Action::Notify { recipient: "auditor".into(), message: "alive".into() })
                .build(),
        );
        let outcome =
            engine.evaluate(&PolicyEvent::Tick, &ContextSnapshot::default(), Timestamp::ZERO);
        assert_eq!(outcome.fired.len(), 1);
        assert_eq!(outcome.commands.len(), 1);
    }
}
