//! Torn-write corpus: exhaustively truncate the final segment at **every byte
//! boundary**, and bit-flip every byte of its frame region, then prove that
//! [`SegmentStore::recover`] never panics, always yields a verified chain
//! prefix of the original record stream, reports a truncation exactly when the
//! cut landed mid-frame, and is idempotent (a second recovery of the repaired
//! directory is clean).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use legaliot_audit::{AuditEvent, AuditLog, AuditRecord, SegmentStore};
use proptest::prelude::*;

/// Segment header length (magic + version + sequence + anchor), mirrored from
/// the documented on-disk format.
const HEADER_LEN: usize = 24;
/// Frame prefix length (length u32 + checksum u64), mirrored likewise.
const FRAME_PREFIX_LEN: usize = 12;

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQUE: AtomicUsize = AtomicUsize::new(0);
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("legaliot-torn-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_records(n: usize) -> Vec<AuditRecord> {
    let mut log = AuditLog::new("shard-0");
    for i in 0..n {
        log.record(
            AuditEvent::PolicyFired { policy: format!("p{i}"), trigger: "t".into(), actions: i },
            i as u64,
        );
    }
    log.records().to_vec()
}

/// Writes `records` into `dir` at 4 records per segment and returns the final
/// segment's path, its pristine bytes, and the record count in earlier segments.
fn build_corpus(dir: &Path, records: &[AuditRecord]) -> (PathBuf, Vec<u8>, usize) {
    let mut store = SegmentStore::create(dir, 0, 4).unwrap();
    for record in records {
        assert!(store.append(record));
    }
    assert!(store.seal());
    let mut segments: Vec<PathBuf> =
        std::fs::read_dir(dir).unwrap().map(|entry| entry.unwrap().path()).collect();
    segments.sort();
    let last = segments.pop().unwrap();
    let pristine = std::fs::read(&last).unwrap();
    let earlier = records.len() - (records.len() - 1) % 4 - 1;
    (last, pristine, earlier)
}

/// Byte offsets in a pristine segment at which a cut leaves a *clean* file:
/// the header boundary and the end of every complete frame. A cut anywhere
/// else is a torn tail and must be reported.
fn clean_boundaries(pristine: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![HEADER_LEN];
    let mut offset = HEADER_LEN;
    while offset < pristine.len() {
        let len = u32::from_le_bytes(pristine[offset..offset + 4].try_into().unwrap()) as usize;
        offset += FRAME_PREFIX_LEN + len;
        boundaries.push(offset);
    }
    assert_eq!(offset, pristine.len(), "pristine segment parses exactly");
    boundaries
}

/// Complete frames that survive in a file cut to `cut` bytes.
fn frames_before(boundaries: &[usize], cut: usize) -> usize {
    boundaries.iter().skip(1).filter(|end| **end <= cut).count()
}

/// One recovery run over the corpus directory with the final segment replaced
/// by `bytes`; asserts the recovered stream is exactly `records[..expected]`
/// with an intact chain, and returns the number of reported truncations.
fn recover_and_check(
    dir: &Path,
    last: &Path,
    bytes: &[u8],
    records: &[AuditRecord],
    expected: usize,
    ctx: &str,
) -> usize {
    std::fs::write(last, bytes).unwrap();
    let report = SegmentStore::recover(dir).unwrap_or_else(|e| panic!("recover failed {ctx}: {e}"));
    assert!(report.chain.is_intact(), "chain must verify {ctx}: {:?}", report.chain);
    assert_eq!(report.records.len(), expected, "prefix length {ctx}");
    assert_eq!(report.records, records[..expected], "recovered prefix diverged {ctx}");
    let head = records[..expected].last().map(|r| r.hash).unwrap_or(0);
    assert_eq!(report.head_hash, head, "resume anchor {ctx}");
    assert_eq!(report.next_id, expected as u64, "resume id {ctx}");

    // A log resumed from the report extends the same verifiable chain.
    let mut resumed = report.resume_log("shard-0");
    resumed.record(
        AuditEvent::PolicyFired { policy: "resumed".into(), trigger: "t".into(), actions: 0 },
        999,
    );
    let mut combined = report.records.clone();
    combined.extend(resumed.records().iter().cloned());
    assert!(
        AuditLog::verify_records(report.initial_anchor, &combined).is_intact(),
        "resumed chain must verify {ctx}"
    );

    // Idempotence: recovery repaired the directory, so a second pass is clean
    // and sees the identical stream.
    let again = SegmentStore::recover(dir).unwrap();
    assert!(again.truncations.is_empty(), "second recovery must be clean {ctx}");
    assert_eq!(again.records, report.records, "second recovery diverged {ctx}");

    report.truncations.len()
}

/// Exhaustive cut corpus: truncate the final segment at every byte boundary.
#[test]
fn every_truncation_point_recovers_a_verified_prefix() {
    let dir = temp_dir("cuts");
    let records = sample_records(10);
    let (last, pristine, earlier) = build_corpus(&dir, &records);
    let boundaries = clean_boundaries(&pristine);

    for cut in 0..=pristine.len() {
        let ctx = format!("[cut={cut} of {}]", pristine.len());
        let expected = earlier + frames_before(&boundaries, cut);
        let truncations =
            recover_and_check(&dir, &last, &pristine[..cut], &records, expected, &ctx);
        // A cut exactly at a frame (or header) boundary is indistinguishable
        // from a shorter clean segment; a zero-length file holds nothing by
        // construction. Everything else is a torn tail and must be reported.
        let torn = cut != 0 && !boundaries.contains(&cut);
        assert_eq!(truncations > 0, torn, "truncation reported iff the cut landed mid-frame {ctx}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Exhaustive corruption corpus: flip one bit in every byte of the final
/// segment's frame region. The checksum (or chain/decode check) must reject
/// the frame, recovery must report the loss, and the surviving records must
/// still be an exact verified prefix.
#[test]
fn every_single_bit_corruption_recovers_a_verified_prefix() {
    let dir = temp_dir("flips");
    let records = sample_records(10);
    let (last, pristine, earlier) = build_corpus(&dir, &records);
    let boundaries = clean_boundaries(&pristine);

    for offset in HEADER_LEN..pristine.len() {
        let ctx = format!("[flip at byte {offset}]");
        let mut corrupt = pristine.clone();
        corrupt[offset] ^= 0x10;
        // The corrupted frame and everything after it in this file is lost;
        // every frame wholly before the flipped byte survives.
        let expected = earlier + frames_before(&boundaries, offset);
        let truncations = recover_and_check(&dir, &last, &corrupt, &records, expected, &ctx);
        assert!(truncations > 0, "corruption must be reported {ctx}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    /// Randomised combination of a cut and a bit flip below it: recovery still
    /// never panics, yields an exact verified prefix, and reports the damage.
    #[test]
    fn random_cut_plus_flip_recovers_a_verified_prefix(
        cut in 0usize..4096,
        flip in 0usize..4096,
        bit in 0u8..8,
    ) {
        let dir = temp_dir("prop");
        let records = sample_records(10);
        let (last, pristine, earlier) = build_corpus(&dir, &records);
        let boundaries = clean_boundaries(&pristine);

        let cut = cut % (pristine.len() + 1);
        let mut bytes = pristine[..cut].to_vec();
        let flipped = if bytes.len() > HEADER_LEN {
            let flip = HEADER_LEN + flip % (bytes.len() - HEADER_LEN);
            bytes[flip] ^= 1 << bit;
            Some(flip)
        } else {
            None
        };
        let survives = match flipped {
            Some(flip) => frames_before(&boundaries, flip.min(cut)),
            None => frames_before(&boundaries, cut),
        };
        let expected = earlier + survives;
        let ctx = format!("[cut={cut} flip={flipped:?} bit={bit}]");
        recover_and_check(&dir, &last, &bytes, &records, expected, &ctx);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
