//! Crash-safe on-disk segments for retained-out audit records.
//!
//! In-memory retention ([`crate::AuditLog::retain_recent`]) keeps enforcement points
//! bounded, but pruned history used to be simply dropped — and a process crash lost
//! every record still in RAM. A [`SegmentStore`] makes the pruned history durable:
//! records stream into append-only segment files of length-prefixed, checksummed
//! frames, and each segment's header carries the previous segment's anchor hash, so
//! the on-disk prefix and the in-memory suffix verify as **one** hash chain
//! ([`crate::AuditLog::verify_records`] over their concatenation).
//!
//! # On-disk format
//!
//! ```text
//! segment-00000003.seg
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (24 bytes)                                            │
//! │   magic  b"LGAS"          4 bytes                            │
//! │   version u32 LE          4 bytes                            │
//! │   sequence u64 LE         8 bytes  (must match the filename) │
//! │   anchor  u64 LE          8 bytes  (hash the first frame's   │
//! │                                     record chains from)      │
//! ├──────────────────────────────────────────────────────────────┤
//! │ frame 0                                                      │
//! │   len      u32 LE         4 bytes  (payload length)          │
//! │   checksum u64 LE         8 bytes  (FNV-1a 64 of payload)    │
//! │   payload  len bytes      (JSON-serialised [`AuditRecord`])  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ frame 1 … frame N                                            │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! # Crash model and recovery
//!
//! Writes can tear: a crash mid-frame leaves a short or checksum-corrupt tail.
//! [`SegmentStore::recover`] scans a directory, truncates each torn tail back to the
//! last complete, checksum-clean, chain-linked frame, and reports **exactly** what
//! was discarded ([`Truncation`]) — a loss is never silent. After the first injected
//! or real IO failure the store *wedges*: subsequent appends are counted
//! ([`SegmentStats::records_dropped`]) rather than written, modelling a crashed
//! process whose disk state stays a clean prefix.
//!
//! Fault injection is pluggable via [`FaultHook`] so the store stays decoupled from
//! any particular failpoint registry: the hook is consulted before every write, fsync
//! and rotation and may demand a short write, a hard error or a delay.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::event::AuditRecord;
use crate::log::{AuditLog, ChainVerification};

/// Magic bytes opening every segment file.
const MAGIC: [u8; 4] = *b"LGAS";
/// On-disk format version.
const VERSION: u32 = 1;
/// Fixed header length: magic + version + sequence + anchor.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;
/// Per-frame prefix length: payload length + checksum.
const FRAME_PREFIX_LEN: usize = 4 + 8;
/// Upper bound on a frame payload; anything larger is treated as corruption.
const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// FNV-1a 64 over the frame payload.
fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The IO operation a [`FaultHook`] is consulted about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Appending a record frame to the current segment.
    Write,
    /// Fsyncing the current segment.
    Sync,
    /// Opening a new segment file (initial open and every rotation).
    Rotate,
}

/// A fault a [`FaultHook`] can demand for an [`IoOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Write only part of the bytes, then wedge the store — leaves a torn tail on
    /// disk, exactly what [`SegmentStore::recover`] must truncate.
    ShortWrite,
    /// Fail the operation outright and wedge the store (disk stays a clean prefix).
    Error,
    /// Delay the operation (e.g. a slow fsync), then proceed normally.
    Delay(Duration),
}

/// Pluggable fault injection, consulted before every segment IO operation. Returning
/// `None` lets the operation proceed.
pub type FaultHook = Box<dyn FnMut(IoOp) -> Option<IoFault> + Send>;

/// Log2-bucketed fsync latency histogram. Self-contained (the audit crate has no
/// dependency on `legaliot-obs`) so the store can report `fsync_p99_ns` to benches
/// and stats surfaces on its own.
#[derive(Clone, PartialEq, Eq)]
pub struct FsyncHistogram {
    buckets: [u64; 64],
    count: u64,
    max_ns: u64,
}

impl Default for FsyncHistogram {
    fn default() -> Self {
        FsyncHistogram { buckets: [0; 64], count: 0, max_ns: 0 }
    }
}

impl fmt::Debug for FsyncHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FsyncHistogram")
            .field("count", &self.count)
            .field("p99_ns", &self.p99_ns())
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

impl FsyncHistogram {
    fn record(&mut self, ns: u64) {
        let bucket = if ns == 0 { 0 } else { (64 - ns.leading_zeros()) as usize - 1 };
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of fsyncs recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The slowest fsync observed, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Conservative (upper-bound) 99th-percentile fsync latency in nanoseconds;
    /// 0 when nothing was recorded.
    pub fn p99_ns(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * 99).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i holds values in [2^i, 2^(i+1)); report its upper bound,
                // clamped by the true maximum.
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &FsyncHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Counters describing one store's (or several merged stores') segment IO.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segment files opened (including the currently open one).
    pub segments_written: u64,
    /// Segment files sealed (synced and closed) cleanly.
    pub segments_sealed: u64,
    /// Record frames written completely.
    pub records_persisted: u64,
    /// Total bytes written (headers + complete frames).
    pub bytes_written: u64,
    /// Bytes covered by a successful fsync.
    pub bytes_fsynced: u64,
    /// Bytes written but not yet (or never) fsynced — non-zero after an unclean
    /// teardown.
    pub unsynced_bytes: u64,
    /// Records the store *dropped* because it was wedged by an earlier fault. Never
    /// silent: this is the store-side count of unpersisted history.
    pub records_dropped: u64,
    /// Fsync latency distribution.
    pub fsync: FsyncHistogram,
}

impl SegmentStats {
    /// Folds another store's stats into this one (for per-shard aggregation).
    pub fn merge(&mut self, other: &SegmentStats) {
        self.segments_written += other.segments_written;
        self.segments_sealed += other.segments_sealed;
        self.records_persisted += other.records_persisted;
        self.bytes_written += other.bytes_written;
        self.bytes_fsynced += other.bytes_fsynced;
        self.unsynced_bytes += other.unsynced_bytes;
        self.records_dropped += other.records_dropped;
        self.fsync.merge(&other.fsync);
    }
}

/// An append-only store of audit records in checksummed, chain-anchored segment
/// files. See the [module docs](self) for the format and crash model.
pub struct SegmentStore {
    dir: PathBuf,
    max_segment_records: usize,
    file: Option<File>,
    next_sequence: u64,
    records_in_segment: usize,
    head_hash: u64,
    wedged: Option<String>,
    stats: SegmentStats,
    hook: Option<FaultHook>,
}

impl fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentStore")
            .field("dir", &self.dir)
            .field("next_sequence", &self.next_sequence)
            .field("head_hash", &self.head_hash)
            .field("wedged", &self.wedged)
            .field("stats", &self.stats)
            .field("hook", &self.hook.is_some())
            .finish()
    }
}

fn segment_file_name(sequence: u64) -> String {
    format!("segment-{sequence:08}.seg")
}

fn parse_segment_sequence(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("segment-")?.strip_suffix(".seg")?;
    rest.parse().ok()
}

fn encode_header(sequence: u64, anchor: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..8].copy_from_slice(&VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&sequence.to_le_bytes());
    header[16..24].copy_from_slice(&anchor.to_le_bytes());
    header
}

impl SegmentStore {
    /// Opens a store writing new segments into `dir` (created if missing), chaining
    /// the first record from `anchor_hash`. Numbering continues after any segment
    /// files already present, so a store re-opened after [`Self::recover`] appends —
    /// it never overwrites recovered history.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating or scanning the directory.
    pub fn create(
        dir: impl Into<PathBuf>,
        anchor_hash: u64,
        max_segment_records: usize,
    ) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut next_sequence = 0u64;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_sequence) {
                next_sequence = next_sequence.max(seq + 1);
            }
        }
        Ok(SegmentStore {
            dir,
            max_segment_records: max_segment_records.max(1),
            file: None,
            next_sequence,
            records_in_segment: 0,
            head_hash: anchor_hash,
            wedged: None,
            stats: SegmentStats::default(),
            hook: None,
        })
    }

    /// Installs a fault-injection hook consulted before every IO operation.
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.hook = Some(hook);
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Hash of the last persisted record — what the next frame (and a resumed
    /// in-memory log) chains from.
    pub fn head_hash(&self) -> u64 {
        self.head_hash
    }

    /// Whether an earlier fault wedged the store (appends are counted, not written).
    pub fn is_wedged(&self) -> bool {
        self.wedged.is_some()
    }

    /// The cause of the wedge, if any.
    pub fn wedged_cause(&self) -> Option<&str> {
        self.wedged.as_deref()
    }

    /// IO counters so far.
    pub fn stats(&self) -> &SegmentStats {
        &self.stats
    }

    fn fault(&mut self, op: IoOp) -> Option<IoFault> {
        self.hook.as_mut().and_then(|hook| hook(op))
    }

    fn wedge(&mut self, cause: String) {
        if self.wedged.is_none() {
            self.wedged = Some(cause);
        }
        self.file = None;
    }

    /// Opens the next segment file and writes its header. Wedges on fault/IO error.
    fn open_segment(&mut self) {
        match self.fault(IoOp::Rotate) {
            Some(IoFault::Delay(delay)) => std::thread::sleep(delay),
            Some(IoFault::ShortWrite) => {
                // A torn header: the new segment exists but is unusable. Recovery
                // must discard it without losing the sealed prefix.
                let path = self.dir.join(segment_file_name(self.next_sequence));
                let header = encode_header(self.next_sequence, self.head_hash);
                if let Ok(mut file) =
                    OpenOptions::new().write(true).create(true).truncate(true).open(&path)
                {
                    let _ = file.write_all(&header[..HEADER_LEN / 2]);
                }
                self.next_sequence += 1;
                self.wedge("short write injected at segment rotation".into());
                return;
            }
            Some(IoFault::Error) => {
                self.wedge("io error injected at segment rotation".into());
                return;
            }
            None => {}
        }
        let sequence = self.next_sequence;
        let path = self.dir.join(segment_file_name(sequence));
        let header = encode_header(sequence, self.head_hash);
        let result = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .and_then(|mut file| file.write_all(&header).map(|()| file));
        match result {
            Ok(file) => {
                self.file = Some(file);
                self.next_sequence = sequence + 1;
                self.records_in_segment = 0;
                self.stats.segments_written += 1;
                self.stats.bytes_written += HEADER_LEN as u64;
                self.stats.unsynced_bytes += HEADER_LEN as u64;
            }
            Err(err) => self.wedge(format!("opening {}: {err}", path.display())),
        }
    }

    /// Appends one record frame. Returns `true` when the record reached the segment
    /// file, `false` when the store is (or became) wedged — the drop is counted in
    /// [`SegmentStats::records_dropped`], never silent.
    pub fn append(&mut self, record: &AuditRecord) -> bool {
        if self.wedged.is_some() {
            self.stats.records_dropped += 1;
            return false;
        }
        if self.file.is_none() {
            self.open_segment();
            if self.wedged.is_some() {
                self.stats.records_dropped += 1;
                return false;
            }
        }
        let payload = match serde_json::to_string(record) {
            Ok(json) => json.into_bytes(),
            Err(err) => {
                self.wedge(format!("serialising record {}: {err}", record.id));
                self.stats.records_dropped += 1;
                return false;
            }
        };
        let mut frame = Vec::with_capacity(FRAME_PREFIX_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        match self.fault(IoOp::Write) {
            Some(IoFault::Delay(delay)) => std::thread::sleep(delay),
            Some(IoFault::ShortWrite) => {
                // Tear the frame: write a strict prefix, then wedge. Disk now ends in
                // a torn tail for recovery to truncate.
                let torn = &frame[..frame.len() / 2];
                if let Some(file) = self.file.as_mut() {
                    let _ = file.write_all(torn);
                    let _ = file.sync_all();
                }
                self.wedge("short write injected at segment append".into());
                self.stats.records_dropped += 1;
                return false;
            }
            Some(IoFault::Error) => {
                self.wedge("io error injected at segment append".into());
                self.stats.records_dropped += 1;
                return false;
            }
            None => {}
        }
        let result = self.file.as_mut().expect("segment open").write_all(&frame);
        if let Err(err) = result {
            self.wedge(format!("appending record {}: {err}", record.id));
            self.stats.records_dropped += 1;
            return false;
        }
        self.stats.records_persisted += 1;
        self.stats.bytes_written += frame.len() as u64;
        self.stats.unsynced_bytes += frame.len() as u64;
        self.head_hash = record.hash;
        self.records_in_segment += 1;
        if self.records_in_segment >= self.max_segment_records {
            self.rotate();
        }
        true
    }

    /// Fsyncs the current segment. Returns `true` when everything written is now
    /// durable; `false` when wedged (by this call or earlier) —
    /// [`SegmentStats::unsynced_bytes`] then stays non-zero, making the unclean state
    /// visible.
    pub fn sync(&mut self) -> bool {
        if self.wedged.is_some() {
            return false;
        }
        if self.file.is_none() {
            return true;
        }
        match self.fault(IoOp::Sync) {
            Some(IoFault::Delay(delay)) => std::thread::sleep(delay),
            Some(IoFault::Error) => {
                self.wedge("io error injected at segment fsync".into());
                return false;
            }
            // A short write makes no sense for fsync; treat it as a hard error.
            Some(IoFault::ShortWrite) => {
                self.wedge("short write injected at segment fsync".into());
                return false;
            }
            None => {}
        }
        let started = Instant::now();
        let file = self.file.as_mut().expect("segment open");
        match file.sync_all() {
            Ok(()) => {
                let elapsed = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                self.stats.fsync.record(elapsed);
                self.stats.bytes_fsynced += self.stats.unsynced_bytes;
                self.stats.unsynced_bytes = 0;
                true
            }
            Err(err) => {
                self.wedge(format!("fsync: {err}"));
                false
            }
        }
    }

    /// Seals the current segment (fsync + close); the next append opens a fresh one
    /// anchored on the sealed segment's last record. Returns `false` if the seal
    /// could not complete (wedged).
    pub fn rotate(&mut self) -> bool {
        if !self.sync() {
            return false;
        }
        if self.file.take().is_some() {
            self.stats.segments_sealed += 1;
        }
        self.records_in_segment = 0;
        true
    }

    /// Final seal at shutdown: fsyncs and closes the open segment. Idempotent.
    /// Returns `true` when the store is fully durable (no wedge, nothing unsynced).
    pub fn seal(&mut self) -> bool {
        self.rotate() && self.stats.unsynced_bytes == 0
    }

    /// Scans `dir` and rebuilds the durable record stream: reads segments in
    /// sequence order, validates headers, checksums and chain linkage frame by
    /// frame, **truncates** each torn or corrupt tail back to the last clean frame,
    /// and reports every discarded byte as a [`Truncation`]. The returned
    /// [`RecoveryReport`] carries the verified records, the hash/id to re-seat an
    /// in-memory [`AuditLog::resume`] on, and the chain verification over everything
    /// recovered.
    ///
    /// A missing directory is an empty (clean) recovery, not an error.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors reading or truncating segment files; corruption
    /// is never an error, it is a reported truncation.
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<RecoveryReport> {
        let dir = dir.as_ref();
        let mut report = RecoveryReport {
            segments: Vec::new(),
            records: Vec::new(),
            truncations: Vec::new(),
            initial_anchor: 0,
            head_hash: 0,
            next_id: 0,
            chain: ChainVerification::Intact { records: 0 },
        };
        if !dir.exists() {
            return Ok(report);
        }
        let mut files: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_sequence) {
                files.push((seq, entry.path()));
            }
        }
        files.sort();

        let mut head = 0u64;
        let mut first = true;
        let mut stopped_at: Option<u64> = None;
        for (sequence, path) in files {
            if let Some(torn_seq) = stopped_at {
                // Everything after a torn segment is chain-orphaned; report it, do
                // not silently skip (files are left untouched as evidence).
                let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                report.truncations.push(Truncation {
                    sequence,
                    path,
                    offset: 0,
                    bytes_dropped: bytes,
                    records_recovered_before: report.records.len(),
                    reason: format!("unreachable: segment {torn_seq} has a torn tail"),
                });
                continue;
            }
            let bytes = fs::read(&path)?;
            if bytes.is_empty() {
                // A zero-length file carries no records by construction: either a
                // crash between create and the header write, or the tombstone a
                // previous recovery left behind. Skipping it (instead of reporting)
                // keeps recovery idempotent while the file keeps its sequence
                // number reserved.
                continue;
            }
            let mut truncate_to: Option<(u64, String)> = None;
            let mut records_here = 0usize;

            if bytes.len() < HEADER_LEN {
                truncate_to = Some((0, "short segment header".into()));
            } else if bytes[0..4] != MAGIC {
                truncate_to = Some((0, "bad magic".into()));
            } else if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != VERSION {
                truncate_to = Some((0, "unsupported version".into()));
            } else if u64::from_le_bytes(bytes[8..16].try_into().unwrap()) != sequence {
                truncate_to = Some((0, "sequence mismatch with filename".into()));
            } else {
                let anchor = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
                if first {
                    report.initial_anchor = anchor;
                    head = anchor;
                } else if anchor != head {
                    // Unlike a bad header (which means the segment never held
                    // records), an anchor mismatch means this segment was written
                    // against history we no longer have — leave the file untouched
                    // as evidence and stop: nothing after it can chain either.
                    let dropped = bytes.len() as u64;
                    report.truncations.push(Truncation {
                        sequence,
                        path,
                        offset: 0,
                        bytes_dropped: dropped,
                        records_recovered_before: report.records.len(),
                        reason: format!("anchor {anchor:#x} does not chain from {head:#x}"),
                    });
                    stopped_at = Some(sequence);
                    continue;
                }
                if truncate_to.is_none() {
                    first = false;
                    let mut offset = HEADER_LEN;
                    while offset < bytes.len() {
                        let remaining = bytes.len() - offset;
                        if remaining < FRAME_PREFIX_LEN {
                            truncate_to = Some((offset as u64, "short frame prefix".into()));
                            break;
                        }
                        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
                        if len == 0 || len > MAX_FRAME_LEN {
                            truncate_to =
                                Some((offset as u64, format!("corrupt frame length {len}")));
                            break;
                        }
                        let len = len as usize;
                        if remaining < FRAME_PREFIX_LEN + len {
                            truncate_to = Some((offset as u64, "short frame payload".into()));
                            break;
                        }
                        let expected =
                            u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().unwrap());
                        let payload =
                            &bytes[offset + FRAME_PREFIX_LEN..offset + FRAME_PREFIX_LEN + len];
                        if checksum(payload) != expected {
                            truncate_to = Some((offset as u64, "frame checksum mismatch".into()));
                            break;
                        }
                        let record: AuditRecord = match std::str::from_utf8(payload)
                            .ok()
                            .and_then(|json| serde_json::from_str(json).ok())
                        {
                            Some(record) => record,
                            None => {
                                truncate_to = Some((offset as u64, "frame decode failure".into()));
                                break;
                            }
                        };
                        if !AuditLog::verify_records(head, std::slice::from_ref(&record))
                            .is_intact()
                        {
                            truncate_to = Some((
                                offset as u64,
                                format!("record {} breaks the chain", record.id),
                            ));
                            break;
                        }
                        head = record.hash;
                        report.next_id = record.id.0 + 1;
                        report.records.push(record);
                        records_here += 1;
                        offset += FRAME_PREFIX_LEN + len;
                    }
                }
            }

            match truncate_to {
                None => {
                    report.segments.push(SegmentSummary {
                        sequence,
                        path,
                        records: records_here,
                        bytes: bytes.len() as u64,
                    });
                }
                Some((offset, reason)) => {
                    let dropped = bytes.len() as u64 - offset;
                    OpenOptions::new().write(true).open(&path)?.set_len(offset)?;
                    if offset as usize >= HEADER_LEN {
                        // A truncated-but-headered segment still contributes its
                        // clean prefix of frames, and its tear orphans everything
                        // after it (later anchors depend on the frames just lost).
                        report.segments.push(SegmentSummary {
                            sequence,
                            path: path.clone(),
                            records: records_here,
                            bytes: offset,
                        });
                        stopped_at = Some(sequence);
                    }
                    // Header-level failures (offset 0: a rotation torn mid-header,
                    // bad magic/version) mean the segment never held a record the
                    // chain could depend on — the file becomes a zero-length
                    // tombstone and the scan continues: a later incarnation's
                    // segments still chain from `head` and must not be orphaned.
                    // If records *were* lost to bitrot here, the next segment's
                    // anchor check catches it.
                    report.truncations.push(Truncation {
                        sequence,
                        path,
                        offset,
                        bytes_dropped: dropped,
                        records_recovered_before: report.records.len(),
                        reason,
                    });
                }
            }
        }
        report.head_hash = report.records.last().map(|r| r.hash).unwrap_or(report.initial_anchor);
        report.chain = AuditLog::verify_records(report.initial_anchor, &report.records);
        Ok(report)
    }
}

/// One segment file's contribution to a recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSummary {
    /// The segment's sequence number.
    pub sequence: u64,
    /// Path of the segment file.
    pub path: PathBuf,
    /// Complete records recovered from it.
    pub records: usize,
    /// Bytes of the clean prefix (post-truncation file length).
    pub bytes: u64,
}

/// A torn or corrupt tail discarded by [`SegmentStore::recover`] — the exact,
/// reported shape of every loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truncation {
    /// Sequence of the affected segment.
    pub sequence: u64,
    /// Path of the affected segment file.
    pub path: PathBuf,
    /// Byte offset the file was truncated to (length of the surviving clean prefix).
    /// 0 covers three shapes: a header-level failure (the file becomes a zero-length
    /// tombstone and the scan continues), an anchor mismatch, or a segment that is
    /// unreachable behind a torn tail (both of the latter are reported but left
    /// untouched as evidence, and stop the scan).
    pub offset: u64,
    /// Bytes discarded (or unreachable) past the clean prefix.
    pub bytes_dropped: u64,
    /// How many records had been recovered in total when this truncation was hit.
    pub records_recovered_before: usize,
    /// Why the tail was discarded (short frame, checksum mismatch, …).
    pub reason: String,
}

/// Everything [`SegmentStore::recover`] found: the verified durable record stream
/// plus an exact account of what could not be recovered.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Per-segment summaries, sequence order, clean prefixes only.
    pub segments: Vec<SegmentSummary>,
    /// Every recovered record, chain order.
    pub records: Vec<AuditRecord>,
    /// Every discarded tail / unreachable segment. Empty for a clean shutdown.
    pub truncations: Vec<Truncation>,
    /// The anchor hash the first segment chained from.
    pub initial_anchor: u64,
    /// Hash of the last recovered record (the anchor for a resumed log and for new
    /// segments) — `initial_anchor` when nothing was recovered.
    pub head_hash: u64,
    /// The id after the last recovered record (0 when nothing was recovered) — what
    /// a resumed log should number its next record.
    pub next_id: u64,
    /// Verification of the recovered stream against `initial_anchor`. Intact by
    /// construction (recovery truncates at the first break).
    pub chain: ChainVerification,
}

impl RecoveryReport {
    /// Whether recovery found a fully clean store: nothing truncated, chain intact.
    pub fn is_clean(&self) -> bool {
        self.truncations.is_empty() && self.chain.is_intact()
    }

    /// An in-memory log resuming exactly where the durable stream ends: appending to
    /// it continues the recovered chain.
    pub fn resume_log(&self, authority: impl Into<String>) -> AuditLog {
        AuditLog::resume(authority, self.head_hash, self.next_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AuditEvent;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        static UNIQUE: AtomicUsize = AtomicUsize::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("legaliot-segment-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records(n: usize) -> Vec<AuditRecord> {
        let mut log = AuditLog::new("shard-0");
        for i in 0..n {
            log.record(
                AuditEvent::PolicyFired {
                    policy: format!("p{i}"),
                    trigger: "t".into(),
                    actions: i,
                },
                i as u64,
            );
        }
        log.records().to_vec()
    }

    #[test]
    fn roundtrip_across_rotations() {
        let dir = temp_dir("roundtrip");
        let records = sample_records(10);
        let mut store = SegmentStore::create(&dir, 0, 3).unwrap();
        for r in &records {
            assert!(store.append(r));
        }
        assert!(store.seal());
        assert_eq!(store.stats().records_persisted, 10);
        assert_eq!(store.stats().unsynced_bytes, 0);
        // 10 records at 3 per segment: segments 0..=3 written, all sealed.
        assert_eq!(store.stats().segments_written, 4);
        assert_eq!(store.stats().segments_sealed, 4);
        assert!(store.stats().fsync.count() > 0);

        let report = SegmentStore::recover(&dir).unwrap();
        assert!(report.is_clean(), "truncations: {:?}", report.truncations);
        assert_eq!(report.records, records);
        assert_eq!(report.head_hash, records.last().unwrap().hash);
        assert_eq!(report.next_id, 10);
        assert_eq!(report.segments.len(), 4);
        assert_eq!(report.segments.iter().map(|s| s.records).sum::<usize>(), 10);
        // A log resumed from the report continues the same chain.
        let mut resumed = report.resume_log("shard-0");
        resumed.record(
            AuditEvent::PolicyFired { policy: "px".into(), trigger: "t".into(), actions: 0 },
            99,
        );
        let mut combined = report.records.clone();
        combined.extend(resumed.records().iter().cloned());
        assert!(AuditLog::verify_records(report.initial_anchor, &combined).is_intact());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_of_missing_or_empty_dir_is_clean() {
        let dir = temp_dir("missing");
        let report = SegmentStore::recover(&dir).unwrap();
        assert!(report.is_clean());
        assert!(report.records.is_empty());
        assert_eq!(report.next_id, 0);
        std::fs::create_dir_all(&dir).unwrap();
        let report = SegmentStore::recover(&dir).unwrap();
        assert!(report.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_leaves_recoverable_prefix_and_reported_truncation() {
        let dir = temp_dir("shortwrite");
        let records = sample_records(6);
        let mut store = SegmentStore::create(&dir, 0, 100).unwrap();
        // Tear the 5th write.
        let calls = Arc::new(AtomicUsize::new(0));
        let hook_calls = Arc::clone(&calls);
        store.set_fault_hook(Box::new(move |op| {
            if op == IoOp::Write && hook_calls.fetch_add(1, Ordering::Relaxed) == 4 {
                Some(IoFault::ShortWrite)
            } else {
                None
            }
        }));
        let mut persisted = 0;
        for r in &records {
            if store.append(r) {
                persisted += 1;
            }
        }
        assert_eq!(persisted, 4);
        assert!(store.is_wedged());
        assert_eq!(store.stats().records_dropped, 2);
        // Post-wedge sealing is a no-op that reports failure.
        assert!(!store.seal());

        let report = SegmentStore::recover(&dir).unwrap();
        assert_eq!(report.records, records[..4].to_vec());
        assert!(report.chain.is_intact());
        assert_eq!(report.truncations.len(), 1);
        let t = &report.truncations[0];
        assert!(t.bytes_dropped > 0);
        assert!(t.reason.contains("short frame"), "reason: {}", t.reason);
        assert_eq!(t.records_recovered_before, 4);
        // The torn tail was physically truncated: a second recovery is clean.
        let again = SegmentStore::recover(&dir).unwrap();
        assert!(again.is_clean());
        assert_eq!(again.records.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_error_wedges_with_clean_prefix() {
        let dir = temp_dir("ioerror");
        let records = sample_records(5);
        let mut store = SegmentStore::create(&dir, 0, 100).unwrap();
        let calls = Arc::new(AtomicUsize::new(0));
        let hook_calls = Arc::clone(&calls);
        store.set_fault_hook(Box::new(move |op| {
            if op == IoOp::Write && hook_calls.fetch_add(1, Ordering::Relaxed) == 3 {
                Some(IoFault::Error)
            } else {
                None
            }
        }));
        for r in &records {
            store.append(r);
        }
        assert!(store.is_wedged());
        assert!(store.wedged_cause().unwrap().contains("io error"));
        assert_eq!(store.stats().records_dropped, 2);
        let report = SegmentStore::recover(&dir).unwrap();
        // A hard error leaves no torn bytes: the prefix is clean.
        assert!(report.is_clean(), "truncations: {:?}", report.truncations);
        assert_eq!(report.records, records[..3].to_vec());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_error_leaves_unsynced_bytes_visible() {
        let dir = temp_dir("syncerror");
        let records = sample_records(3);
        let mut store = SegmentStore::create(&dir, 0, 100).unwrap();
        store.set_fault_hook(Box::new(|op| (op == IoOp::Sync).then_some(IoFault::Error)));
        for r in &records {
            assert!(store.append(r));
        }
        assert!(!store.sync());
        assert!(store.is_wedged());
        assert!(store.stats().unsynced_bytes > 0);
        assert_eq!(store.stats().bytes_fsynced, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_rotation_header_is_discarded_cleanly() {
        let dir = temp_dir("tornrotate");
        let records = sample_records(4);
        let mut store = SegmentStore::create(&dir, 0, 2).unwrap();
        let rotations = Arc::new(AtomicUsize::new(0));
        let hook_rotations = Arc::clone(&rotations);
        store.set_fault_hook(Box::new(move |op| {
            if op == IoOp::Rotate && hook_rotations.fetch_add(1, Ordering::Relaxed) == 1 {
                Some(IoFault::ShortWrite)
            } else {
                None
            }
        }));
        // Records 0,1 fill segment 0; opening segment 1 tears its header.
        for r in &records {
            store.append(r);
        }
        assert!(store.is_wedged());
        let report = SegmentStore::recover(&dir).unwrap();
        assert_eq!(report.records, records[..2].to_vec());
        assert_eq!(report.truncations.len(), 1);
        assert!(report.truncations[0].reason.contains("short segment header"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delay_fault_only_slows_the_write() {
        let dir = temp_dir("delay");
        let records = sample_records(2);
        let mut store = SegmentStore::create(&dir, 0, 100).unwrap();
        store.set_fault_hook(Box::new(|op| {
            (op == IoOp::Sync).then_some(IoFault::Delay(Duration::from_micros(50)))
        }));
        for r in &records {
            assert!(store.append(r));
        }
        assert!(store.sync());
        assert!(!store.is_wedged());
        assert_eq!(store.stats().unsynced_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_store_continues_numbering_and_chain() {
        let dir = temp_dir("reopen");
        let records = sample_records(6);
        let mut store = SegmentStore::create(&dir, 0, 2).unwrap();
        for r in &records[..4] {
            store.append(r);
        }
        assert!(store.seal());
        drop(store);

        let report = SegmentStore::recover(&dir).unwrap();
        assert_eq!(report.records.len(), 4);
        let mut store = SegmentStore::create(&dir, report.head_hash, 2).unwrap();
        for r in &records[4..] {
            store.append(r);
        }
        assert!(store.seal());

        let report = SegmentStore::recover(&dir).unwrap();
        assert!(report.is_clean(), "truncations: {:?}", report.truncations);
        assert_eq!(report.records, records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_histogram_percentiles() {
        let mut h = FsyncHistogram::default();
        assert_eq!(h.p99_ns(), 0);
        for ns in [100u64, 200, 300, 1000, 50_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 50_000);
        let p99 = h.p99_ns();
        assert!((1000..=50_000).contains(&p99), "p99 = {p99}");
        let mut merged = FsyncHistogram::default();
        merged.record(7);
        merged.merge(&h);
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.max_ns(), 50_000);
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = SegmentStats { records_persisted: 3, bytes_written: 100, ..Default::default() };
        let b = SegmentStats { records_persisted: 2, records_dropped: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.records_persisted, 5);
        assert_eq!(a.records_dropped, 1);
        assert_eq!(a.bytes_written, 100);
    }
}
