//! The append-only, hash-chained audit log.
//!
//! Tamper evidence is provided by chaining each record's hash with its predecessor's
//! (the paper cites hardware-backed secure logs, e.g. BBox \[6\]; we model the chain in
//! software — the integrity *property* is what compliance checking relies on).
//! Challenge 6 asks "when can logs safely be pruned? Can logs be offloaded to others for
//! distributed audit?" — [`AuditLog::prune_before`] and [`AuditLog::offload`] model
//! both, preserving chain verifiability across the cut by retaining the anchor hash.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::event::{AuditEvent, AuditEventKind, AuditRecord, RecordId};

/// The outcome of verifying the hash chain of a log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainVerification {
    /// Every record's hash links correctly to its predecessor.
    Intact {
        /// Number of records verified.
        records: usize,
    },
    /// The chain is broken at the given record.
    Broken {
        /// The first record whose hash does not verify.
        at: RecordId,
    },
}

impl ChainVerification {
    /// Whether the chain verified successfully.
    pub fn is_intact(&self) -> bool {
        matches!(self, ChainVerification::Intact { .. })
    }
}

impl fmt::Display for ChainVerification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainVerification::Intact { records } => write!(f, "intact ({records} records)"),
            ChainVerification::Broken { at } => write!(f, "broken at {at}"),
        }
    }
}

/// The result of pruning a log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneOutcome {
    /// Number of records removed.
    pub removed: usize,
    /// Number of records retained.
    pub retained: usize,
    /// The hash the retained chain is anchored on (the hash of the last pruned record).
    pub anchor_hash: u64,
}

/// An append-only, hash-chained audit log for one recording authority (node, domain or
/// gateway).
///
/// ```
/// use legaliot_audit::{AuditLog, AuditEvent};
/// use legaliot_ifc::{SecurityContext, can_flow};
///
/// let mut log = AuditLog::new("hospital-gateway");
/// let ctx = SecurityContext::from_names(["medical"], Vec::<&str>::new());
/// log.record(AuditEvent::FlowChecked {
///     source: "sensor".into(),
///     destination: "analyser".into(),
///     source_context: ctx.clone(),
///     destination_context: ctx.clone(),
///     decision: can_flow(&ctx, &ctx),
///     data_item: Some("reading".into()),
/// }, 10);
/// assert!(log.verify_chain().is_intact());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditLog {
    authority: String,
    records: Vec<AuditRecord>,
    /// Hash the first retained record chains from (non-zero after pruning/offload).
    anchor_hash: u64,
    /// Id to assign to the next record (ids keep increasing across pruning).
    next_id: u64,
}

impl AuditLog {
    /// Creates an empty log recorded by the given authority.
    pub fn new(authority: impl Into<String>) -> Self {
        AuditLog { authority: authority.into(), records: Vec::new(), anchor_hash: 0, next_id: 0 }
    }

    /// Creates an empty log that resumes an earlier chain: the first record appended
    /// will chain onto `anchor_hash` and be numbered `next_id`. This is how a process
    /// restart re-anchors on the crashed incarnation's last *persisted* record — the
    /// on-disk prefix plus the resumed log verify as one chain.
    pub fn resume(authority: impl Into<String>, anchor_hash: u64, next_id: u64) -> Self {
        AuditLog { authority: authority.into(), records: Vec::new(), anchor_hash, next_id }
    }

    /// The recording authority's name.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// The hash the first retained record chains from (0 for a fresh, unpruned log).
    pub fn anchor_hash(&self) -> u64 {
        self.anchor_hash
    }

    /// The id the next appended record will get (ids keep increasing across pruning).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// The hash of the newest record, or the anchor if the log is empty — exactly what
    /// the next appended record will chain from.
    pub fn head_hash(&self) -> u64 {
        self.records.last().map(|r| r.hash).unwrap_or(self.anchor_hash)
    }

    /// Appends an event at the given simulated time, returning the new record's id.
    pub fn record(&mut self, event: AuditEvent, at_millis: u64) -> RecordId {
        let previous_hash = self.records.last().map(|r| r.hash).unwrap_or(self.anchor_hash);
        let id = RecordId(self.next_id);
        self.next_id += 1;
        let hash = Self::hash_record(id, at_millis, &self.authority, &event, previous_hash);
        self.records.push(AuditRecord {
            id,
            at_millis,
            recorded_by: self.authority.clone(),
            event,
            previous_hash,
            hash,
        });
        id
    }

    fn hash_record(
        id: RecordId,
        at_millis: u64,
        authority: &str,
        event: &AuditEvent,
        previous_hash: u64,
    ) -> u64 {
        let mut hasher = DefaultHasher::new();
        id.0.hash(&mut hasher);
        at_millis.hash(&mut hasher);
        authority.hash(&mut hasher);
        // The event is hashed via its debug representation: deterministic for our types
        // and independent of serde formatting choices.
        format!("{event:?}").hash(&mut hasher);
        previous_hash.hash(&mut hasher);
        hasher.finish()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Iterates records of a given kind.
    pub fn of_kind(&self, kind: AuditEventKind) -> impl Iterator<Item = &AuditRecord> + '_ {
        self.records.iter().filter(move |r| r.event.kind() == kind)
    }

    /// Records mentioning the given entity name.
    pub fn involving<'a>(&'a self, entity: &'a str) -> impl Iterator<Item = &'a AuditRecord> + 'a {
        self.records.iter().filter(move |r| r.event.entities().contains(&entity))
    }

    /// Records of denied flows — the first thing an investigator looks at.
    pub fn denied_flows(&self) -> impl Iterator<Item = &AuditRecord> + '_ {
        self.records.iter().filter(|r| r.event.is_denied_flow())
    }

    /// Verifies the hash chain from the anchor to the newest record.
    pub fn verify_chain(&self) -> ChainVerification {
        Self::verify_records(self.anchor_hash, &self.records)
    }

    /// Verifies an arbitrary record slice as a chain anchored on `anchor_hash`.
    ///
    /// This is the same check as [`Self::verify_chain`], exposed so external stores of
    /// records (e.g. recovered on-disk segments) can be verified — including spans that
    /// cross storage boundaries, by concatenating the disk prefix with the in-memory
    /// suffix and anchoring on the first segment's anchor.
    pub fn verify_records(anchor_hash: u64, records: &[AuditRecord]) -> ChainVerification {
        let mut expected_prev = anchor_hash;
        for r in records {
            if r.previous_hash != expected_prev {
                return ChainVerification::Broken { at: r.id };
            }
            let recomputed =
                Self::hash_record(r.id, r.at_millis, &r.recorded_by, &r.event, r.previous_hash);
            if recomputed != r.hash {
                return ChainVerification::Broken { at: r.id };
            }
            expected_prev = r.hash;
        }
        ChainVerification::Intact { records: records.len() }
    }

    /// Drops the oldest `split` records, re-anchoring the retained chain on the last
    /// pruned record's hash so verification still succeeds across the cut. Returns the
    /// removed records so callers can persist them before they vanish.
    fn prune_at(&mut self, split: usize) -> (PruneOutcome, Vec<AuditRecord>) {
        let removed: Vec<AuditRecord> = self.records.drain(..split).collect();
        if let Some(last) = removed.last() {
            self.anchor_hash = last.hash;
        }
        let outcome = PruneOutcome {
            removed: removed.len(),
            retained: self.records.len(),
            anchor_hash: self.anchor_hash,
        };
        (outcome, removed)
    }

    /// Prunes all records recorded strictly before `before_millis`, keeping the chain
    /// verifiable by anchoring on the last pruned record's hash.
    pub fn prune_before(&mut self, before_millis: u64) -> PruneOutcome {
        let split = self
            .records
            .iter()
            .position(|r| r.at_millis >= before_millis)
            .unwrap_or(self.records.len());
        self.prune_at(split).0
    }

    /// Keeps only the newest `keep` records, pruning older ones while anchoring the
    /// retained chain on the last pruned record's hash (like [`Self::prune_before`],
    /// but positional). This is the bounded in-memory retention used by long-running
    /// enforcement points: tamper evidence for the retained window survives, and the
    /// anchor proves continuity with the pruned history.
    pub fn retain_recent(&mut self, keep: usize) -> PruneOutcome {
        self.retain_recent_taking(keep).0
    }

    /// Like [`Self::retain_recent`], but *returns* the pruned-out records (oldest
    /// first) instead of discarding them, so a persistence sink can write them to
    /// durable storage before they stop being observable. The returned records are the
    /// exact chain span between the old anchor and the new one.
    pub fn retain_recent_taking(&mut self, keep: usize) -> (PruneOutcome, Vec<AuditRecord>) {
        self.prune_at(self.records.len().saturating_sub(keep))
    }

    /// Offloads (moves) all current records into a new log destined for a remote
    /// auditor, leaving this log empty but anchored so future records still chain onto
    /// the offloaded history (distributed audit, Challenge 6).
    pub fn offload(&mut self, auditor: impl Into<String>) -> AuditLog {
        let offloaded = AuditLog {
            authority: auditor.into(),
            records: std::mem::take(&mut self.records),
            anchor_hash: self.anchor_hash,
            next_id: self.next_id,
        };
        if let Some(last) = offloaded.records.last() {
            self.anchor_hash = last.hash;
        }
        offloaded
    }

    /// Merges the records of several per-node logs into a single timeline ordered by
    /// timestamp (then by recording authority for determinism). The merged view is used
    /// by system-wide compliance checking; per-node chains remain the tamper evidence.
    pub fn merged_timeline<'a>(logs: impl IntoIterator<Item = &'a AuditLog>) -> Vec<AuditRecord> {
        let mut all: Vec<AuditRecord> =
            logs.into_iter().flat_map(|l| l.records.iter().cloned()).collect();
        all.sort_by(|a, b| {
            a.at_millis
                .cmp(&b.at_millis)
                .then_with(|| a.recorded_by.cmp(&b.recorded_by))
                .then_with(|| a.id.cmp(&b.id))
        });
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_ifc::{can_flow, SecurityContext};
    use proptest::prelude::*;

    fn flow_event(src: &str, dst: &str, denied: bool) -> AuditEvent {
        let s = SecurityContext::from_names(["medical"], Vec::<&str>::new());
        let d = if denied { SecurityContext::public() } else { s.clone() };
        AuditEvent::FlowChecked {
            source: src.into(),
            destination: dst.into(),
            source_context: s.clone(),
            destination_context: d.clone(),
            decision: can_flow(&s, &d),
            data_item: None,
        }
    }

    #[test]
    fn record_and_verify() {
        let mut log = AuditLog::new("node-a");
        assert!(log.is_empty());
        log.record(flow_event("s", "d", false), 1);
        log.record(flow_event("s", "d", true), 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.authority(), "node-a");
        assert!(log.verify_chain().is_intact());
        assert_eq!(log.denied_flows().count(), 1);
    }

    #[test]
    fn tampering_breaks_the_chain() {
        let mut log = AuditLog::new("node-a");
        log.record(flow_event("s", "d", false), 1);
        log.record(flow_event("s", "d", true), 2);
        log.record(flow_event("s", "d", false), 3);
        // Tamper with the middle record's event.
        if let AuditEvent::FlowChecked { destination, .. } = &mut log.records[1].event {
            *destination = "covered-up".into();
        }
        let v = log.verify_chain();
        assert_eq!(v, ChainVerification::Broken { at: RecordId(1) });
        assert!(!v.is_intact());
        assert!(v.to_string().contains("#1"));
    }

    #[test]
    fn removing_a_record_breaks_the_chain() {
        let mut log = AuditLog::new("node-a");
        log.record(flow_event("a", "b", false), 1);
        log.record(flow_event("b", "c", false), 2);
        log.record(flow_event("c", "d", false), 3);
        log.records.remove(1);
        assert!(!log.verify_chain().is_intact());
    }

    #[test]
    fn pruning_preserves_verifiability() {
        let mut log = AuditLog::new("node-a");
        for t in 0..10 {
            log.record(flow_event("s", "d", false), t);
        }
        let outcome = log.prune_before(5);
        assert_eq!(outcome.removed, 5);
        assert_eq!(outcome.retained, 5);
        assert_ne!(outcome.anchor_hash, 0);
        assert!(log.verify_chain().is_intact());
        // New records still chain correctly.
        log.record(flow_event("s", "d", false), 99);
        assert!(log.verify_chain().is_intact());
        // Record ids keep increasing across pruning.
        assert_eq!(log.records().last().unwrap().id, RecordId(10));
    }

    #[test]
    fn retain_recent_bounds_the_log_and_keeps_chain() {
        let mut log = AuditLog::new("node-a");
        for t in 0..10 {
            log.record(flow_event("s", "d", false), t);
        }
        let outcome = log.retain_recent(3);
        assert_eq!(outcome.removed, 7);
        assert_eq!(outcome.retained, 3);
        assert_eq!(log.len(), 3);
        assert!(log.verify_chain().is_intact());
        // Ids keep increasing and new records still chain on.
        log.record(flow_event("s", "d", false), 99);
        assert!(log.verify_chain().is_intact());
        assert_eq!(log.records().last().unwrap().id, RecordId(10));
        // A no-op when already within bounds.
        let outcome = log.retain_recent(100);
        assert_eq!(outcome.removed, 0);
        assert_eq!(outcome.retained, 4);
    }

    #[test]
    fn offload_moves_history_and_keeps_chain() {
        let mut log = AuditLog::new("gateway");
        for t in 0..4 {
            log.record(flow_event("s", "d", false), t);
        }
        let offloaded = log.offload("cloud-auditor");
        assert_eq!(offloaded.len(), 4);
        assert_eq!(offloaded.authority(), "cloud-auditor");
        assert!(offloaded.verify_chain().is_intact());
        assert!(log.is_empty());
        log.record(flow_event("s", "d", false), 10);
        assert!(log.verify_chain().is_intact());
        // The retained log's first record chains from the offloaded history.
        assert_eq!(log.records()[0].previous_hash, offloaded.records().last().unwrap().hash);
    }

    #[test]
    fn filtering_by_kind_and_entity() {
        let mut log = AuditLog::new("node");
        log.record(flow_event("sensor", "analyser", false), 1);
        log.record(
            AuditEvent::PolicyFired {
                policy: "emergency".into(),
                trigger: "hr>180".into(),
                actions: 3,
            },
            2,
        );
        assert_eq!(log.of_kind(AuditEventKind::FlowChecked).count(), 1);
        assert_eq!(log.of_kind(AuditEventKind::PolicyFired).count(), 1);
        assert_eq!(log.involving("sensor").count(), 1);
        assert_eq!(log.involving("emergency").count(), 1);
        assert_eq!(log.involving("nobody").count(), 0);
    }

    #[test]
    fn merged_timeline_orders_by_time() {
        let mut a = AuditLog::new("node-a");
        let mut b = AuditLog::new("node-b");
        a.record(flow_event("x", "y", false), 5);
        b.record(flow_event("p", "q", false), 3);
        a.record(flow_event("x", "y", false), 9);
        b.record(flow_event("p", "q", false), 7);
        let merged = AuditLog::merged_timeline([&a, &b]);
        let times: Vec<u64> = merged.iter().map(|r| r.at_millis).collect();
        assert_eq!(times, vec![3, 5, 7, 9]);
    }

    #[test]
    fn retain_recent_taking_yields_the_pruned_span() {
        let mut log = AuditLog::new("node-a");
        for t in 0..10 {
            log.record(flow_event("s", "d", false), t);
        }
        let head_before = log.records()[6].hash;
        let (outcome, pruned) = log.retain_recent_taking(3);
        assert_eq!(outcome.removed, 7);
        assert_eq!(pruned.len(), 7);
        // The yielded records are the exact chain span up to the new anchor.
        assert_eq!(AuditLog::verify_records(0, &pruned), ChainVerification::Intact { records: 7 });
        assert_eq!(pruned.last().unwrap().hash, outcome.anchor_hash);
        assert_eq!(outcome.anchor_hash, head_before);
        assert_eq!(log.anchor_hash(), head_before);
        assert!(log.verify_chain().is_intact());
    }

    #[test]
    fn resume_continues_the_chain_from_a_persisted_head() {
        let mut first = AuditLog::new("shard-0");
        for t in 0..5 {
            first.record(flow_event("s", "d", false), t);
        }
        let persisted: Vec<AuditRecord> = first.records().to_vec();
        let head = first.head_hash();
        let next_id = first.next_id();

        // A restarted incarnation re-anchors on the persisted head.
        let mut resumed = AuditLog::resume("shard-0", head, next_id);
        assert_eq!(resumed.anchor_hash(), head);
        assert_eq!(resumed.next_id(), next_id);
        resumed.record(flow_event("s", "d", false), 10);
        assert!(resumed.verify_chain().is_intact());

        // Disk prefix + resumed suffix verify as one chain.
        let mut combined = persisted;
        combined.extend(resumed.records().iter().cloned());
        assert_eq!(
            AuditLog::verify_records(0, &combined),
            ChainVerification::Intact { records: 6 }
        );
        assert_eq!(combined.last().unwrap().id, RecordId(5));
    }

    #[test]
    fn verify_records_detects_a_cross_boundary_break() {
        let mut log = AuditLog::new("n");
        for t in 0..4 {
            log.record(flow_event("s", "d", false), t);
        }
        let mut records: Vec<AuditRecord> = log.records().to_vec();
        // Dropping a middle record breaks the slice chain.
        records.remove(2);
        assert!(!AuditLog::verify_records(0, &records).is_intact());
        // A wrong anchor breaks it at the first record.
        assert_eq!(
            AuditLog::verify_records(7, log.records()),
            ChainVerification::Broken { at: RecordId(0) }
        );
    }

    #[test]
    fn empty_log_verifies() {
        let log = AuditLog::new("n");
        assert!(log.verify_chain().is_intact());
        assert_eq!(log.verify_chain(), ChainVerification::Intact { records: 0 });
    }

    proptest! {
        /// Chain verification always succeeds on an untampered log, for any sequence of
        /// events and timestamps.
        #[test]
        fn prop_untampered_chain_is_intact(times in proptest::collection::vec(0u64..1000, 0..40)) {
            let mut log = AuditLog::new("n");
            for t in &times {
                log.record(flow_event("a", "b", t % 2 == 0), *t);
            }
            prop_assert!(log.verify_chain().is_intact());
        }

        /// Pruning at any point keeps the remaining chain intact and removes exactly the
        /// records before the cut.
        #[test]
        fn prop_prune_keeps_chain(cut in 0u64..50, n in 1usize..40) {
            let mut log = AuditLog::new("n");
            for t in 0..n as u64 {
                log.record(flow_event("a", "b", false), t);
            }
            let expected_removed = (0..n as u64).filter(|t| *t < cut).count();
            let outcome = log.prune_before(cut);
            prop_assert_eq!(outcome.removed, expected_removed);
            prop_assert!(log.verify_chain().is_intact());
        }
    }
}
