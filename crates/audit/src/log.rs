//! The append-only, hash-chained audit log.
//!
//! Tamper evidence is provided by chaining each record's hash with its predecessor's
//! (the paper cites hardware-backed secure logs, e.g. BBox \[6\]; we model the chain in
//! software — the integrity *property* is what compliance checking relies on).
//! Challenge 6 asks "when can logs safely be pruned? Can logs be offloaded to others for
//! distributed audit?" — [`AuditLog::prune_before`] and [`AuditLog::offload`] model
//! both, preserving chain verifiability across the cut by retaining the anchor hash.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::event::{AuditEvent, AuditEventKind, AuditRecord, RecordId};

/// The outcome of verifying the hash chain of a log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainVerification {
    /// Every record's hash links correctly to its predecessor.
    Intact {
        /// Number of records verified.
        records: usize,
    },
    /// The chain is broken at the given record.
    Broken {
        /// The first record whose hash does not verify.
        at: RecordId,
    },
}

impl ChainVerification {
    /// Whether the chain verified successfully.
    pub fn is_intact(&self) -> bool {
        matches!(self, ChainVerification::Intact { .. })
    }
}

impl fmt::Display for ChainVerification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainVerification::Intact { records } => write!(f, "intact ({records} records)"),
            ChainVerification::Broken { at } => write!(f, "broken at {at}"),
        }
    }
}

/// The result of pruning a log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneOutcome {
    /// Number of records removed.
    pub removed: usize,
    /// Number of records retained.
    pub retained: usize,
    /// The hash the retained chain is anchored on (the hash of the last pruned record).
    pub anchor_hash: u64,
}

/// An append-only, hash-chained audit log for one recording authority (node, domain or
/// gateway).
///
/// ```
/// use legaliot_audit::{AuditLog, AuditEvent};
/// use legaliot_ifc::{SecurityContext, can_flow};
///
/// let mut log = AuditLog::new("hospital-gateway");
/// let ctx = SecurityContext::from_names(["medical"], Vec::<&str>::new());
/// log.record(AuditEvent::FlowChecked {
///     source: "sensor".into(),
///     destination: "analyser".into(),
///     source_context: ctx.clone(),
///     destination_context: ctx.clone(),
///     decision: can_flow(&ctx, &ctx),
///     data_item: Some("reading".into()),
/// }, 10);
/// assert!(log.verify_chain().is_intact());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditLog {
    authority: String,
    records: Vec<AuditRecord>,
    /// Hash the first retained record chains from (non-zero after pruning/offload).
    anchor_hash: u64,
    /// Id to assign to the next record (ids keep increasing across pruning).
    next_id: u64,
}

impl AuditLog {
    /// Creates an empty log recorded by the given authority.
    pub fn new(authority: impl Into<String>) -> Self {
        AuditLog { authority: authority.into(), records: Vec::new(), anchor_hash: 0, next_id: 0 }
    }

    /// The recording authority's name.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// Appends an event at the given simulated time, returning the new record's id.
    pub fn record(&mut self, event: AuditEvent, at_millis: u64) -> RecordId {
        let previous_hash = self.records.last().map(|r| r.hash).unwrap_or(self.anchor_hash);
        let id = RecordId(self.next_id);
        self.next_id += 1;
        let hash = Self::hash_record(id, at_millis, &self.authority, &event, previous_hash);
        self.records.push(AuditRecord {
            id,
            at_millis,
            recorded_by: self.authority.clone(),
            event,
            previous_hash,
            hash,
        });
        id
    }

    fn hash_record(
        id: RecordId,
        at_millis: u64,
        authority: &str,
        event: &AuditEvent,
        previous_hash: u64,
    ) -> u64 {
        let mut hasher = DefaultHasher::new();
        id.0.hash(&mut hasher);
        at_millis.hash(&mut hasher);
        authority.hash(&mut hasher);
        // The event is hashed via its debug representation: deterministic for our types
        // and independent of serde formatting choices.
        format!("{event:?}").hash(&mut hasher);
        previous_hash.hash(&mut hasher);
        hasher.finish()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Iterates records of a given kind.
    pub fn of_kind(&self, kind: AuditEventKind) -> impl Iterator<Item = &AuditRecord> + '_ {
        self.records.iter().filter(move |r| r.event.kind() == kind)
    }

    /// Records mentioning the given entity name.
    pub fn involving<'a>(&'a self, entity: &'a str) -> impl Iterator<Item = &'a AuditRecord> + 'a {
        self.records.iter().filter(move |r| r.event.entities().contains(&entity))
    }

    /// Records of denied flows — the first thing an investigator looks at.
    pub fn denied_flows(&self) -> impl Iterator<Item = &AuditRecord> + '_ {
        self.records.iter().filter(|r| r.event.is_denied_flow())
    }

    /// Verifies the hash chain from the anchor to the newest record.
    pub fn verify_chain(&self) -> ChainVerification {
        let mut expected_prev = self.anchor_hash;
        for r in &self.records {
            if r.previous_hash != expected_prev {
                return ChainVerification::Broken { at: r.id };
            }
            let recomputed =
                Self::hash_record(r.id, r.at_millis, &r.recorded_by, &r.event, r.previous_hash);
            if recomputed != r.hash {
                return ChainVerification::Broken { at: r.id };
            }
            expected_prev = r.hash;
        }
        ChainVerification::Intact { records: self.records.len() }
    }

    /// Drops the oldest `split` records, re-anchoring the retained chain on the last
    /// pruned record's hash so verification still succeeds across the cut.
    fn prune_at(&mut self, split: usize) -> PruneOutcome {
        let removed: Vec<AuditRecord> = self.records.drain(..split).collect();
        if let Some(last) = removed.last() {
            self.anchor_hash = last.hash;
        }
        PruneOutcome {
            removed: removed.len(),
            retained: self.records.len(),
            anchor_hash: self.anchor_hash,
        }
    }

    /// Prunes all records recorded strictly before `before_millis`, keeping the chain
    /// verifiable by anchoring on the last pruned record's hash.
    pub fn prune_before(&mut self, before_millis: u64) -> PruneOutcome {
        let split = self
            .records
            .iter()
            .position(|r| r.at_millis >= before_millis)
            .unwrap_or(self.records.len());
        self.prune_at(split)
    }

    /// Keeps only the newest `keep` records, pruning older ones while anchoring the
    /// retained chain on the last pruned record's hash (like [`Self::prune_before`],
    /// but positional). This is the bounded in-memory retention used by long-running
    /// enforcement points: tamper evidence for the retained window survives, and the
    /// anchor proves continuity with the pruned history.
    pub fn retain_recent(&mut self, keep: usize) -> PruneOutcome {
        self.prune_at(self.records.len().saturating_sub(keep))
    }

    /// Offloads (moves) all current records into a new log destined for a remote
    /// auditor, leaving this log empty but anchored so future records still chain onto
    /// the offloaded history (distributed audit, Challenge 6).
    pub fn offload(&mut self, auditor: impl Into<String>) -> AuditLog {
        let offloaded = AuditLog {
            authority: auditor.into(),
            records: std::mem::take(&mut self.records),
            anchor_hash: self.anchor_hash,
            next_id: self.next_id,
        };
        if let Some(last) = offloaded.records.last() {
            self.anchor_hash = last.hash;
        }
        offloaded
    }

    /// Merges the records of several per-node logs into a single timeline ordered by
    /// timestamp (then by recording authority for determinism). The merged view is used
    /// by system-wide compliance checking; per-node chains remain the tamper evidence.
    pub fn merged_timeline<'a>(logs: impl IntoIterator<Item = &'a AuditLog>) -> Vec<AuditRecord> {
        let mut all: Vec<AuditRecord> =
            logs.into_iter().flat_map(|l| l.records.iter().cloned()).collect();
        all.sort_by(|a, b| {
            a.at_millis
                .cmp(&b.at_millis)
                .then_with(|| a.recorded_by.cmp(&b.recorded_by))
                .then_with(|| a.id.cmp(&b.id))
        });
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_ifc::{can_flow, SecurityContext};
    use proptest::prelude::*;

    fn flow_event(src: &str, dst: &str, denied: bool) -> AuditEvent {
        let s = SecurityContext::from_names(["medical"], Vec::<&str>::new());
        let d = if denied { SecurityContext::public() } else { s.clone() };
        AuditEvent::FlowChecked {
            source: src.into(),
            destination: dst.into(),
            source_context: s.clone(),
            destination_context: d.clone(),
            decision: can_flow(&s, &d),
            data_item: None,
        }
    }

    #[test]
    fn record_and_verify() {
        let mut log = AuditLog::new("node-a");
        assert!(log.is_empty());
        log.record(flow_event("s", "d", false), 1);
        log.record(flow_event("s", "d", true), 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.authority(), "node-a");
        assert!(log.verify_chain().is_intact());
        assert_eq!(log.denied_flows().count(), 1);
    }

    #[test]
    fn tampering_breaks_the_chain() {
        let mut log = AuditLog::new("node-a");
        log.record(flow_event("s", "d", false), 1);
        log.record(flow_event("s", "d", true), 2);
        log.record(flow_event("s", "d", false), 3);
        // Tamper with the middle record's event.
        if let AuditEvent::FlowChecked { destination, .. } = &mut log.records[1].event {
            *destination = "covered-up".into();
        }
        let v = log.verify_chain();
        assert_eq!(v, ChainVerification::Broken { at: RecordId(1) });
        assert!(!v.is_intact());
        assert!(v.to_string().contains("#1"));
    }

    #[test]
    fn removing_a_record_breaks_the_chain() {
        let mut log = AuditLog::new("node-a");
        log.record(flow_event("a", "b", false), 1);
        log.record(flow_event("b", "c", false), 2);
        log.record(flow_event("c", "d", false), 3);
        log.records.remove(1);
        assert!(!log.verify_chain().is_intact());
    }

    #[test]
    fn pruning_preserves_verifiability() {
        let mut log = AuditLog::new("node-a");
        for t in 0..10 {
            log.record(flow_event("s", "d", false), t);
        }
        let outcome = log.prune_before(5);
        assert_eq!(outcome.removed, 5);
        assert_eq!(outcome.retained, 5);
        assert_ne!(outcome.anchor_hash, 0);
        assert!(log.verify_chain().is_intact());
        // New records still chain correctly.
        log.record(flow_event("s", "d", false), 99);
        assert!(log.verify_chain().is_intact());
        // Record ids keep increasing across pruning.
        assert_eq!(log.records().last().unwrap().id, RecordId(10));
    }

    #[test]
    fn retain_recent_bounds_the_log_and_keeps_chain() {
        let mut log = AuditLog::new("node-a");
        for t in 0..10 {
            log.record(flow_event("s", "d", false), t);
        }
        let outcome = log.retain_recent(3);
        assert_eq!(outcome.removed, 7);
        assert_eq!(outcome.retained, 3);
        assert_eq!(log.len(), 3);
        assert!(log.verify_chain().is_intact());
        // Ids keep increasing and new records still chain on.
        log.record(flow_event("s", "d", false), 99);
        assert!(log.verify_chain().is_intact());
        assert_eq!(log.records().last().unwrap().id, RecordId(10));
        // A no-op when already within bounds.
        let outcome = log.retain_recent(100);
        assert_eq!(outcome.removed, 0);
        assert_eq!(outcome.retained, 4);
    }

    #[test]
    fn offload_moves_history_and_keeps_chain() {
        let mut log = AuditLog::new("gateway");
        for t in 0..4 {
            log.record(flow_event("s", "d", false), t);
        }
        let offloaded = log.offload("cloud-auditor");
        assert_eq!(offloaded.len(), 4);
        assert_eq!(offloaded.authority(), "cloud-auditor");
        assert!(offloaded.verify_chain().is_intact());
        assert!(log.is_empty());
        log.record(flow_event("s", "d", false), 10);
        assert!(log.verify_chain().is_intact());
        // The retained log's first record chains from the offloaded history.
        assert_eq!(log.records()[0].previous_hash, offloaded.records().last().unwrap().hash);
    }

    #[test]
    fn filtering_by_kind_and_entity() {
        let mut log = AuditLog::new("node");
        log.record(flow_event("sensor", "analyser", false), 1);
        log.record(
            AuditEvent::PolicyFired {
                policy: "emergency".into(),
                trigger: "hr>180".into(),
                actions: 3,
            },
            2,
        );
        assert_eq!(log.of_kind(AuditEventKind::FlowChecked).count(), 1);
        assert_eq!(log.of_kind(AuditEventKind::PolicyFired).count(), 1);
        assert_eq!(log.involving("sensor").count(), 1);
        assert_eq!(log.involving("emergency").count(), 1);
        assert_eq!(log.involving("nobody").count(), 0);
    }

    #[test]
    fn merged_timeline_orders_by_time() {
        let mut a = AuditLog::new("node-a");
        let mut b = AuditLog::new("node-b");
        a.record(flow_event("x", "y", false), 5);
        b.record(flow_event("p", "q", false), 3);
        a.record(flow_event("x", "y", false), 9);
        b.record(flow_event("p", "q", false), 7);
        let merged = AuditLog::merged_timeline([&a, &b]);
        let times: Vec<u64> = merged.iter().map(|r| r.at_millis).collect();
        assert_eq!(times, vec![3, 5, 7, 9]);
    }

    #[test]
    fn empty_log_verifies() {
        let log = AuditLog::new("n");
        assert!(log.verify_chain().is_intact());
        assert_eq!(log.verify_chain(), ChainVerification::Intact { records: 0 });
    }

    proptest! {
        /// Chain verification always succeeds on an untampered log, for any sequence of
        /// events and timestamps.
        #[test]
        fn prop_untampered_chain_is_intact(times in proptest::collection::vec(0u64..1000, 0..40)) {
            let mut log = AuditLog::new("n");
            for t in &times {
                log.record(flow_event("a", "b", t % 2 == 0), *t);
            }
            prop_assert!(log.verify_chain().is_intact());
        }

        /// Pruning at any point keeps the remaining chain intact and removes exactly the
        /// records before the cut.
        #[test]
        fn prop_prune_keeps_chain(cut in 0u64..50, n in 1usize..40) {
            let mut log = AuditLog::new("n");
            for t in 0..n as u64 {
                log.record(flow_event("a", "b", false), t);
            }
            let expected_removed = (0..n as u64).filter(|t| *t < cut).count();
            let outcome = log.prune_before(cut);
            prop_assert_eq!(outcome.removed, expected_removed);
            prop_assert!(log.verify_chain().is_intact());
        }
    }
}
