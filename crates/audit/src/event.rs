//! Auditable events and the records that wrap them.

use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_ifc::{FlowDecision, SecurityContext};

/// Identifier of a record within an [`crate::AuditLog`]: its position in the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordId(pub u64);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The kind of an audit event, used for filtering and compliance checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditEventKind {
    /// A data flow was checked (and allowed or denied).
    FlowChecked,
    /// An aggregated count of repeated flow checks between one entity pair.
    FlowSummary,
    /// An entity changed its own security context (declassification/endorsement).
    LabelChanged,
    /// A privilege was granted or revoked.
    PrivilegeChanged,
    /// A component was reconfigured by a third party (Fig. 8).
    Reconfigured,
    /// A policy rule fired.
    PolicyFired,
    /// A channel between components was established or torn down.
    ChannelChanged,
    /// A data item was created or derived from others.
    DataDerived,
    /// A break-glass override was activated or expired.
    BreakGlass,
    /// Attributes of a delivered message were source-quenched (Fig. 10).
    MessageQuenched,
    /// Enforcement allowed a delivery, but the subscriber's bounded mailbox shed it
    /// (drop-oldest overflow): the consumer never observed the message.
    DeliveryDropped,
    /// An enforcement shard crashed and was restarted by its supervisor.
    ShardRestarted,
    /// Accepted work was abandoned by a crashed (or degraded) enforcement shard:
    /// the affected deliveries were neither enforced nor delivered.
    DeliveryLost,
}

impl fmt::Display for AuditEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditEventKind::FlowChecked => "flow-checked",
            AuditEventKind::FlowSummary => "flow-summary",
            AuditEventKind::LabelChanged => "label-changed",
            AuditEventKind::PrivilegeChanged => "privilege-changed",
            AuditEventKind::Reconfigured => "reconfigured",
            AuditEventKind::PolicyFired => "policy-fired",
            AuditEventKind::ChannelChanged => "channel-changed",
            AuditEventKind::DataDerived => "data-derived",
            AuditEventKind::BreakGlass => "break-glass",
            AuditEventKind::MessageQuenched => "message-quenched",
            AuditEventKind::DeliveryDropped => "delivery-dropped",
            AuditEventKind::ShardRestarted => "shard-restarted",
            AuditEventKind::DeliveryLost => "delivery-lost",
        };
        f.write_str(s)
    }
}

/// An auditable occurrence somewhere in the deployment.
///
/// Entity references are plain strings (component/process/data names scoped by the
/// caller) so the audit crate stays decoupled from the middleware and kernel models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AuditEvent {
    /// A flow from `source` to `destination` was checked.
    FlowChecked {
        /// Name of the source entity.
        source: String,
        /// Name of the destination entity.
        destination: String,
        /// Source security context at check time.
        source_context: SecurityContext,
        /// Destination security context at check time.
        destination_context: SecurityContext,
        /// The decision reached.
        decision: FlowDecision,
        /// Optional name of the data item transferred (present when allowed).
        data_item: Option<String>,
    },
    /// Aggregated record of repeated flow checks between one `(source, destination)`
    /// pair whose decision was served from a flow-decision cache.
    ///
    /// High-throughput enforcement points audit the *first* check of a context pair in
    /// full (a [`AuditEvent::FlowChecked`] record carrying both contexts and the
    /// decision) and fold repeats into one summary per pair, preserving the "all
    /// attempted flows are evidenced" property (§8.3) at a fraction of the per-message
    /// cost. The summary's counts total **every** check in its window — including
    /// checks that were also recorded individually (first-of-pair records, denials) —
    /// so the summary alone answers "how many flows were attempted/denied".
    FlowSummary {
        /// Name of the source entity.
        source: String,
        /// Name of the destination entity.
        destination: String,
        /// Number of checks in the window that were allowed.
        allowed: u64,
        /// Number of checks in the window that were denied.
        denied: u64,
        /// Timestamp (millis) of the first check folded into this summary.
        window_start_millis: u64,
        /// Timestamp (millis) of the last check folded into this summary.
        window_end_millis: u64,
    },
    /// An entity changed its own labels, naming the approved transformation applied.
    LabelChanged {
        /// The entity that changed context.
        entity: String,
        /// Context before the change.
        before: SecurityContext,
        /// Context after the change.
        after: SecurityContext,
        /// Name of the approved algorithm (e.g. `k-anonymise`), if any.
        algorithm: Option<String>,
    },
    /// A privilege over `tag` was granted to or revoked from `entity` by `authority`.
    PrivilegeChanged {
        /// The entity whose privileges changed.
        entity: String,
        /// The tag concerned.
        tag: String,
        /// Human-readable description of the change (e.g. `grant secrecy-remove`).
        change: String,
        /// The principal that authorised the change.
        authority: String,
    },
    /// A component was reconfigured by a third party via a control message.
    Reconfigured {
        /// The component that was reconfigured.
        component: String,
        /// The principal that issued the reconfiguration.
        issued_by: String,
        /// Description of the reconfiguration action.
        action: String,
        /// Whether the control message was accepted.
        accepted: bool,
    },
    /// A policy rule fired, possibly producing reconfiguration commands.
    PolicyFired {
        /// The policy rule's identifier.
        policy: String,
        /// The event or context change that triggered it.
        trigger: String,
        /// Number of resulting actions.
        actions: usize,
    },
    /// A messaging channel was established or torn down.
    ChannelChanged {
        /// Source component.
        from: String,
        /// Destination component.
        to: String,
        /// Whether the channel now exists.
        established: bool,
        /// Why (AC denied, IFC denied, policy, …).
        reason: String,
    },
    /// A data item was derived from zero or more input items by a process.
    DataDerived {
        /// The new data item's name.
        output: String,
        /// The names of input data items.
        inputs: Vec<String>,
        /// The process that produced it.
        process: String,
        /// The agent controlling the process.
        agent: String,
        /// Security context of the output item.
        context: SecurityContext,
    },
    /// A break-glass override was activated or deactivated.
    BreakGlass {
        /// The override's policy id.
        policy: String,
        /// Whether it became active (`true`) or expired/was revoked (`false`).
        active: bool,
        /// The justification recorded at activation.
        justification: String,
    },
    /// Attributes of a message delivered `source -> destination` were removed by
    /// source quenching: their message-level secrecy tags were not all present in the
    /// destination's secrecy label (Fig. 10).
    MessageQuenched {
        /// Name of the source entity.
        source: String,
        /// Name of the destination entity.
        destination: String,
        /// The message type concerned.
        message_type: String,
        /// The quenched attribute names.
        attributes: Vec<String>,
    },
    /// Messages that passed enforcement for `source -> destination` were shed from the
    /// destination's bounded mailbox under a drop-oldest overflow policy, so the
    /// consumer never received them. Counterpart of the delivery evidence: every
    /// admitted-but-unobserved message is accounted for.
    DeliveryDropped {
        /// Name of the source entity whose messages were shed.
        source: String,
        /// Name of the destination entity whose mailbox overflowed.
        destination: String,
        /// The message type concerned.
        message_type: String,
        /// How many deliveries this record accounts for. Enforcement points either
        /// record each shed individually (`dropped: 1`) or fold a pair's sheds into
        /// one summary record — never both for the same shed — so summing `dropped`
        /// across records counts every shed delivery exactly once.
        dropped: u64,
    },
    /// An enforcement shard's worker panicked and its supervisor restarted it:
    /// decision caches were rebuilt cold and the shard's audit chain was re-anchored
    /// on the last flushed hash, so chain verification still passes across the
    /// restart. Recorded on the restarted shard's own log, first record after the
    /// re-anchor.
    ShardRestarted {
        /// The restarted shard's identifier (its per-shard audit authority name).
        shard: String,
        /// 1-based restart ordinal for this shard (how many restarts so far).
        restart: u64,
        /// The captured panic message, best-effort (`<non-string panic payload>`
        /// when the payload was not a string).
        cause: String,
    },
    /// Deliveries accepted for `source -> destination` that were neither enforced
    /// nor delivered, because the shard processing them crashed mid-task (or had
    /// degraded after exhausting its restart budget). The loss is evidenced so the
    /// accounting identity `published == delivered + denied + missing + lost`
    /// stays exact; a lost delivery is never silently dropped.
    DeliveryLost {
        /// Name of the source entity.
        source: String,
        /// Name of the destination entity.
        destination: String,
        /// The message type concerned, when the lost delivery carried a payload
        /// (`None` for flow-only deliveries).
        message_type: Option<String>,
        /// How many deliveries this record accounts for.
        lost: u64,
        /// Why the work was abandoned (captured panic message, or a degraded-shard
        /// note).
        cause: String,
    },
}

impl AuditEvent {
    /// The kind of this event.
    pub fn kind(&self) -> AuditEventKind {
        match self {
            AuditEvent::FlowChecked { .. } => AuditEventKind::FlowChecked,
            AuditEvent::FlowSummary { .. } => AuditEventKind::FlowSummary,
            AuditEvent::LabelChanged { .. } => AuditEventKind::LabelChanged,
            AuditEvent::PrivilegeChanged { .. } => AuditEventKind::PrivilegeChanged,
            AuditEvent::Reconfigured { .. } => AuditEventKind::Reconfigured,
            AuditEvent::PolicyFired { .. } => AuditEventKind::PolicyFired,
            AuditEvent::ChannelChanged { .. } => AuditEventKind::ChannelChanged,
            AuditEvent::DataDerived { .. } => AuditEventKind::DataDerived,
            AuditEvent::BreakGlass { .. } => AuditEventKind::BreakGlass,
            AuditEvent::MessageQuenched { .. } => AuditEventKind::MessageQuenched,
            AuditEvent::DeliveryDropped { .. } => AuditEventKind::DeliveryDropped,
            AuditEvent::ShardRestarted { .. } => AuditEventKind::ShardRestarted,
            AuditEvent::DeliveryLost { .. } => AuditEventKind::DeliveryLost,
        }
    }

    /// Whether the event records a *denied* flow.
    pub fn is_denied_flow(&self) -> bool {
        matches!(
            self,
            AuditEvent::FlowChecked { decision, .. } if decision.is_denied()
        )
    }

    /// The names of entities mentioned by the event (used to answer "all records
    /// relating to X" audit queries).
    pub fn entities(&self) -> Vec<&str> {
        match self {
            AuditEvent::FlowChecked { source, destination, data_item, .. } => {
                let mut v = vec![source.as_str(), destination.as_str()];
                if let Some(d) = data_item {
                    v.push(d.as_str());
                }
                v
            }
            AuditEvent::FlowSummary { source, destination, .. } => {
                vec![source.as_str(), destination.as_str()]
            }
            AuditEvent::LabelChanged { entity, .. } => vec![entity.as_str()],
            AuditEvent::PrivilegeChanged { entity, authority, .. } => {
                vec![entity.as_str(), authority.as_str()]
            }
            AuditEvent::Reconfigured { component, issued_by, .. } => {
                vec![component.as_str(), issued_by.as_str()]
            }
            AuditEvent::PolicyFired { policy, .. } => vec![policy.as_str()],
            AuditEvent::ChannelChanged { from, to, .. } => vec![from.as_str(), to.as_str()],
            AuditEvent::DataDerived { output, inputs, process, agent, .. } => {
                let mut v = vec![output.as_str(), process.as_str(), agent.as_str()];
                v.extend(inputs.iter().map(String::as_str));
                v
            }
            AuditEvent::BreakGlass { policy, .. } => vec![policy.as_str()],
            AuditEvent::MessageQuenched { source, destination, .. } => {
                vec![source.as_str(), destination.as_str()]
            }
            AuditEvent::DeliveryDropped { source, destination, .. } => {
                vec![source.as_str(), destination.as_str()]
            }
            AuditEvent::ShardRestarted { shard, .. } => vec![shard.as_str()],
            AuditEvent::DeliveryLost { source, destination, .. } => {
                vec![source.as_str(), destination.as_str()]
            }
        }
    }
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEvent::FlowChecked { source, destination, decision, .. } => {
                write!(f, "flow {source} -> {destination}: {decision}")
            }
            AuditEvent::FlowSummary { source, destination, allowed, denied, .. } => {
                write!(f, "flows {source} -> {destination}: {allowed} allowed, {denied} denied")
            }
            AuditEvent::LabelChanged { entity, algorithm, .. } => match algorithm {
                Some(a) => write!(f, "{entity} changed context via {a}"),
                None => write!(f, "{entity} changed context"),
            },
            AuditEvent::PrivilegeChanged { entity, tag, change, authority } => {
                write!(f, "{authority}: {change} on {tag} for {entity}")
            }
            AuditEvent::Reconfigured { component, issued_by, action, accepted } => write!(
                f,
                "{issued_by} reconfigured {component}: {action} ({})",
                if *accepted { "accepted" } else { "rejected" }
            ),
            AuditEvent::PolicyFired { policy, trigger, actions } => {
                write!(f, "policy {policy} fired on {trigger} ({actions} actions)")
            }
            AuditEvent::ChannelChanged { from, to, established, reason } => write!(
                f,
                "channel {from} -> {to} {} ({reason})",
                if *established { "established" } else { "closed" }
            ),
            AuditEvent::DataDerived { output, process, .. } => {
                write!(f, "{process} derived {output}")
            }
            AuditEvent::BreakGlass { policy, active, .. } => write!(
                f,
                "break-glass {policy} {}",
                if *active { "activated" } else { "deactivated" }
            ),
            AuditEvent::MessageQuenched { source, destination, message_type, attributes } => {
                write!(
                    f,
                    "quenched {} of {message_type} {source} -> {destination}",
                    attributes.join(", ")
                )
            }
            AuditEvent::DeliveryDropped { source, destination, message_type, dropped } => {
                write!(
                    f,
                    "dropped {dropped} {message_type} {source} -> {destination} (mailbox overflow)"
                )
            }
            AuditEvent::ShardRestarted { shard, restart, cause } => {
                write!(f, "shard {shard} restarted (restart #{restart}: {cause})")
            }
            AuditEvent::DeliveryLost { source, destination, message_type, lost, cause } => {
                match message_type {
                    Some(message_type) => {
                        write!(f, "lost {lost} {message_type} {source} -> {destination} ({cause})")
                    }
                    None => write!(f, "lost {lost} {source} -> {destination} ({cause})"),
                }
            }
        }
    }
}

/// A log record: an event plus its position, timestamp and hash-chain linkage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Position of this record in the log (0-based).
    pub id: RecordId,
    /// Simulated time (milliseconds) at which the event was recorded.
    pub at_millis: u64,
    /// The node or domain that recorded the event (for federated/distributed audit).
    pub recorded_by: String,
    /// The event itself.
    pub event: AuditEvent,
    /// Hash of the previous record (0 for the first record).
    pub previous_hash: u64,
    /// Hash of this record's contents chained with `previous_hash`.
    pub hash: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_ifc::{can_flow, SecurityContext};

    fn sample_flow_event(denied: bool) -> AuditEvent {
        let src = SecurityContext::from_names(["medical"], Vec::<&str>::new());
        let dst = if denied { SecurityContext::public() } else { src.clone() };
        AuditEvent::FlowChecked {
            source: "sensor".into(),
            destination: "analyser".into(),
            source_context: src.clone(),
            destination_context: dst.clone(),
            decision: can_flow(&src, &dst),
            data_item: Some("reading-1".into()),
        }
    }

    #[test]
    fn kind_classification() {
        assert_eq!(sample_flow_event(false).kind(), AuditEventKind::FlowChecked);
        let label_change = AuditEvent::LabelChanged {
            entity: "sanitiser".into(),
            before: SecurityContext::public(),
            after: SecurityContext::public(),
            algorithm: Some("convert".into()),
        };
        assert_eq!(label_change.kind(), AuditEventKind::LabelChanged);
        assert_eq!(
            AuditEvent::BreakGlass {
                policy: "p".into(),
                active: true,
                justification: "emergency".into()
            }
            .kind(),
            AuditEventKind::BreakGlass
        );
    }

    #[test]
    fn denied_flow_detection() {
        assert!(!sample_flow_event(false).is_denied_flow());
        assert!(sample_flow_event(true).is_denied_flow());
        assert!(!AuditEvent::PolicyFired { policy: "p".into(), trigger: "t".into(), actions: 0 }
            .is_denied_flow());
    }

    #[test]
    fn entities_extraction() {
        let e = sample_flow_event(false);
        let names = e.entities();
        assert!(names.contains(&"sensor"));
        assert!(names.contains(&"analyser"));
        assert!(names.contains(&"reading-1"));

        let derived = AuditEvent::DataDerived {
            output: "stats".into(),
            inputs: vec!["ann-reading".into(), "zeb-reading".into()],
            process: "stats-gen".into(),
            agent: "hospital".into(),
            context: SecurityContext::public(),
        };
        let names = derived.entities();
        assert_eq!(names.len(), 5);
        assert!(names.contains(&"ann-reading"));
    }

    #[test]
    fn display_is_informative() {
        let e = sample_flow_event(true);
        let s = e.to_string();
        assert!(s.contains("sensor"));
        assert!(s.contains("denied"));
        let kinds = [
            AuditEventKind::FlowChecked,
            AuditEventKind::FlowSummary,
            AuditEventKind::LabelChanged,
            AuditEventKind::PrivilegeChanged,
            AuditEventKind::Reconfigured,
            AuditEventKind::PolicyFired,
            AuditEventKind::ChannelChanged,
            AuditEventKind::DataDerived,
            AuditEventKind::BreakGlass,
        ];
        for k in kinds {
            assert!(!k.to_string().is_empty());
        }
    }

    #[test]
    fn record_id_display() {
        assert_eq!(RecordId(7).to_string(), "#7");
    }

    #[test]
    fn delivery_dropped_event() {
        let e = AuditEvent::DeliveryDropped {
            source: "sensor".into(),
            destination: "analyser".into(),
            message_type: "reading".into(),
            dropped: 12,
        };
        assert_eq!(e.kind(), AuditEventKind::DeliveryDropped);
        assert!(!e.is_denied_flow());
        assert_eq!(e.entities(), vec!["sensor", "analyser"]);
        let s = e.to_string();
        assert!(s.contains("dropped 12"));
        assert!(s.contains("overflow"));
        assert_eq!(AuditEventKind::DeliveryDropped.to_string(), "delivery-dropped");
    }

    #[test]
    fn shard_restarted_event() {
        let e = AuditEvent::ShardRestarted {
            shard: "plane-shard-2".into(),
            restart: 3,
            cause: "failpoint `shard.process` fired".into(),
        };
        assert_eq!(e.kind(), AuditEventKind::ShardRestarted);
        assert!(!e.is_denied_flow());
        assert_eq!(e.entities(), vec!["plane-shard-2"]);
        let s = e.to_string();
        assert!(s.contains("restart #3"));
        assert!(s.contains("shard.process"));
        assert_eq!(AuditEventKind::ShardRestarted.to_string(), "shard-restarted");
    }

    #[test]
    fn delivery_lost_event() {
        let e = AuditEvent::DeliveryLost {
            source: "sensor".into(),
            destination: "analyser".into(),
            message_type: Some("reading".into()),
            lost: 2,
            cause: "shard worker panicked".into(),
        };
        assert_eq!(e.kind(), AuditEventKind::DeliveryLost);
        assert!(!e.is_denied_flow());
        assert_eq!(e.entities(), vec!["sensor", "analyser"]);
        let s = e.to_string();
        assert!(s.contains("lost 2 reading"));
        assert!(s.contains("panicked"));
        assert_eq!(AuditEventKind::DeliveryLost.to_string(), "delivery-lost");

        let flow_only = AuditEvent::DeliveryLost {
            source: "sensor".into(),
            destination: "analyser".into(),
            message_type: None,
            lost: 1,
            cause: "shard degraded".into(),
        };
        assert!(flow_only.to_string().contains("lost 1 sensor -> analyser"));
    }

    #[test]
    fn flow_summary_event() {
        let e = AuditEvent::FlowSummary {
            source: "sensor".into(),
            destination: "analyser".into(),
            allowed: 41,
            denied: 1,
            window_start_millis: 10,
            window_end_millis: 500,
        };
        assert_eq!(e.kind(), AuditEventKind::FlowSummary);
        // A summary aggregates; it is not itself a denied flow record.
        assert!(!e.is_denied_flow());
        assert_eq!(e.entities(), vec!["sensor", "analyser"]);
        let s = e.to_string();
        assert!(s.contains("41 allowed"));
        assert!(s.contains("1 denied"));
    }
}
