//! # legaliot-audit
//!
//! Audit, provenance and traceability for IFC-enforced IoT systems (§8.3 and
//! Challenge 6 of Singh et al., Middleware 2016).
//!
//! "IFC checks are carried out on every attempted flow. This facilitates the creation of
//! logs recording all attempted and permitted flows. Such information provides the means
//! to demonstrate that user policies have been enforced and regulations have been
//! complied with."
//!
//! The crate provides:
//!
//! * [`AuditEvent`] — the vocabulary of auditable occurrences (flow checks, label
//!   changes, declassifications, reconfigurations, policy decisions);
//! * [`AuditLog`] — an append-only, hash-chained log with tamper-evidence, pruning and
//!   offload support (Challenge 6: "When can logs safely be pruned? Can logs be
//!   offloaded to others for distributed audit?");
//! * [`ProvenanceGraph`] — the audit graph of Fig. 11 (data items, processes, agents)
//!   built from the log, with ancestry/taint queries and DOT export;
//! * [`SegmentStore`] — crash-safe on-disk segments for retained-out records, with
//!   torn-write recovery ([`SegmentStore::recover`]) and pluggable IO fault injection,
//!   so the tamper-evident chain survives pruning *and* process crashes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod event;
pub mod log;
pub mod provenance;
pub mod segment;

pub use batch::{BatchedAppender, PruneSink};
pub use event::{AuditEvent, AuditEventKind, AuditRecord, RecordId};
pub use log::{AuditLog, ChainVerification, PruneOutcome};
pub use provenance::{NodeId, NodeKind, ProvenanceEdge, ProvenanceGraph, ProvenanceNode, Relation};
pub use segment::{
    FaultHook, FsyncHistogram, IoFault, IoOp, RecoveryReport, SegmentStats, SegmentStore,
    SegmentSummary, Truncation,
};
