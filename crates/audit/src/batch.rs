//! Batched appending into a hash-chained [`AuditLog`].
//!
//! Hash-chaining makes every [`AuditLog::record`] call serialise and hash the event
//! synchronously — fine on control paths, a bottleneck on a dataplane moving millions of
//! messages. A [`BatchedAppender`] decouples the two: enforcement threads stage events
//! in an in-memory buffer (one appender per shard, no locks), and the buffer is flushed
//! into the underlying log **in arrival order**, so the tamper-evident chain is byte-
//! for-byte identical to what unbatched recording would have produced. The cost of
//! chaining is still paid per record, but off the hot path and in cache-friendly runs.

use crate::event::AuditEvent;
use crate::log::AuditLog;

/// Buffers audit events and flushes them, in order, into an append-only hash-chained
/// [`AuditLog`].
///
/// ```
/// use legaliot_audit::{AuditEvent, BatchedAppender};
/// let mut appender = BatchedAppender::new("shard-0", 128);
/// appender.append(
///     AuditEvent::PolicyFired { policy: "p".into(), trigger: "t".into(), actions: 1 },
///     10,
/// );
/// assert_eq!(appender.buffered(), 1);
/// let log = appender.into_log(); // final flush included
/// assert_eq!(log.len(), 1);
/// assert!(log.verify_chain().is_intact());
/// ```
#[derive(Debug)]
pub struct BatchedAppender {
    log: AuditLog,
    buffer: Vec<(AuditEvent, u64)>,
    capacity: usize,
    retention: Option<usize>,
}

impl BatchedAppender {
    /// Creates an appender flushing into a fresh log recorded by `authority`, auto-
    /// flushing whenever `capacity` events are buffered. A capacity of 1 degenerates to
    /// unbatched recording (useful as an experimental baseline).
    pub fn new(authority: impl Into<String>, capacity: usize) -> Self {
        Self::over(AuditLog::new(authority), capacity)
    }

    /// Creates an appender flushing into an existing log (e.g. one resumed after an
    /// offload), preserving its chain anchor.
    pub fn over(log: AuditLog, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BatchedAppender { log, buffer: Vec::with_capacity(capacity), capacity, retention: None }
    }

    /// Bounds in-memory retention: once the log exceeds `2 × keep` records after a
    /// flush, it is pruned back to the newest `keep` via [`AuditLog::retain_recent`]
    /// (the chain stays anchored and verifiable; the hysteresis keeps pruning
    /// amortised O(1) per record). `None` (the default) retains everything.
    pub fn with_retention(mut self, keep: Option<usize>) -> Self {
        self.retention = keep.map(|k| k.max(1));
        self
    }

    /// Stages an event; flushes the whole buffer into the log once `capacity` events
    /// are pending.
    pub fn append(&mut self, event: AuditEvent, at_millis: u64) {
        self.buffer.push((event, at_millis));
        if self.buffer.len() >= self.capacity {
            self.flush();
        }
    }

    /// Writes every buffered event into the log, in arrival order, then applies the
    /// retention bound (if configured).
    pub fn flush(&mut self) {
        for (event, at) in self.buffer.drain(..) {
            self.log.record(event, at);
        }
        if let Some(keep) = self.retention {
            if self.log.len() >= keep.saturating_mul(2) {
                self.log.retain_recent(keep);
            }
        }
    }

    /// Number of events staged but not yet written to the log.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The configured auto-flush threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying log as flushed so far. Staged events ([`Self::buffered`]) are not
    /// visible here until [`Self::flush`] runs.
    pub fn log(&self) -> &AuditLog {
        &self.log
    }

    /// Flushes any staged events and returns the completed log.
    pub fn into_log(mut self) -> AuditLog {
        self.flush();
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AuditEventKind;

    fn event(n: usize) -> AuditEvent {
        AuditEvent::PolicyFired { policy: format!("p{n}"), trigger: "t".into(), actions: n }
    }

    #[test]
    fn auto_flush_at_capacity_preserves_order_and_chain() {
        let mut appender = BatchedAppender::new("shard-0", 4);
        for n in 0..10 {
            appender.append(event(n), n as u64);
        }
        // 10 events, capacity 4: two auto-flushes have happened, two events staged.
        assert_eq!(appender.log().len(), 8);
        assert_eq!(appender.buffered(), 2);
        assert_eq!(appender.capacity(), 4);
        let log = appender.into_log();
        assert_eq!(log.len(), 10);
        assert!(log.verify_chain().is_intact());
        // Order is arrival order.
        let times: Vec<u64> = log.records().iter().map(|r| r.at_millis).collect();
        assert_eq!(times, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn batched_chain_equals_unbatched_chain() {
        let mut unbatched = AuditLog::new("node");
        let mut appender = BatchedAppender::new("node", 8);
        for n in 0..20 {
            unbatched.record(event(n), n as u64);
            appender.append(event(n), n as u64);
        }
        let batched = appender.into_log();
        // Identical inputs produce the identical tamper-evident chain.
        assert_eq!(batched, unbatched);
    }

    #[test]
    fn over_resumes_an_existing_log() {
        let mut log = AuditLog::new("gateway");
        log.record(event(0), 0);
        let mut appender = BatchedAppender::over(log, 2);
        appender.append(event(1), 1);
        appender.flush();
        let log = appender.into_log();
        assert_eq!(log.len(), 2);
        assert!(log.verify_chain().is_intact());
        assert_eq!(log.of_kind(AuditEventKind::PolicyFired).count(), 2);
    }

    #[test]
    fn retention_bounds_the_log_after_flushes() {
        let mut appender = BatchedAppender::new("n", 4).with_retention(Some(6));
        for n in 0..40 {
            appender.append(event(n), n as u64);
        }
        let log = appender.into_log();
        assert!(log.len() <= 12, "retention keeps the log near 2x its bound, got {}", log.len());
        assert!(log.verify_chain().is_intact());
        // The newest records survive.
        assert_eq!(log.records().last().unwrap().at_millis, 39);
    }

    #[test]
    fn capacity_one_is_unbatched() {
        let mut appender = BatchedAppender::new("n", 0); // clamped to 1
        appender.append(event(0), 0);
        assert_eq!(appender.buffered(), 0);
        assert_eq!(appender.log().len(), 1);
    }
}
