//! Batched appending into a hash-chained [`AuditLog`].
//!
//! Hash-chaining makes every [`AuditLog::record`] call serialise and hash the event
//! synchronously — fine on control paths, a bottleneck on a dataplane moving millions of
//! messages. A [`BatchedAppender`] decouples the two: enforcement threads stage events
//! in an in-memory buffer (one appender per shard, no locks), and the buffer is flushed
//! into the underlying log **in arrival order**, so the tamper-evident chain is byte-
//! for-byte identical to what unbatched recording would have produced. The cost of
//! chaining is still paid per record, but off the hot path and in cache-friendly runs.

use std::fmt;

use crate::event::{AuditEvent, AuditRecord};
use crate::log::AuditLog;

/// A callback receiving records at the moment retention prunes them out of the
/// in-memory log — the last point at which they are observable. A persistence layer
/// installs one to stream retained-out history to durable storage; because the sink
/// runs *before* the records are discarded, no record can be both pruned and
/// unpersisted. `Sync` is required so appenders can live behind shared locks; sinks
/// are still only ever *called* under `&mut self`.
pub type PruneSink = Box<dyn FnMut(&[AuditRecord]) + Send + Sync>;

/// Buffers audit events and flushes them, in order, into an append-only hash-chained
/// [`AuditLog`].
///
/// ```
/// use legaliot_audit::{AuditEvent, BatchedAppender};
/// let mut appender = BatchedAppender::new("shard-0", 128);
/// appender.append(
///     AuditEvent::PolicyFired { policy: "p".into(), trigger: "t".into(), actions: 1 },
///     10,
/// );
/// assert_eq!(appender.buffered(), 1);
/// let log = appender.into_log(); // final flush included
/// assert_eq!(log.len(), 1);
/// assert!(log.verify_chain().is_intact());
/// ```
pub struct BatchedAppender {
    log: AuditLog,
    buffer: Vec<(AuditEvent, u64)>,
    capacity: usize,
    retention: Option<usize>,
    prune_sink: Option<PruneSink>,
}

impl fmt::Debug for BatchedAppender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchedAppender")
            .field("log", &self.log)
            .field("buffered", &self.buffer.len())
            .field("capacity", &self.capacity)
            .field("retention", &self.retention)
            .field("prune_sink", &self.prune_sink.is_some())
            .finish()
    }
}

impl BatchedAppender {
    /// Creates an appender flushing into a fresh log recorded by `authority`, auto-
    /// flushing whenever `capacity` events are buffered. A capacity of 1 degenerates to
    /// unbatched recording (useful as an experimental baseline).
    pub fn new(authority: impl Into<String>, capacity: usize) -> Self {
        Self::over(AuditLog::new(authority), capacity)
    }

    /// Creates an appender flushing into an existing log (e.g. one resumed after an
    /// offload), preserving its chain anchor.
    pub fn over(log: AuditLog, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BatchedAppender {
            log,
            buffer: Vec::with_capacity(capacity),
            capacity,
            retention: None,
            prune_sink: None,
        }
    }

    /// Bounds in-memory retention: once the log exceeds `2 × keep` records after a
    /// flush, it is pruned back to the newest `keep` via [`AuditLog::retain_recent`]
    /// (the chain stays anchored and verifiable; the hysteresis keeps pruning
    /// amortised O(1) per record). `None` (the default) retains everything.
    pub fn with_retention(mut self, keep: Option<usize>) -> Self {
        self.retention = keep.map(|k| k.max(1));
        self
    }

    /// Installs a [`PruneSink`] invoked with every record retention prunes out, at the
    /// moment of pruning and in chain order — so a persistence layer sees each record
    /// before it stops being observable.
    pub fn with_prune_sink(
        mut self,
        sink: impl FnMut(&[AuditRecord]) + Send + Sync + 'static,
    ) -> Self {
        self.prune_sink = Some(Box::new(sink));
        self
    }

    /// Removes and returns the installed prune sink, if any. Supervisors use this to
    /// carry the sink across a shard restart (the log is rebuilt via [`Self::over`],
    /// which starts without a sink).
    pub fn take_prune_sink(&mut self) -> Option<PruneSink> {
        self.prune_sink.take()
    }

    /// Installs (or replaces) the prune sink on an existing appender.
    pub fn set_prune_sink(&mut self, sink: Option<PruneSink>) {
        self.prune_sink = sink;
    }

    /// Stages an event; flushes the whole buffer into the log once `capacity` events
    /// are pending.
    pub fn append(&mut self, event: AuditEvent, at_millis: u64) {
        self.buffer.push((event, at_millis));
        if self.buffer.len() >= self.capacity {
            self.flush();
        }
    }

    /// Writes every buffered event into the log, in arrival order, then applies the
    /// retention bound (if configured).
    pub fn flush(&mut self) {
        for (event, at) in self.buffer.drain(..) {
            self.log.record(event, at);
        }
        if let Some(keep) = self.retention {
            if self.log.len() >= keep.saturating_mul(2) {
                // Hand pruned records to the sink *before* they are dropped: the sink
                // observing them here is what makes persistence loss-free by
                // construction.
                let (_, pruned) = self.log.retain_recent_taking(keep);
                if let (Some(sink), false) = (self.prune_sink.as_mut(), pruned.is_empty()) {
                    sink(&pruned);
                }
            }
        }
    }

    /// Number of events staged but not yet written to the log.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The configured auto-flush threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying log as flushed so far. Staged events ([`Self::buffered`]) are not
    /// visible here until [`Self::flush`] runs.
    pub fn log(&self) -> &AuditLog {
        &self.log
    }

    /// Flushes any staged events and returns the completed log.
    pub fn into_log(mut self) -> AuditLog {
        self.flush();
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AuditEventKind;

    fn event(n: usize) -> AuditEvent {
        AuditEvent::PolicyFired { policy: format!("p{n}"), trigger: "t".into(), actions: n }
    }

    #[test]
    fn auto_flush_at_capacity_preserves_order_and_chain() {
        let mut appender = BatchedAppender::new("shard-0", 4);
        for n in 0..10 {
            appender.append(event(n), n as u64);
        }
        // 10 events, capacity 4: two auto-flushes have happened, two events staged.
        assert_eq!(appender.log().len(), 8);
        assert_eq!(appender.buffered(), 2);
        assert_eq!(appender.capacity(), 4);
        let log = appender.into_log();
        assert_eq!(log.len(), 10);
        assert!(log.verify_chain().is_intact());
        // Order is arrival order.
        let times: Vec<u64> = log.records().iter().map(|r| r.at_millis).collect();
        assert_eq!(times, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn batched_chain_equals_unbatched_chain() {
        let mut unbatched = AuditLog::new("node");
        let mut appender = BatchedAppender::new("node", 8);
        for n in 0..20 {
            unbatched.record(event(n), n as u64);
            appender.append(event(n), n as u64);
        }
        let batched = appender.into_log();
        // Identical inputs produce the identical tamper-evident chain.
        assert_eq!(batched, unbatched);
    }

    #[test]
    fn over_resumes_an_existing_log() {
        let mut log = AuditLog::new("gateway");
        log.record(event(0), 0);
        let mut appender = BatchedAppender::over(log, 2);
        appender.append(event(1), 1);
        appender.flush();
        let log = appender.into_log();
        assert_eq!(log.len(), 2);
        assert!(log.verify_chain().is_intact());
        assert_eq!(log.of_kind(AuditEventKind::PolicyFired).count(), 2);
    }

    #[test]
    fn retention_bounds_the_log_after_flushes() {
        let mut appender = BatchedAppender::new("n", 4).with_retention(Some(6));
        for n in 0..40 {
            appender.append(event(n), n as u64);
        }
        let log = appender.into_log();
        assert!(log.len() <= 12, "retention keeps the log near 2x its bound, got {}", log.len());
        assert!(log.verify_chain().is_intact());
        // The newest records survive.
        assert_eq!(log.records().last().unwrap().at_millis, 39);
    }

    #[test]
    fn no_record_is_both_pruned_and_unpersisted() {
        use std::sync::{Arc, Mutex};

        let persisted: Arc<Mutex<Vec<crate::AuditRecord>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_target = Arc::clone(&persisted);
        let mut appender =
            BatchedAppender::new("n", 4).with_retention(Some(6)).with_prune_sink(move |records| {
                sink_target.lock().unwrap().extend(records.iter().cloned())
            });
        for n in 0..40 {
            appender.append(event(n), n as u64);
        }
        let log = appender.into_log();
        assert!(log.verify_chain().is_intact());

        // Every record ever appended is observable somewhere: either it survived
        // retention (still in the log) or the sink received it at prune time. The two
        // sets are disjoint and their concatenation is the full chain from genesis.
        let mut all = persisted.lock().unwrap().clone();
        let sunk = all.len();
        assert!(sunk > 0, "retention must have pruned something");
        all.extend(log.records().iter().cloned());
        assert_eq!(all.len(), 40, "pruned + retained must cover every appended record");
        assert!(AuditLog::verify_records(0, &all).is_intact());
        let ids: Vec<u64> = all.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn debug_shows_sink_presence_not_contents() {
        let appender = BatchedAppender::new("n", 2).with_prune_sink(|_| {});
        let s = format!("{appender:?}");
        assert!(s.contains("prune_sink: true"));
    }

    #[test]
    fn capacity_one_is_unbatched() {
        let mut appender = BatchedAppender::new("n", 0); // clamped to 1
        appender.append(event(0), 0);
        assert_eq!(appender.buffered(), 0);
        assert_eq!(appender.log().len(), 1);
    }
}
