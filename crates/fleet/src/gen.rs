//! The seeded fleet generator.
//!
//! Everything — device populations, labels, schemas, policies, the churn and
//! publish script — is a pure function of [`FleetConfig`]: the same seed
//! regenerates a byte-identical fleet (see [`crate::spec::Fleet::manifest`]),
//! which is how conformance failures are reproduced from the seed printed in
//! the assertion message.

use std::collections::BTreeMap;

use legaliot_iot::{catalog, DeviceArchetype, ThingKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{
    AttrSpec, CondSpec, ControlEvent, Deployment, Fleet, FleetConfig, KeyValue, PublishSpec, Round,
    RuleSpec, SchemaSpec, SubjectSpec, ThingSpec,
};
use legaliot_middleware::AttributeKind;

/// Mutable generation state for one deployment while the script is written.
struct DeploymentState {
    name: String,
    /// Alive publishers: `(endpoint, message type, owner)`.
    devices: Vec<(String, String, String)>,
    /// Consumers: `(endpoint, secrecy, integrity)` — contexts tracked so
    /// `SetContext` events can vary secrecy while preserving integrity.
    consumers: Vec<(String, Vec<String>, Vec<String>)>,
    /// Message types with registered schemas (what joiners may produce).
    message_types: Vec<String>,
    /// Endpoints ever scripted to leave (never deregistered twice).
    departed: Vec<String>,
    /// Current isolation states, for toggling.
    isolated: BTreeMap<String, bool>,
    lockdown: bool,
    break_glass: bool,
    quarantine: bool,
    owners: [String; 2],
}

fn base_tag(d: &str) -> String {
    format!("{d}.data")
}
fn pii_tag(d: &str) -> String {
    format!("{d}.pii")
}
fn trusted_tag(d: &str) -> String {
    format!("{d}.trusted")
}
fn certified_tag(d: &str) -> String {
    format!("{d}.certified")
}

/// Generates a fleet from the knobs. Deterministic: one seeded RNG stream
/// drives every draw in a fixed order.
pub fn generate(config: FleetConfig) -> Fleet {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut deployments = Vec::with_capacity(config.deployments);
    let mut states = Vec::with_capacity(config.deployments);
    for index in 0..config.deployments {
        let (deployment, state) = generate_deployment(index, &mut rng);
        deployments.push(deployment);
        states.push(state);
    }
    // A single global clock makes every `(from, to, at_millis)` delivery key
    // unique across the whole run.
    let mut clock = 1_000u64;
    let rounds = (0..config.rounds.max(1))
        .map(|round| generate_round(round, &mut states, &mut clock, &mut rng))
        .collect();
    Fleet { config, deployments, rounds }
}

fn generate_deployment(index: usize, rng: &mut StdRng) -> (Deployment, DeploymentState) {
    let profile = catalog::PROFILES[index % catalog::PROFILES.len()];
    let d = format!("d{index:04}");
    let owners = [format!("{d}-op"), format!("{d}-guest")];
    let base = base_tag(&d);
    let pii = pii_tag(&d);
    let trusted = trusted_tag(&d);
    let certified = certified_tag(&d);
    let node = format!("{d}-node");

    let mut things = Vec::new();
    let mut schemas = Vec::new();
    let mut devices = Vec::new();

    // Devices: each archetype included with probability 0.75, at least two.
    let mut picks: Vec<&DeviceArchetype> =
        profile.devices.iter().filter(|_| rng.gen_bool(0.75)).collect();
    if picks.len() < 2 {
        picks = profile.devices.iter().take(2).collect();
    }
    for archetype in picks {
        let name = format!("{d}-{}", archetype.stem);
        let message_type = format!("{d}.{}", archetype.message_stem);
        let owner = if rng.gen_bool(0.3) { owners[1].clone() } else { owners[0].clone() };
        things.push(ThingSpec {
            name: name.clone(),
            kind: archetype.kind,
            owner: owner.clone(),
            node: node.clone(),
            secrecy: vec![base.clone()],
            integrity: vec![trusted.clone()],
            produces: vec![message_type.clone()],
        });
        let mut attrs = vec![
            AttrSpec { name: "value".into(), kind: AttributeKind::Float, secrecy: vec![] },
            AttrSpec { name: "unit".into(), kind: AttributeKind::Text, secrecy: vec![] },
            AttrSpec {
                name: "subject-id".into(),
                kind: AttributeKind::Text,
                secrecy: vec![pii.clone()],
            },
        ];
        if rng.gen_bool(0.4) {
            let kind = match rng.gen_range(0u32..3) {
                0 => AttributeKind::Text,
                1 => AttributeKind::Integer,
                _ => AttributeKind::Bool,
            };
            let secrecy = if rng.gen_bool(0.5) { vec![pii.clone()] } else { vec![] };
            attrs.push(AttrSpec { name: "detail".into(), kind, secrecy });
        }
        schemas.push(SchemaSpec { message_type: message_type.clone(), attrs });
        devices.push((name, message_type, owner));
    }

    // Consumers: first hub always, the rest with probability 0.6, plus the
    // optional archive (holds everything) and auditor (requires an integrity
    // tag no device holds, so its edges are IFC-refused at admission).
    let mut consumers = Vec::new();
    for (slot, archetype) in profile.hubs.iter().enumerate() {
        if slot > 0 && !rng.gen_bool(0.6) {
            continue;
        }
        let name = format!("{d}-{}", archetype.stem);
        let mut secrecy = vec![base.clone()];
        if rng.gen_bool(0.5) {
            secrecy.push(pii.clone());
        }
        let integrity = if rng.gen_bool(0.4) { vec![trusted.clone()] } else { vec![] };
        things.push(ThingSpec {
            name: name.clone(),
            kind: archetype.kind,
            owner: owners[0].clone(),
            node: node.clone(),
            secrecy: secrecy.clone(),
            integrity: integrity.clone(),
            produces: vec![],
        });
        consumers.push((name, secrecy, integrity));
    }
    if rng.gen_bool(0.3) {
        let name = format!("{d}-archive");
        let secrecy = vec![base.clone(), pii.clone()];
        things.push(ThingSpec {
            name: name.clone(),
            kind: ThingKind::CloudService,
            owner: owners[0].clone(),
            node: node.clone(),
            secrecy: secrecy.clone(),
            integrity: vec![],
            produces: vec![],
        });
        consumers.push((name, secrecy, vec![]));
    }
    if rng.gen_bool(0.25) {
        let name = format!("{d}-auditor");
        let secrecy = vec![base.clone(), pii.clone()];
        let integrity = vec![certified.clone(), trusted.clone()];
        things.push(ThingSpec {
            name: name.clone(),
            kind: ThingKind::Application,
            owner: owners[0].clone(),
            node: node.clone(),
            secrecy: secrecy.clone(),
            integrity: integrity.clone(),
            produces: vec![],
        });
        consumers.push((name, secrecy, integrity));
    }

    // Edges: every device feeds each consumer with probability 0.7, and at
    // least its first consumer, so no publisher is generated dead.
    let mut edges = Vec::new();
    for (device, _, _) in &devices {
        let mut wired = false;
        for (consumer, _, _) in &consumers {
            if rng.gen_bool(0.7) {
                edges.push((device.clone(), consumer.clone()));
                wired = true;
            }
        }
        if !wired {
            edges.push((device.clone(), consumers[0].0.clone()));
        }
    }

    // Context keys and the policies that read them.
    let lockdown_key = format!("{d}.lockdown");
    let break_glass_key = format!("{d}.break-glass");
    let quarantine_key = format!("{d}.quarantine");
    let load_key = format!("{d}.load");
    let mut initial_keys = BTreeMap::new();
    initial_keys.insert(lockdown_key.clone(), KeyValue::Bool(false));
    initial_keys.insert(break_glass_key.clone(), KeyValue::Bool(false));
    initial_keys.insert(quarantine_key.clone(), KeyValue::Bool(false));
    initial_keys.insert(load_key.clone(), KeyValue::Number(rng.gen_range(10u32..90) as f64));

    let mut rules = Vec::new();
    for (consumer, _, _) in &consumers {
        let subject = if rng.gen_bool(0.8) {
            SubjectSpec::Anyone
        } else {
            SubjectSpec::Principal(owners[0].clone())
        };
        let condition = match rng.gen_range(0u32..4) {
            0 => CondSpec::Always,
            1 => CondSpec::IsFalse(lockdown_key.clone()),
            2 => CondSpec::AnyOf(vec![
                CondSpec::IsFalse(lockdown_key.clone()),
                CondSpec::IsTrue(break_glass_key.clone()),
            ]),
            _ => CondSpec::NumberBelow(load_key.clone(), 100.0),
        };
        rules.push(RuleSpec { component: consumer.clone(), subject, allow: true, condition });
        if rng.gen_bool(0.25) {
            rules.push(RuleSpec {
                component: consumer.clone(),
                subject: SubjectSpec::Principal(owners[1].clone()),
                allow: false,
                condition: CondSpec::IsTrue(quarantine_key.clone()),
            });
        }
    }

    let message_types = schemas.iter().map(|s| s.message_type.clone()).collect();
    let deployment = Deployment {
        name: d.clone(),
        kind: profile.kind,
        things,
        schemas,
        edges,
        rules,
        initial_keys,
        secrecy_universe: vec![base, pii],
        integrity_universe: vec![trusted, certified],
    };
    let state = DeploymentState {
        name: d,
        devices,
        consumers,
        message_types,
        departed: Vec::new(),
        isolated: BTreeMap::new(),
        lockdown: false,
        break_glass: false,
        quarantine: false,
        owners,
    };
    (deployment, state)
}

fn generate_round(
    round: usize,
    states: &mut [DeploymentState],
    clock: &mut u64,
    rng: &mut StdRng,
) -> Round {
    let mut events = Vec::new();
    if round > 0 {
        for state in states.iter_mut() {
            churn_deployment(round, state, clock, rng, &mut events);
        }
    }
    let mut publishes = Vec::new();
    for state in states.iter() {
        for (device, message_type, _) in &state.devices {
            if !rng.gen_bool(0.7) {
                continue;
            }
            let at_millis = *clock;
            *clock += 1;
            let extra_secrecy =
                if rng.gen_bool(0.15) { vec![pii_tag(&state.name)] } else { Vec::new() };
            publishes.push(PublishSpec {
                publisher: device.clone(),
                message_type: message_type.clone(),
                at_millis,
                value: rng.gen_range(0u32..1000) as f64 / 10.0,
                subject_id: rng.gen_range(0u64..10_000),
                extra_secrecy,
            });
        }
    }
    Round { events, publishes }
}

fn churn_deployment(
    round: usize,
    state: &mut DeploymentState,
    clock: &mut u64,
    rng: &mut StdRng,
    events: &mut Vec<(u64, ControlEvent)>,
) {
    let d = state.name.clone();
    let mut push = |clock: &mut u64, event: ControlEvent| {
        let at = *clock;
        *clock += 1;
        events.push((at, event));
    };

    if rng.gen_bool(0.10) {
        state.lockdown = !state.lockdown;
        push(
            clock,
            ControlEvent::SetKey {
                key: format!("{d}.lockdown"),
                value: KeyValue::Bool(state.lockdown),
            },
        );
    }
    if rng.gen_bool(0.06) {
        state.break_glass = !state.break_glass;
        push(
            clock,
            ControlEvent::SetKey {
                key: format!("{d}.break-glass"),
                value: KeyValue::Bool(state.break_glass),
            },
        );
    }
    if rng.gen_bool(0.10) {
        push(
            clock,
            ControlEvent::SetKey {
                key: format!("{d}.load"),
                value: KeyValue::Number(rng.gen_range(40u32..160) as f64),
            },
        );
    }
    if rng.gen_bool(0.06) {
        state.quarantine = !state.quarantine;
        push(
            clock,
            ControlEvent::SetKey {
                key: format!("{d}.quarantine"),
                value: KeyValue::Bool(state.quarantine),
            },
        );
    }
    // Device context flips: gain pii (denied to consumers not holding it),
    // drop the trusted integrity tag (denied to consumers requiring it), or
    // restore the initial labels.
    if rng.gen_bool(0.08) && !state.devices.is_empty() {
        let (device, _, _) = &state.devices[rng.gen_range(0..state.devices.len())];
        let (secrecy, integrity) = match rng.gen_range(0u32..3) {
            0 => (vec![base_tag(&d), pii_tag(&d)], vec![trusted_tag(&d)]),
            1 => (vec![base_tag(&d)], vec![]),
            _ => (vec![base_tag(&d)], vec![trusted_tag(&d)]),
        };
        push(clock, ControlEvent::SetContext { endpoint: device.clone(), secrecy, integrity });
    }
    // Consumer secrecy flips (integrity preserved): gaining/losing pii changes
    // what gets quenched and whether pii-tagged messages flow at all.
    if rng.gen_bool(0.06) && !state.consumers.is_empty() {
        let slot = rng.gen_range(0..state.consumers.len());
        let has_pii = state.consumers[slot].1.iter().any(|tag| tag == &pii_tag(&d));
        let secrecy = if has_pii { vec![base_tag(&d)] } else { vec![base_tag(&d), pii_tag(&d)] };
        state.consumers[slot].1 = secrecy.clone();
        let integrity = state.consumers[slot].2.clone();
        push(
            clock,
            ControlEvent::SetContext {
                endpoint: state.consumers[slot].0.clone(),
                secrecy,
                integrity,
            },
        );
    }
    // Isolation toggles on any live endpoint.
    if rng.gen_bool(0.05) {
        let device_count = state.devices.len();
        let total = device_count + state.consumers.len();
        if total > 0 {
            let pick = rng.gen_range(0..total);
            let endpoint = if pick < device_count {
                state.devices[pick].0.clone()
            } else {
                state.consumers[pick - device_count].0.clone()
            };
            let entry = state.isolated.entry(endpoint.clone()).or_insert(false);
            *entry = !*entry;
            let isolated = *entry;
            push(clock, ControlEvent::SetIsolated { endpoint, isolated });
        }
    }
    // Policy updates mid-run.
    if rng.gen_bool(0.05) && !state.consumers.is_empty() {
        let consumer = state.consumers[rng.gen_range(0..state.consumers.len())].0.clone();
        let rule = if rng.gen_bool(0.5) {
            RuleSpec {
                component: consumer,
                subject: SubjectSpec::Anyone,
                allow: false,
                condition: CondSpec::IsTrue(format!("{d}.lockdown")),
            }
        } else {
            RuleSpec {
                component: consumer,
                subject: SubjectSpec::Anyone,
                allow: true,
                condition: CondSpec::Always,
            }
        };
        push(clock, ControlEvent::AddRule(rule));
    }
    // Leaves: devices only (consumer mailboxes stay open all run), never the
    // same endpoint twice, and never below two publishers.
    if rng.gen_bool(0.04) && state.devices.len() > 2 {
        let slot = rng.gen_range(0..state.devices.len());
        let (device, _, _) = state.devices.remove(slot);
        state.isolated.remove(&device);
        state.departed.push(device.clone());
        push(clock, ControlEvent::Leave { endpoint: device });
    }
    // Joins: a new device producing an already-registered message type, wired
    // to existing consumers.
    if rng.gen_bool(0.04) && !state.consumers.is_empty() && !state.message_types.is_empty() {
        let message_type = state.message_types[rng.gen_range(0..state.message_types.len())].clone();
        let name = format!("{d}-joiner-r{round}-{}", state.departed.len() + state.devices.len());
        let owner = state.owners[0].clone();
        let thing = ThingSpec {
            name: name.clone(),
            kind: ThingKind::Sensor,
            owner: owner.clone(),
            node: format!("{d}-node"),
            secrecy: vec![base_tag(&d)],
            integrity: vec![trusted_tag(&d)],
            produces: vec![message_type.clone()],
        };
        let mut edges = Vec::new();
        for (consumer, _, _) in &state.consumers {
            if rng.gen_bool(0.6) {
                edges.push((name.clone(), consumer.clone()));
            }
        }
        if edges.is_empty() {
            edges.push((name.clone(), state.consumers[0].0.clone()));
        }
        state.devices.push((name, message_type, owner));
        push(clock, ControlEvent::Join { thing, edges });
    }
}
