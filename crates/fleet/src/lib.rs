//! # legaliot-fleet
//!
//! Seeded fleet generation and a model-based enforcement oracle, the scale
//! harness for the dataplane: thousands of heterogeneous deployments (homes,
//! hospital wards, vehicle fleets from the `legaliot-iot` catalog), each with
//! its own endpoints, schemas, policies, secrecy labels and churn script —
//! joins, leaves, context flips, policy updates, break-glass — plus a slow,
//! obviously-correct reference ([`model::FleetModel`]) that computes exactly
//! which subscriber must receive which post-quench message.
//!
//! The pieces compose differentially:
//!
//! * [`generate`] synthesizes a [`spec::Fleet`] from a seed — deterministic
//!   down to the byte ([`spec::Fleet::manifest`]);
//! * [`predict`] walks the fleet's script through the reference model and
//!   returns the exact expected deliveries, denials and admission outcomes;
//! * [`run_fleet`] installs and drives the same fleet on a real
//!   [`legaliot_dataplane::Dataplane`] (any shard count, payload mode or
//!   fault-injection registry) and returns what actually happened, keyed
//!   identically.
//!
//! `tests/fleet_conformance.rs` at the workspace root asserts the two agree
//! record-for-record at 1000+ deployments; any failure message carries the
//! reproducing seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod harness;
pub mod model;
pub mod spec;

pub use gen::generate;
pub use harness::{run_fleet, run_fleet_partial, LostDelivery, PartialRun, RunOutcome};
pub use model::{predict, AdmissionOutcome, FleetModel, PredictedOutcome, Prediction};
pub use spec::{
    AttrSpec, CondSpec, ControlEvent, Deployment, Fleet, FleetConfig, KeyValue, PublishSpec, Round,
    RuleSpec, SchemaSpec, SubjectSpec, ThingSpec,
};

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_dataplane::DataplaneConfig;
    use model::PredictedOutcome;

    fn small_config(seed: u64) -> FleetConfig {
        FleetConfig { seed, deployments: 40, rounds: 3 }
    }

    #[test]
    fn same_seed_regenerates_byte_identical_fleet() {
        let a = generate(small_config(7));
        let b = generate(small_config(7));
        assert_eq!(a.manifest(), b.manifest());
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_predicts_identical_delivery_set() {
        let fleet = generate(small_config(7));
        let first = predict(&fleet);
        let second = predict(&generate(small_config(7)));
        assert_eq!(first.outcomes, second.outcomes);
        assert_eq!(first.admissions, second.admissions);
        assert_eq!(
            (first.published, first.delivered, first.denied),
            (second.published, second.delivered, second.denied)
        );
    }

    #[test]
    fn different_seeds_generate_materially_different_fleets() {
        let a = generate(small_config(7));
        let b = generate(small_config(8));
        assert_ne!(a.manifest(), b.manifest());
        let a_shape = (a.endpoint_count(), a.edge_count(), a.publish_count(), a.schema_diversity());
        let b_shape = (b.endpoint_count(), b.edge_count(), b.publish_count(), b.schema_diversity());
        assert_ne!(a_shape, b_shape, "seeds 7 and 8 must differ in fleet shape");
        assert!(a.schema_diversity() > 1, "schemas must vary within one fleet");
    }

    #[test]
    fn fleet_exercises_every_outcome_class() {
        // The generated policy/label mix must produce admitted AND refused
        // edges, delivered AND denied messages, and quenched attributes —
        // otherwise conformance at scale proves less than it claims.
        let fleet = generate(FleetConfig { seed: 11, deployments: 60, rounds: 4 });
        let prediction = predict(&fleet);
        assert!(prediction.delivered > 0, "no predicted deliveries");
        assert!(prediction.denied > 0, "no predicted denials");
        let admitted = prediction.admissions.iter().filter(|(_, _, o)| o.admitted()).count();
        assert!(admitted > 0, "no admitted edges");
        assert!(admitted < prediction.admissions.len(), "no refused edges");
        let quenched = prediction.outcomes.values().any(|outcome| match outcome {
            PredictedOutcome::Delivered(message) => !message.attributes.contains_key("subject-id"),
            PredictedOutcome::Denied => false,
        });
        assert!(quenched, "no delivery with a quenched attribute");
        let intact = prediction.outcomes.values().any(|outcome| match outcome {
            PredictedOutcome::Delivered(message) => message.attributes.contains_key("subject-id"),
            PredictedOutcome::Denied => false,
        });
        assert!(intact, "no delivery kept its sensitive attribute");
    }

    #[test]
    fn small_fleet_conforms_end_to_end() {
        // A quick in-crate differential check so oracle or harness regressions
        // surface here before the workspace-level 1000-deployment suite runs.
        let fleet = generate(FleetConfig { seed: 5, deployments: 12, rounds: 3 });
        let prediction = predict(&fleet);
        let outcome = run_fleet(&fleet, "fleet-smoke", DataplaneConfig::default())
            .expect("fleet run succeeds");
        assert_eq!(outcome.duplicate_deliveries, 0);
        assert_eq!(outcome.stats.published, prediction.published);
        assert_eq!(outcome.stats.delivered, prediction.delivered);
        assert_eq!(outcome.stats.denied, prediction.denied);
        assert_eq!(outcome.stats.missing_endpoint, 0);
        assert_eq!(outcome.stats.deliveries_lost, 0);
        assert!(outcome.chains_intact);
        let expected: std::collections::BTreeMap<_, _> = prediction
            .outcomes
            .iter()
            .filter_map(|(key, outcome)| match outcome {
                PredictedOutcome::Delivered(message) => Some((key.clone(), (**message).clone())),
                PredictedOutcome::Denied => None,
            })
            .collect();
        assert_eq!(outcome.observed, expected);
        let predicted_admissions: Vec<(String, String, bool)> = prediction
            .admissions
            .iter()
            .map(|(from, to, outcome)| (from.clone(), to.clone(), outcome.admitted()))
            .collect();
        assert_eq!(outcome.admissions, predicted_admissions);
    }
}
