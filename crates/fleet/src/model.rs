//! The model-based enforcement oracle.
//!
//! [`FleetModel`] is a slow, obviously-correct reference interpreter for the
//! fleet IR: plain `BTreeMap`s and string sets, no caches, no sharding, no
//! engine types on the decision path. Walking a [`Fleet`]'s script through it
//! yields a [`Prediction`] of exactly which subscriber must observe which
//! post-quench message — what `tests/fleet_conformance.rs` differentially
//! checks the dataplane against.
//!
//! The model mirrors the engine's documented per-delivery sequence: current
//! directory state → isolation (either side) → per-message access control on
//! the destination's rules (default-deny, deny-overrides) → IFC over the
//! effective source context (sender secrecy joined with message-level tags;
//! integrity from the sender alone) → per-attribute source quenching against
//! the destination's secrecy. Admission at subscribe time runs the same
//! sequence minus quenching.

use std::collections::{BTreeMap, BTreeSet};

use legaliot_middleware::Message;

use crate::spec::{
    ControlEvent, Deployment, Fleet, KeyValue, PublishSpec, RuleSpec, SchemaSpec, SubjectSpec,
};

/// An endpoint's current state in the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointState {
    /// Secrecy tags currently held.
    pub secrecy: BTreeSet<String>,
    /// Integrity tags currently held.
    pub integrity: BTreeSet<String>,
    /// Whether the endpoint is isolated.
    pub isolated: bool,
    /// The owning principal's name.
    pub owner: String,
}

/// Why (or that) an edge was admitted at subscribe time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Admission checks passed; the subscription is established.
    Admitted,
    /// One side was isolated.
    Isolated,
    /// Refused by access control.
    DeniedByAccessControl,
    /// Refused by information-flow control.
    DeniedByIfc,
}

impl AdmissionOutcome {
    /// Whether the edge was established.
    pub fn admitted(self) -> bool {
        self == AdmissionOutcome::Admitted
    }
}

/// The predicted fate of one fan-out delivery.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictedOutcome {
    /// Delivered: the exact post-quench message the subscriber must observe
    /// (sender and send time stamped, quenched attributes absent).
    Delivered(Box<Message>),
    /// Denied by isolation, access control or IFC.
    Denied,
}

/// What the oracle expects of a run.
#[derive(Debug, Clone, Default)]
pub struct Prediction {
    /// Per subscribe attempt, in script order: `(publisher, subscriber, outcome)`.
    pub admissions: Vec<(String, String, AdmissionOutcome)>,
    /// Every fan-out delivery, keyed `(from, to, at_millis)`.
    pub outcomes: BTreeMap<(String, String, u64), PredictedOutcome>,
    /// Expected `published` counter (== `outcomes.len()`).
    pub published: u64,
    /// Expected `delivered` counter in a fault-free run.
    pub delivered: u64,
    /// Expected `denied` counter in a fault-free run.
    pub denied: u64,
}

/// The reference interpreter.
#[derive(Debug, Clone, Default)]
pub struct FleetModel {
    /// Endpoint name → current state. Departed endpoints are removed.
    pub endpoints: BTreeMap<String, EndpointState>,
    /// Publisher → admitted subscribers, in admission order, deduplicated.
    pub subscriptions: BTreeMap<String, Vec<String>>,
    /// Component → its access rules, in installation order.
    pub rules: BTreeMap<String, Vec<RuleSpec>>,
    /// Context keys.
    pub keys: BTreeMap<String, KeyValue>,
    /// Message type → schema.
    pub schemas: BTreeMap<String, SchemaSpec>,
}

impl FleetModel {
    /// An empty model.
    pub fn new() -> Self {
        FleetModel::default()
    }

    /// Installs a deployment: endpoints, schemas, rules, keys, then its edges
    /// in order. Returns the admission outcome of every edge.
    pub fn install(&mut self, deployment: &Deployment) -> Vec<(String, String, AdmissionOutcome)> {
        for thing in &deployment.things {
            self.endpoints.insert(
                thing.name.clone(),
                EndpointState {
                    secrecy: thing.secrecy.iter().cloned().collect(),
                    integrity: thing.integrity.iter().cloned().collect(),
                    isolated: false,
                    owner: thing.owner.clone(),
                },
            );
        }
        for schema in &deployment.schemas {
            self.schemas.insert(schema.message_type.clone(), schema.clone());
        }
        for rule in &deployment.rules {
            self.rules.entry(rule.component.clone()).or_default().push(rule.clone());
        }
        for (key, value) in &deployment.initial_keys {
            self.keys.insert(key.clone(), *value);
        }
        deployment
            .edges
            .iter()
            .map(|(from, to)| (from.clone(), to.clone(), self.subscribe(from, to)))
            .collect()
    }

    /// Runs the admission sequence for `subscriber ← publisher` and records the
    /// subscription when admitted (idempotently, preserving first-admission
    /// order, as the engine does).
    pub fn subscribe(&mut self, publisher: &str, subscriber: &str) -> AdmissionOutcome {
        let outcome = self.admit(publisher, subscriber);
        if outcome.admitted() {
            let subs = self.subscriptions.entry(publisher.to_string()).or_default();
            if !subs.iter().any(|existing| existing == subscriber) {
                subs.push(subscriber.to_string());
            }
        }
        outcome
    }

    /// The admission decision for `subscriber ← publisher` against current
    /// state: isolation → access control (message type unconstrained) → IFC.
    pub fn admit(&self, publisher: &str, subscriber: &str) -> AdmissionOutcome {
        let (Some(src), Some(dst)) =
            (self.endpoints.get(publisher), self.endpoints.get(subscriber))
        else {
            // The harness only scripts subscriptions between registered
            // endpoints; a missing one here is a generator bug.
            return AdmissionOutcome::DeniedByAccessControl;
        };
        if src.isolated || dst.isolated {
            return AdmissionOutcome::Isolated;
        }
        if !self.access_allows(subscriber, &src.owner) {
            return AdmissionOutcome::DeniedByAccessControl;
        }
        if !(src.secrecy.is_subset(&dst.secrecy) && dst.integrity.is_subset(&src.integrity)) {
            return AdmissionOutcome::DeniedByIfc;
        }
        AdmissionOutcome::Admitted
    }

    /// The destination component's access decision for a send by `principal`:
    /// no rules for the component → denied; any applicable deny → denied; else
    /// allowed iff some allow rule applies. Generated rules never constrain the
    /// message type, so subscribe-time and per-message decisions coincide.
    fn access_allows(&self, component: &str, principal: &str) -> bool {
        let Some(rules) = self.rules.get(component) else {
            return false;
        };
        let mut allowed = false;
        for rule in rules {
            let subject_matches = match &rule.subject {
                SubjectSpec::Anyone => true,
                SubjectSpec::Principal(name) => name == principal,
            };
            if subject_matches && rule.condition.eval(&self.keys) {
                if !rule.allow {
                    return false;
                }
                allowed = true;
            }
        }
        allowed
    }

    /// Applies one control event.
    pub fn apply(&mut self, event: &ControlEvent) -> Vec<(String, String, AdmissionOutcome)> {
        match event {
            ControlEvent::SetKey { key, value } => {
                self.keys.insert(key.clone(), *value);
                Vec::new()
            }
            ControlEvent::SetContext { endpoint, secrecy, integrity } => {
                if let Some(state) = self.endpoints.get_mut(endpoint) {
                    state.secrecy = secrecy.iter().cloned().collect();
                    state.integrity = integrity.iter().cloned().collect();
                }
                Vec::new()
            }
            ControlEvent::SetIsolated { endpoint, isolated } => {
                if let Some(state) = self.endpoints.get_mut(endpoint) {
                    state.isolated = *isolated;
                }
                Vec::new()
            }
            ControlEvent::AddRule(rule) => {
                self.rules.entry(rule.component.clone()).or_default().push(rule.clone());
                Vec::new()
            }
            ControlEvent::Join { thing, edges } => {
                self.endpoints.insert(
                    thing.name.clone(),
                    EndpointState {
                        secrecy: thing.secrecy.iter().cloned().collect(),
                        integrity: thing.integrity.iter().cloned().collect(),
                        isolated: false,
                        owner: thing.owner.clone(),
                    },
                );
                edges
                    .iter()
                    .map(|(from, to)| (from.clone(), to.clone(), self.subscribe(from, to)))
                    .collect()
            }
            ControlEvent::Leave { endpoint } => {
                self.endpoints.remove(endpoint);
                self.subscriptions.remove(endpoint);
                for subs in self.subscriptions.values_mut() {
                    subs.retain(|sub| sub != endpoint);
                }
                Vec::new()
            }
        }
    }

    /// Predicts the fate of every fan-out delivery of one publish against
    /// current state, in subscriber order.
    pub fn deliver(&self, publish: &PublishSpec) -> Vec<(String, PredictedOutcome)> {
        let Some(subs) = self.subscriptions.get(&publish.publisher) else {
            return Vec::new();
        };
        let Some(src) = self.endpoints.get(&publish.publisher) else {
            return Vec::new();
        };
        let schema = self
            .schemas
            .get(&publish.message_type)
            .unwrap_or_else(|| panic!("schema for `{}` must exist", publish.message_type));
        subs.iter()
            .map(|sub| {
                let outcome = self.deliver_one(publish, schema, src, sub);
                (sub.clone(), outcome)
            })
            .collect()
    }

    fn deliver_one(
        &self,
        publish: &PublishSpec,
        schema: &SchemaSpec,
        src: &EndpointState,
        subscriber: &str,
    ) -> PredictedOutcome {
        let Some(dst) = self.endpoints.get(subscriber) else {
            // Subscriptions to departed endpoints are removed with the
            // endpoint, so this cannot happen under the round barrier.
            return PredictedOutcome::Denied;
        };
        if src.isolated || dst.isolated {
            return PredictedOutcome::Denied;
        }
        if !self.access_allows(subscriber, &src.owner) {
            return PredictedOutcome::Denied;
        }
        // Effective source context: sender secrecy joined with message-level
        // tags; integrity comes from the sender alone.
        let mut effective_secrecy = src.secrecy.clone();
        effective_secrecy.extend(publish.extra_secrecy.iter().cloned());
        if !(effective_secrecy.is_subset(&dst.secrecy) && dst.integrity.is_subset(&src.integrity)) {
            return PredictedOutcome::Denied;
        }
        // Quench: drop every attribute whose extra tags the destination does
        // not hold in full.
        let masked: Vec<&str> = schema
            .attrs
            .iter()
            .filter(|attr| {
                !attr.secrecy.is_empty()
                    && !attr.secrecy.iter().all(|tag| dst.secrecy.contains(tag))
            })
            .map(|attr| attr.name.as_str())
            .collect();
        let mut expected = publish.message(schema).quenched(masked);
        expected.sender = publish.publisher.clone();
        expected.sent_at_millis = publish.at_millis;
        PredictedOutcome::Delivered(Box::new(expected))
    }
}

/// Walks a whole fleet script through a fresh model.
pub fn predict(fleet: &Fleet) -> Prediction {
    let mut model = FleetModel::new();
    let mut prediction = Prediction::default();
    for deployment in &fleet.deployments {
        prediction.admissions.extend(model.install(deployment));
    }
    for round in &fleet.rounds {
        for (_, event) in &round.events {
            prediction.admissions.extend(model.apply(event));
        }
        for publish in &round.publishes {
            for (subscriber, outcome) in model.deliver(publish) {
                prediction.published += 1;
                match &outcome {
                    PredictedOutcome::Delivered(_) => prediction.delivered += 1,
                    PredictedOutcome::Denied => prediction.denied += 1,
                }
                let key = (publish.publisher.clone(), subscriber, publish.at_millis);
                let previous = prediction.outcomes.insert(key.clone(), outcome);
                assert!(previous.is_none(), "delivery key {key:?} must be unique (global clock)");
            }
        }
    }
    prediction
}
