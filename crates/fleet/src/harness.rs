//! Drives a generated fleet against a real [`Dataplane`].
//!
//! The harness installs the fleet through the same [`TopologyBuilder`] +
//! [`Dataplane::register_bulk`] path the hand-built topologies use, then walks
//! the script under a round barrier: each round applies its control events
//! while no work is in flight, publishes, drains the engine, and collects
//! every subscriber mailbox. The returned [`RunOutcome`] is keyed exactly like
//! the oracle's [`crate::model::Prediction`], so conformance is a map
//! comparison.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use legaliot_audit::AuditEvent;
use legaliot_context::{ContextStore, Timestamp};
use legaliot_dataplane::{
    Dataplane, DataplaneConfig, DataplaneError, DataplaneStats, Subscriber, TopologyBuilder,
};
use legaliot_ifc::SecurityContext;
use legaliot_middleware::Message;

use crate::spec::{ControlEvent, Fleet, SchemaSpec};

/// A `DeliveryLost` evidence record, keyed like a predicted delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct LostDelivery {
    /// The publishing endpoint.
    pub source: String,
    /// The subscriber that never saw the message.
    pub destination: String,
    /// The publish timestamp (records are appended with the unit's own time).
    pub at_millis: u64,
    /// How many deliveries the record accounts for.
    pub lost: u64,
    /// Why the work was abandoned.
    pub cause: String,
}

/// Everything observed from one fleet run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per subscribe attempt, in script order: `(publisher, subscriber, admitted)`.
    pub admissions: Vec<(String, String, bool)>,
    /// Every delivery observed on a subscriber mailbox, thawed, keyed
    /// `(sender, receiver, sent_at_millis)`.
    pub observed: BTreeMap<(String, String, u64), Message>,
    /// Observed deliveries whose key was already present (must be zero — the
    /// global clock makes keys unique).
    pub duplicate_deliveries: u64,
    /// Final engine counters.
    pub stats: DataplaneStats,
    /// All `DeliveryLost` evidence from the merged audit timeline.
    pub lost: Vec<LostDelivery>,
    /// Whether every audit chain (shards + control plane) verified intact.
    pub chains_intact: bool,
    /// Workers that escaped supervision and died (must be zero).
    pub worker_panics: usize,
}

/// A fleet installed on a live dataplane, ready to play rounds — the shared
/// machinery behind [`run_fleet`] (which plays everything and shuts down
/// gracefully) and [`run_fleet_partial`] (which stops mid-churn and hands the
/// live engine back, e.g. to model a crash).
struct FleetSession {
    dataplane: Dataplane,
    store: Arc<ContextStore>,
    schemas: BTreeMap<String, SchemaSpec>,
    subscribers: BTreeMap<String, Subscriber>,
    admissions: Vec<(String, String, bool)>,
    observed: BTreeMap<(String, String, u64), Message>,
    duplicate_deliveries: u64,
}

impl FleetSession {
    fn install(fleet: &Fleet, name: &str, config: DataplaneConfig) -> Result<Self, DataplaneError> {
        let dataplane = Dataplane::new(name, config);
        let store = Arc::clone(dataplane.context_store());

        // Settle every context key before any admission reads it.
        for deployment in &fleet.deployments {
            for (key, value) in &deployment.initial_keys {
                store.set(key.as_str(), value.to_context_value(), Timestamp(1));
            }
        }

        // One fleet-wide topology through the shared builder/bulk path.
        let mut builder = TopologyBuilder::new("generated-fleet");
        for deployment in &fleet.deployments {
            for thing in &deployment.things {
                builder = builder.thing(&thing.to_thing());
            }
            for (from, to) in &deployment.edges {
                builder = builder.edge(from.as_str(), to.as_str());
            }
        }
        let topology = builder.build();
        topology.register(&dataplane)?;

        let mut schemas: BTreeMap<String, SchemaSpec> = BTreeMap::new();
        for deployment in &fleet.deployments {
            for schema in &deployment.schemas {
                dataplane.register_schema(schema.to_schema())?;
                schemas.insert(schema.message_type.clone(), schema.clone());
            }
        }
        dataplane.with_access(|access| {
            for deployment in &fleet.deployments {
                for rule in &deployment.rules {
                    access.add_rule(rule.component.as_str(), rule.to_access_rule());
                }
            }
        });

        // Every edge destination gets a streaming receiver for the whole run —
        // including destinations only joiners ever publish to (consumers never
        // leave and joins only add publishers, so every destination is registered
        // from install and keeps its mailbox to the end).
        let mut subscribers: BTreeMap<String, Subscriber> = BTreeMap::new();
        let mut consumer_names: BTreeSet<&str> =
            topology.edges.iter().map(|(_, to)| to.as_str()).collect();
        for round in &fleet.rounds {
            for (_, event) in &round.events {
                if let ControlEvent::Join { edges, .. } = event {
                    consumer_names.extend(edges.iter().map(|(_, to)| to.as_str()));
                }
            }
        }
        for consumer in consumer_names {
            subscribers.insert(consumer.to_string(), dataplane.open_subscriber(consumer)?);
        }

        let mut admissions = Vec::new();
        {
            let snapshot = store.snapshot();
            for (from, to) in &topology.edges {
                let outcome = dataplane.subscribe(from, to, &snapshot, Timestamp(2))?;
                admissions.push((from.clone(), to.clone(), outcome.is_delivered()));
            }
        }

        Ok(FleetSession {
            dataplane,
            store,
            schemas,
            subscribers,
            admissions,
            observed: BTreeMap::new(),
            duplicate_deliveries: 0,
        })
    }

    /// Plays one scripted round: control events against a settled engine, then
    /// publishes, a full drain, and a sweep of every subscriber mailbox.
    fn play_round(&mut self, round: &crate::spec::Round) -> Result<(), DataplaneError> {
        // Control phase: the previous round fully drained, so every change
        // lands while no delivery is in flight — enforcement and the oracle
        // judge each round against the same settled state.
        for (at, event) in &round.events {
            apply_event(&self.dataplane, &self.store, &mut self.admissions, *at, event)?;
        }
        for publish in &round.publishes {
            let schema =
                self.schemas.get(&publish.message_type).expect("generated publishes have schemas");
            let message = publish.message(schema);
            self.dataplane.publish_message(
                &publish.publisher,
                &message,
                Timestamp(publish.at_millis),
            )?;
        }
        self.dataplane.drain();
        for (consumer, subscriber) in &self.subscribers {
            for received in subscriber.drain() {
                let message = received.thaw();
                let key = (message.sender.clone(), consumer.clone(), message.sent_at_millis);
                if self.observed.insert(key, message).is_some() {
                    self.duplicate_deliveries += 1;
                }
            }
        }
        Ok(())
    }
}

/// Installs and runs `fleet` on a dataplane with the given configuration.
///
/// # Errors
///
/// Propagates engine errors (duplicate endpoints, unknown schemas, publishes
/// routed to degraded shards under heavy fault injection).
pub fn run_fleet(
    fleet: &Fleet,
    name: &str,
    config: DataplaneConfig,
) -> Result<RunOutcome, DataplaneError> {
    let mut session = FleetSession::install(fleet, name, config)?;
    for round in &fleet.rounds {
        session.play_round(round)?;
    }
    let FleetSession { dataplane, subscribers, admissions, observed, duplicate_deliveries, .. } =
        session;
    drop(subscribers);
    let report = dataplane.shutdown();
    let lost = report
        .merged_timeline()
        .into_iter()
        .filter_map(|record| match record.event {
            AuditEvent::DeliveryLost { source, destination, lost, cause, .. } => {
                Some(LostDelivery { source, destination, at_millis: record.at_millis, lost, cause })
            }
            _ => None,
        })
        .collect();
    let chains_intact = report.shard_audit.iter().all(|log| log.verify_chain().is_intact())
        && report.control_audit.verify_chain().is_intact();
    Ok(RunOutcome {
        admissions,
        observed,
        duplicate_deliveries,
        stats: report.stats,
        lost,
        chains_intact,
        worker_panics: report.worker_panics.len(),
    })
}

/// Everything observed from a fleet run stopped after [`Self::rounds_played`]
/// rounds, with the engine still alive.
#[derive(Debug)]
pub struct PartialRun {
    /// Per subscribe attempt so far, in script order: `(publisher, subscriber, admitted)`.
    pub admissions: Vec<(String, String, bool)>,
    /// Every delivery observed so far, thawed, keyed `(sender, receiver, sent_at_millis)`.
    pub observed: BTreeMap<(String, String, u64), Message>,
    /// Observed deliveries whose key was already present (must be zero).
    pub duplicate_deliveries: u64,
    /// Engine counters snapshotted after the last played round's drain — exact,
    /// because nothing is in flight at a round boundary.
    pub stats: DataplaneStats,
    /// How many script rounds actually ran (the script may be shorter than asked).
    pub rounds_played: usize,
    /// The live engine. Dropping it takes the abandon path (mailboxes closed
    /// first, then workers joined) — the harness's stand-in for a process torn
    /// down mid-churn, used by the durable-audit crash-recovery tests.
    pub dataplane: Dataplane,
}

/// Installs `fleet` and plays only the first `rounds` rounds, then hands back
/// the live engine plus everything observed so far (subscriber mailboxes are
/// already dropped). The caller decides how the run ends: `shutdown()` for a
/// graceful close, or dropping [`PartialRun::dataplane`] to model a mid-churn
/// teardown for crash-recovery testing.
///
/// # Errors
///
/// Propagates engine errors exactly as [`run_fleet`] does.
pub fn run_fleet_partial(
    fleet: &Fleet,
    name: &str,
    config: DataplaneConfig,
    rounds: usize,
) -> Result<PartialRun, DataplaneError> {
    let mut session = FleetSession::install(fleet, name, config)?;
    let rounds_played = rounds.min(fleet.rounds.len());
    for round in &fleet.rounds[..rounds_played] {
        session.play_round(round)?;
    }
    let FleetSession { dataplane, subscribers, admissions, observed, duplicate_deliveries, .. } =
        session;
    drop(subscribers);
    let stats = dataplane.stats();
    Ok(PartialRun { admissions, observed, duplicate_deliveries, stats, rounds_played, dataplane })
}

fn apply_event(
    dataplane: &Dataplane,
    store: &ContextStore,
    admissions: &mut Vec<(String, String, bool)>,
    at: u64,
    event: &ControlEvent,
) -> Result<(), DataplaneError> {
    match event {
        ControlEvent::SetKey { key, value } => {
            store.set(key.as_str(), value.to_context_value(), Timestamp(at));
        }
        ControlEvent::SetContext { endpoint, secrecy, integrity } => {
            let context = SecurityContext::from_names(
                secrecy.iter().map(String::as_str),
                integrity.iter().map(String::as_str),
            );
            dataplane.set_context(endpoint, context, Timestamp(at))?;
        }
        ControlEvent::SetIsolated { endpoint, isolated } => {
            dataplane.set_isolated(endpoint, *isolated, Timestamp(at))?;
        }
        ControlEvent::AddRule(rule) => {
            dataplane.with_access(|access| {
                access.add_rule(rule.component.as_str(), rule.to_access_rule())
            });
        }
        ControlEvent::Join { thing, edges } => {
            // The same builder path as install, one joiner at a time.
            let mut builder = TopologyBuilder::new("join").thing(&thing.to_thing());
            for (from, to) in edges {
                builder = builder.edge(from.as_str(), to.as_str());
            }
            let topology = builder.build();
            topology.register(dataplane)?;
            let snapshot = store.snapshot();
            for (from, to) in &topology.edges {
                let outcome = dataplane.subscribe(from, to, &snapshot, Timestamp(at))?;
                admissions.push((from.clone(), to.clone(), outcome.is_delivered()));
            }
        }
        ControlEvent::Leave { endpoint } => {
            dataplane.deregister(endpoint)?;
        }
    }
    Ok(())
}
