//! The fleet intermediate representation.
//!
//! Generated fleets are described in a small, self-contained IR — plain strings,
//! sorted collections, no engine types — so the enforcement oracle in
//! [`crate::model`] can interpret the *same* description the harness installs,
//! without sharing any enforcement code with the dataplane it checks. The IR
//! also renders to a deterministic [`Fleet::manifest`] used by the
//! byte-identical-determinism tests.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use legaliot_context::ContextValue;
use legaliot_ifc::{Label, SecurityContext};
use legaliot_iot::{DeploymentKind, Thing, ThingKind};
use legaliot_middleware::{
    AccessRule, AttributeKind, AttributeValue, Message, MessageSchema, Operation, Subject,
};
use legaliot_policy::Condition;

/// A context value a fleet script writes: booleans and numbers are all the
/// generated policies condition on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyValue {
    /// A boolean key (lockdown, break-glass, quarantine …).
    Bool(bool),
    /// A numeric key (load …).
    Number(f64),
}

impl KeyValue {
    /// The engine-side value.
    pub fn to_context_value(self) -> ContextValue {
        match self {
            KeyValue::Bool(b) => ContextValue::Bool(b),
            KeyValue::Number(n) => ContextValue::Float(n),
        }
    }

    fn render(self) -> String {
        match self {
            KeyValue::Bool(b) => format!("bool:{b}"),
            KeyValue::Number(n) => format!("num:{n}"),
        }
    }
}

/// The subject of a generated access rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubjectSpec {
    /// Matches every principal.
    Anyone,
    /// Matches the named principal (a deployment owner).
    Principal(String),
}

impl SubjectSpec {
    fn to_subject(&self) -> Subject {
        match self {
            SubjectSpec::Anyone => Subject::Anyone,
            SubjectSpec::Principal(name) => Subject::Principal(name.clone()),
        }
    }

    fn render(&self) -> String {
        match self {
            SubjectSpec::Anyone => "anyone".to_string(),
            SubjectSpec::Principal(name) => format!("principal:{name}"),
        }
    }
}

/// A generated rule condition — the subset of [`Condition`] fleets emit, with
/// its own evaluator mirroring the engine's semantics exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum CondSpec {
    /// Always true.
    Always,
    /// True when the boolean key is present and true.
    IsTrue(String),
    /// True when the boolean key is absent or false.
    IsFalse(String),
    /// True when the numeric key is present and strictly below the threshold.
    NumberBelow(String, f64),
    /// True when any branch is true (false when empty).
    AnyOf(Vec<CondSpec>),
}

impl CondSpec {
    /// The engine-side condition.
    pub fn to_condition(&self) -> Condition {
        match self {
            CondSpec::Always => Condition::Always,
            CondSpec::IsTrue(key) => Condition::is_true(key.as_str()),
            CondSpec::IsFalse(key) => Condition::is_false(key.as_str()),
            CondSpec::NumberBelow(key, threshold) => {
                Condition::number_below(key.as_str(), *threshold)
            }
            CondSpec::AnyOf(branches) => {
                Condition::Any(branches.iter().map(CondSpec::to_condition).collect())
            }
        }
    }

    /// Evaluates against a key map with the engine's semantics: `IsTrue` needs
    /// the key present and `true`, `IsFalse` is its negation, `NumberBelow` is a
    /// strict `<` that is false when the key is missing or non-numeric.
    pub fn eval(&self, keys: &BTreeMap<String, KeyValue>) -> bool {
        match self {
            CondSpec::Always => true,
            CondSpec::IsTrue(key) => matches!(keys.get(key), Some(KeyValue::Bool(true))),
            CondSpec::IsFalse(key) => !matches!(keys.get(key), Some(KeyValue::Bool(true))),
            CondSpec::NumberBelow(key, threshold) => {
                matches!(keys.get(key), Some(KeyValue::Number(n)) if n < threshold)
            }
            CondSpec::AnyOf(branches) => branches.iter().any(|branch| branch.eval(keys)),
        }
    }

    /// Every context key the condition reads.
    pub fn referenced_keys(&self) -> Vec<String> {
        match self {
            CondSpec::Always => Vec::new(),
            CondSpec::IsTrue(key) | CondSpec::IsFalse(key) | CondSpec::NumberBelow(key, _) => {
                vec![key.clone()]
            }
            CondSpec::AnyOf(branches) => {
                branches.iter().flat_map(CondSpec::referenced_keys).collect()
            }
        }
    }

    fn render(&self) -> String {
        match self {
            CondSpec::Always => "always".to_string(),
            CondSpec::IsTrue(key) => format!("is-true({key})"),
            CondSpec::IsFalse(key) => format!("is-false({key})"),
            CondSpec::NumberBelow(key, threshold) => format!("below({key},{threshold})"),
            CondSpec::AnyOf(branches) => {
                let inner: Vec<String> = branches.iter().map(CondSpec::render).collect();
                format!("any-of[{}]", inner.join("|"))
            }
        }
    }
}

/// A generated access rule on a consuming component: all fleet rules govern
/// `Operation::Send` at any message type, so subscribe-time and per-message AC
/// agree by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSpec {
    /// The component the rule guards (the message destination).
    pub component: String,
    /// Who the rule applies to.
    pub subject: SubjectSpec,
    /// Allow or (overriding) deny.
    pub allow: bool,
    /// When the rule applies.
    pub condition: CondSpec,
}

impl RuleSpec {
    /// The engine-side rule.
    pub fn to_access_rule(&self) -> AccessRule {
        let rule = if self.allow {
            AccessRule::allow(self.subject.to_subject(), Operation::Send, None)
        } else {
            AccessRule::deny(self.subject.to_subject(), Operation::Send, None)
        };
        rule.when(self.condition.to_condition())
    }

    fn render(&self) -> String {
        format!(
            "rule {} {} {} when {}",
            self.component,
            if self.allow { "allow" } else { "deny" },
            self.subject.render(),
            self.condition.render()
        )
    }
}

/// One attribute of a generated schema.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrSpec {
    /// Attribute name.
    pub name: String,
    /// Attribute kind.
    pub kind: AttributeKind,
    /// Extra message-level secrecy tags; non-empty makes the attribute
    /// quenchable for destinations not holding them.
    pub secrecy: Vec<String>,
}

/// A generated message schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaSpec {
    /// The message type.
    pub message_type: String,
    /// Attributes, in declaration order.
    pub attrs: Vec<AttrSpec>,
}

impl SchemaSpec {
    /// The engine-side schema.
    pub fn to_schema(&self) -> MessageSchema {
        let mut schema = MessageSchema::new(self.message_type.as_str());
        for attr in &self.attrs {
            if attr.secrecy.is_empty() {
                schema = schema.attribute(attr.name.as_str(), attr.kind);
            } else {
                schema = schema.sensitive_attribute(
                    attr.name.as_str(),
                    attr.kind,
                    Label::from_names(attr.secrecy.iter().map(String::as_str)),
                );
            }
        }
        schema
    }

    fn render(&self) -> String {
        let attrs: Vec<String> = self
            .attrs
            .iter()
            .map(|a| format!("{}:{:?}:[{}]", a.name, a.kind, a.secrecy.join(",")))
            .collect();
        format!("schema {} {{{}}}", self.message_type, attrs.join(" "))
    }
}

/// A generated thing: [`Thing`] plus label lists kept as sorted strings for
/// manifest rendering and oracle-side set logic.
#[derive(Debug, Clone, PartialEq)]
pub struct ThingSpec {
    /// Endpoint name (unique across the whole fleet).
    pub name: String,
    /// What kind of thing it is.
    pub kind: ThingKind,
    /// Owning principal (the component's principal name at enforcement time).
    pub owner: String,
    /// Hosting node.
    pub node: String,
    /// Secrecy tags held.
    pub secrecy: Vec<String>,
    /// Integrity tags held.
    pub integrity: Vec<String>,
    /// Message types produced.
    pub produces: Vec<String>,
}

impl ThingSpec {
    /// The engine-side thing (converted onwards by the shared
    /// [`legaliot_dataplane::TopologyBuilder`] path).
    pub fn to_thing(&self) -> Thing {
        let mut thing = Thing::new(
            self.name.clone(),
            self.kind,
            self.owner.clone(),
            self.node.clone(),
            self.security_context(),
        );
        for message_type in &self.produces {
            thing = thing.produces(message_type.as_str());
        }
        thing
    }

    /// The engine-side security context for the label lists.
    pub fn security_context(&self) -> SecurityContext {
        SecurityContext::from_names(
            self.secrecy.iter().map(String::as_str),
            self.integrity.iter().map(String::as_str),
        )
    }

    fn render(&self) -> String {
        format!(
            "thing {} kind={} owner={} node={} s=[{}] i=[{}] produces=[{}]",
            self.name,
            self.kind,
            self.owner,
            self.node,
            self.secrecy.join(","),
            self.integrity.join(","),
            self.produces.join(",")
        )
    }
}

/// One generated deployment: a home, hospital ward or vehicle fleet with its
/// own endpoints, schemas, policies, labels and context keys.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// Deployment name (`d0000` …), the prefix of everything it owns.
    pub name: String,
    /// Which catalog profile it was drawn from.
    pub kind: DeploymentKind,
    /// Its things, devices first, consumers after.
    pub things: Vec<ThingSpec>,
    /// Its message schemas.
    pub schemas: Vec<SchemaSpec>,
    /// `(publisher, subscriber)` edges to admit at install.
    pub edges: Vec<(String, String)>,
    /// Access rules guarding its consumers.
    pub rules: Vec<RuleSpec>,
    /// Initial context-key values (every key any of its rules reads).
    pub initial_keys: BTreeMap<String, KeyValue>,
    /// Every secrecy tag the deployment uses (label-lattice universe).
    pub secrecy_universe: Vec<String>,
    /// Every integrity tag the deployment uses.
    pub integrity_universe: Vec<String>,
}

impl Deployment {
    /// The names of things that publish (appear as an edge source).
    pub fn publishers(&self) -> Vec<String> {
        let mut names: Vec<String> = self.edges.iter().map(|(from, _)| from.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// The names of things that consume (appear as an edge destination).
    pub fn consumers(&self) -> Vec<String> {
        let mut names: Vec<String> = self.edges.iter().map(|(_, to)| to.clone()).collect();
        names.sort();
        names.dedup();
        names
    }
}

/// A scripted control-plane event.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlEvent {
    /// Write a context key.
    SetKey {
        /// The key.
        key: String,
        /// The new value.
        value: KeyValue,
    },
    /// Replace an endpoint's security context.
    SetContext {
        /// The endpoint.
        endpoint: String,
        /// New secrecy tags.
        secrecy: Vec<String>,
        /// New integrity tags.
        integrity: Vec<String>,
    },
    /// Isolate or de-isolate an endpoint.
    SetIsolated {
        /// The endpoint.
        endpoint: String,
        /// The new isolation state.
        isolated: bool,
    },
    /// Add an access rule mid-run (policy update).
    AddRule(RuleSpec),
    /// A new device joins, wired to existing consumers.
    Join {
        /// The joining thing (producing an already-registered message type).
        thing: ThingSpec,
        /// Its edges (`thing → existing consumer`).
        edges: Vec<(String, String)>,
    },
    /// A device leaves (deregistered; never scripted twice for one endpoint).
    Leave {
        /// The departing endpoint.
        endpoint: String,
    },
}

impl ControlEvent {
    fn render(&self) -> String {
        match self {
            ControlEvent::SetKey { key, value } => format!("set-key {key}={}", value.render()),
            ControlEvent::SetContext { endpoint, secrecy, integrity } => {
                format!(
                    "set-context {endpoint} s=[{}] i=[{}]",
                    secrecy.join(","),
                    integrity.join(",")
                )
            }
            ControlEvent::SetIsolated { endpoint, isolated } => {
                format!("set-isolated {endpoint}={isolated}")
            }
            ControlEvent::AddRule(rule) => format!("add-{}", rule.render()),
            ControlEvent::Join { thing, edges } => {
                let edges: Vec<String> =
                    edges.iter().map(|(from, to)| format!("{from}->{to}")).collect();
                format!("join {} edges=[{}]", thing.render(), edges.join(","))
            }
            ControlEvent::Leave { endpoint } => format!("leave {endpoint}"),
        }
    }
}

/// A scripted publish. The message it denotes is a pure function of the spec
/// and the deployment's schema, so the harness and the oracle construct the
/// *same* message independently.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishSpec {
    /// The publishing endpoint.
    pub publisher: String,
    /// The message type (one the publisher produces).
    pub message_type: String,
    /// The publish timestamp — globally unique, so `(from, to, at_millis)`
    /// uniquely keys every fan-out delivery of the run.
    pub at_millis: u64,
    /// The numeric reading carried.
    pub value: f64,
    /// Subject discriminator for text attributes.
    pub subject_id: u64,
    /// Message-level extra secrecy tags (joined with the sender's context at
    /// flow-check time).
    pub extra_secrecy: Vec<String>,
}

impl PublishSpec {
    /// Builds the message this spec denotes against its schema: one attribute
    /// per declared schema attribute, values derived from `value`/`subject_id`
    /// by kind, message context carrying the extra secrecy tags.
    pub fn message(&self, schema: &SchemaSpec) -> Message {
        let context = SecurityContext::new(
            Label::from_names(self.extra_secrecy.iter().map(String::as_str)),
            Label::default(),
        );
        let mut message = Message::new(self.message_type.as_str(), context);
        for attr in &schema.attrs {
            let value = match attr.kind {
                AttributeKind::Float => AttributeValue::Float(self.value),
                AttributeKind::Integer => AttributeValue::Integer(self.value as i64),
                AttributeKind::Bool => AttributeValue::Bool(self.value > 50.0),
                AttributeKind::Text => {
                    AttributeValue::Text(format!("subject-{:04}", self.subject_id))
                }
            };
            message = message.with(attr.name.as_str(), value);
        }
        message
    }

    fn render(&self) -> String {
        format!(
            "publish {}@{} type={} value={} subject={} extra=[{}]",
            self.publisher,
            self.at_millis,
            self.message_type,
            self.value,
            self.subject_id,
            self.extra_secrecy.join(",")
        )
    }
}

/// One round of the fleet script: control events first, then publishes. The
/// harness drains between the phases, so enforcement always sees settled
/// control state — the same round barrier the oracle assumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Round {
    /// `(at_millis, event)` control events, in order.
    pub events: Vec<(u64, ControlEvent)>,
    /// Publishes, in order.
    pub publishes: Vec<PublishSpec>,
}

/// Generation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// The master seed; everything downstream is a pure function of it.
    pub seed: u64,
    /// How many deployments to synthesize.
    pub deployments: usize,
    /// How many script rounds (round 0 has no churn).
    pub rounds: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { seed: 1, deployments: 1000, rounds: 4 }
    }
}

/// A generated fleet: deployments plus their churn/publish script.
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    /// The knobs it was generated from.
    pub config: FleetConfig,
    /// The deployments, in generation order.
    pub deployments: Vec<Deployment>,
    /// The script rounds.
    pub rounds: Vec<Round>,
}

impl Fleet {
    /// Total things at install time (before churn).
    pub fn endpoint_count(&self) -> usize {
        self.deployments.iter().map(|d| d.things.len()).sum()
    }

    /// Total install-time edges.
    pub fn edge_count(&self) -> usize {
        self.deployments.iter().map(|d| d.edges.len()).sum()
    }

    /// Total scripted publishes.
    pub fn publish_count(&self) -> usize {
        self.rounds.iter().map(|round| round.publishes.len()).sum()
    }

    /// Distinct schema shapes (attribute-list renderings) across the fleet — a
    /// diversity metric the determinism tests compare across seeds.
    pub fn schema_diversity(&self) -> usize {
        let shapes: std::collections::BTreeSet<String> = self
            .deployments
            .iter()
            .flat_map(|d| d.schemas.iter())
            .map(|schema| {
                schema
                    .attrs
                    .iter()
                    .map(|a| format!("{}:{:?}:[{}]", a.name, a.kind, a.secrecy.join(",")))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        shapes.len()
    }

    /// Renders the whole fleet — deployments, schemas, rules, script — into a
    /// deterministic text manifest. Two fleets are byte-identical iff their
    /// manifests are equal; a reproducing seed is reported alongside any
    /// conformance failure so `Fleet` state can be regenerated exactly.
    pub fn manifest(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet seed={} deployments={} rounds={}",
            self.config.seed, self.config.deployments, self.config.rounds
        );
        for deployment in &self.deployments {
            let _ = writeln!(
                out,
                "deployment {} kind={} s-universe=[{}] i-universe=[{}]",
                deployment.name,
                deployment.kind.name(),
                deployment.secrecy_universe.join(","),
                deployment.integrity_universe.join(",")
            );
            for thing in &deployment.things {
                let _ = writeln!(out, "  {}", thing.render());
            }
            for schema in &deployment.schemas {
                let _ = writeln!(out, "  {}", schema.render());
            }
            for (from, to) in &deployment.edges {
                let _ = writeln!(out, "  edge {from}->{to}");
            }
            for rule in &deployment.rules {
                let _ = writeln!(out, "  {}", rule.render());
            }
            for (key, value) in &deployment.initial_keys {
                let _ = writeln!(out, "  key {key}={}", value.render());
            }
        }
        for (index, round) in self.rounds.iter().enumerate() {
            let _ = writeln!(out, "round {index}");
            for (at, event) in &round.events {
                let _ = writeln!(out, "  @{at} {}", event.render());
            }
            for publish in &round.publishes {
                let _ = writeln!(out, "  {}", publish.render());
            }
        }
        out
    }
}
