//! Property tests over generator invariants: whatever the seed, a generated
//! fleet is well-formed — policies only read keys their deployment defines,
//! every produced message type has a schema, labels stay inside their
//! deployment's lattice universe, and churn scripts never deregister an
//! endpoint twice.

use std::collections::{BTreeMap, BTreeSet};

use legaliot_fleet::{generate, ControlEvent, Fleet, FleetConfig, RuleSpec};
use proptest::prelude::*;

/// The deployment a fleet-wide name belongs to (`d0012-bed-sensor` → `d0012`,
/// `d0012.load` → `d0012`).
fn deployment_of(name: &str) -> &str {
    name.split(['-', '.']).next().expect("split always yields one piece")
}

fn check_rule_keys(fleet: &Fleet, rule: &RuleSpec) {
    let keys: BTreeMap<&str, BTreeSet<&str>> = fleet
        .deployments
        .iter()
        .map(|d| (d.name.as_str(), d.initial_keys.keys().map(String::as_str).collect()))
        .collect();
    let deployment = deployment_of(&rule.component);
    let defined = keys.get(deployment).unwrap_or_else(|| {
        panic!("rule on `{}` names unknown deployment `{deployment}`", rule.component)
    });
    for key in rule.condition.referenced_keys() {
        assert!(
            defined.contains(key.as_str()),
            "rule on `{}` reads `{key}`, undefined in {deployment}",
            rule.component
        );
    }
}

proptest! {
    /// Every generated policy references only context keys its own deployment
    /// defines in `initial_keys` — nothing conditions on another deployment's
    /// state or on a key that is never written.
    #[test]
    fn policies_only_reference_defined_keys(
        seed in 0u64..10_000,
        deployments in 1usize..24,
        rounds in 1usize..5,
    ) {
        let fleet = generate(FleetConfig { seed, deployments, rounds });
        for deployment in &fleet.deployments {
            for rule in &deployment.rules {
                check_rule_keys(&fleet, rule);
            }
        }
        for round in &fleet.rounds {
            for (_, event) in &round.events {
                if let ControlEvent::AddRule(rule) = event {
                    check_rule_keys(&fleet, rule);
                }
            }
        }
    }

    /// Every message type any publisher produces — at install or by joining —
    /// has a schema in its deployment, and every scripted publish names one.
    #[test]
    fn every_produced_type_has_a_schema(
        seed in 0u64..10_000,
        deployments in 1usize..24,
        rounds in 1usize..5,
    ) {
        let fleet = generate(FleetConfig { seed, deployments, rounds });
        let schemas: BTreeSet<&str> = fleet
            .deployments
            .iter()
            .flat_map(|d| d.schemas.iter())
            .map(|s| s.message_type.as_str())
            .collect();
        for deployment in &fleet.deployments {
            for thing in &deployment.things {
                for produced in &thing.produces {
                    prop_assert!(schemas.contains(produced.as_str()),
                        "{} produces {produced} with no schema", thing.name);
                }
            }
        }
        for round in &fleet.rounds {
            for (_, event) in &round.events {
                if let ControlEvent::Join { thing, .. } = event {
                    for produced in &thing.produces {
                        prop_assert!(schemas.contains(produced.as_str()),
                            "joiner {} produces {produced} with no schema", thing.name);
                    }
                }
            }
            for publish in &round.publishes {
                prop_assert!(schemas.contains(publish.message_type.as_str()));
            }
        }
    }

    /// Every label anywhere in a deployment — thing contexts, context flips,
    /// schema attribute tags, message-level extra tags — is a point of that
    /// deployment's declared lattice (a subset of its tag universes).
    #[test]
    fn labels_are_valid_lattice_points(
        seed in 0u64..10_000,
        deployments in 1usize..24,
        rounds in 1usize..5,
    ) {
        let fleet = generate(FleetConfig { seed, deployments, rounds });
        let universes: BTreeMap<&str, (BTreeSet<&str>, BTreeSet<&str>)> = fleet
            .deployments
            .iter()
            .map(|d| {
                (
                    d.name.as_str(),
                    (
                        d.secrecy_universe.iter().map(String::as_str).collect(),
                        d.integrity_universe.iter().map(String::as_str).collect(),
                    ),
                )
            })
            .collect();
        let check = |owner: &str, secrecy: &[String], integrity: &[String]| {
            let (s_universe, i_universe) = &universes[deployment_of(owner)];
            for tag in secrecy {
                assert!(s_universe.contains(tag.as_str()),
                    "{owner}: secrecy tag {tag} outside universe");
            }
            for tag in integrity {
                assert!(i_universe.contains(tag.as_str()),
                    "{owner}: integrity tag {tag} outside universe");
            }
        };
        for deployment in &fleet.deployments {
            for thing in &deployment.things {
                check(&thing.name, &thing.secrecy, &thing.integrity);
            }
            for schema in &deployment.schemas {
                for attr in &schema.attrs {
                    check(&schema.message_type, &attr.secrecy, &[]);
                }
            }
        }
        for round in &fleet.rounds {
            for (_, event) in &round.events {
                match event {
                    ControlEvent::SetContext { endpoint, secrecy, integrity } => {
                        check(endpoint, secrecy, integrity);
                    }
                    ControlEvent::Join { thing, .. } => {
                        check(&thing.name, &thing.secrecy, &thing.integrity);
                    }
                    _ => {}
                }
            }
            for publish in &round.publishes {
                check(&publish.publisher, &publish.extra_secrecy, &[]);
            }
        }
    }

    /// Churn scripts stay causally sane: an endpoint is deregistered at most
    /// once and only while registered, joins never collide with a live name,
    /// and no event or publish touches a departed endpoint.
    #[test]
    fn churn_never_deregisters_twice(
        seed in 0u64..10_000,
        deployments in 1usize..24,
        rounds in 1usize..6,
    ) {
        let fleet = generate(FleetConfig { seed, deployments, rounds });
        let mut registered: BTreeSet<&str> = fleet
            .deployments
            .iter()
            .flat_map(|d| d.things.iter())
            .map(|t| t.name.as_str())
            .collect();
        let mut departed: BTreeSet<&str> = BTreeSet::new();
        for round in &fleet.rounds {
            for (_, event) in &round.events {
                match event {
                    ControlEvent::Leave { endpoint } => {
                        prop_assert!(!departed.contains(endpoint.as_str()),
                            "{endpoint} deregistered twice");
                        prop_assert!(registered.remove(endpoint.as_str()),
                            "{endpoint} left while unregistered");
                        departed.insert(endpoint.as_str());
                    }
                    ControlEvent::Join { thing, edges } => {
                        prop_assert!(!registered.contains(thing.name.as_str()),
                            "{} joined twice", thing.name);
                        registered.insert(thing.name.as_str());
                        for (from, to) in edges {
                            prop_assert!(registered.contains(from.as_str()));
                            prop_assert!(registered.contains(to.as_str()));
                        }
                    }
                    ControlEvent::SetContext { endpoint, .. }
                    | ControlEvent::SetIsolated { endpoint, .. } => {
                        prop_assert!(registered.contains(endpoint.as_str()),
                            "event touches unregistered {endpoint}");
                    }
                    ControlEvent::SetKey { .. } | ControlEvent::AddRule(_) => {}
                }
            }
            for publish in &round.publishes {
                prop_assert!(registered.contains(publish.publisher.as_str()),
                    "publish from unregistered {}", publish.publisher);
            }
        }
    }
}
