//! The middleware's access-control regime.
//!
//! SBUS "has a general AC regime to govern interactions. This policy, encapsulating
//! attributes of principals and context, is enforced at the granularity of message type,
//! and can be reconfigured" (§8.1). Rules name a principal or a (parametrised) role, a
//! message type (or any), a direction, and an optional context condition; the regime is
//! consulted at channel establishment, on every message, and — crucially — when a
//! third-party reconfiguration control message arrives (Fig. 8).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_context::{ContextSnapshot, Timestamp};
use legaliot_policy::Condition;

use crate::schema::MessageType;

/// A principal known to the middleware: a person, organisation or service identity,
/// optionally holding roles (possibly parametrised, e.g. `nurse(ward-3)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Principal {
    /// The principal's name.
    pub name: String,
    /// Roles held, e.g. `nurse(ward-3)`, `patient`, `policy-engine`.
    pub roles: Vec<String>,
}

impl Principal {
    /// Creates a principal with no roles.
    pub fn new(name: impl Into<String>) -> Self {
        Principal { name: name.into(), roles: Vec::new() }
    }

    /// Adds a role.
    pub fn with_role(mut self, role: impl Into<String>) -> Self {
        self.roles.push(role.into());
        self
    }

    /// Whether the principal holds the given role (exact match, including parameters).
    pub fn has_role(&self, role: &str) -> bool {
        self.roles.iter().any(|r| r == role)
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.roles.is_empty() {
            write!(f, " [{}]", self.roles.join(", "))?;
        }
        Ok(())
    }
}

/// Who a rule applies to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Subject {
    /// A specific principal by name.
    Principal(String),
    /// Any principal holding the given role.
    Role(String),
    /// Any principal.
    Anyone,
}

/// The operations the AC regime governs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operation {
    /// Sending messages of the given type.
    Send,
    /// Receiving messages of the given type.
    Receive,
    /// Issuing third-party reconfiguration control messages (Fig. 8).
    Reconfigure,
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Operation::Send => "send",
            Operation::Receive => "receive",
            Operation::Reconfigure => "reconfigure",
        };
        f.write_str(s)
    }
}

/// An access rule: subject + operation + message type (or any) + optional context
/// condition, producing allow or deny.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessRule {
    /// Who the rule applies to.
    pub subject: Subject,
    /// The operation governed.
    pub operation: Operation,
    /// The message type, or `None` for any.
    pub message_type: Option<MessageType>,
    /// A context condition that must hold for the rule to apply.
    pub condition: Condition,
    /// Whether the rule allows (`true`) or denies (`false`).
    pub allow: bool,
}

impl AccessRule {
    /// A rule allowing `subject` to perform `operation` on `message_type`.
    pub fn allow(
        subject: Subject,
        operation: Operation,
        message_type: Option<MessageType>,
    ) -> Self {
        AccessRule { subject, operation, message_type, condition: Condition::Always, allow: true }
    }

    /// A rule denying `subject` the `operation` on `message_type`.
    pub fn deny(subject: Subject, operation: Operation, message_type: Option<MessageType>) -> Self {
        AccessRule { subject, operation, message_type, condition: Condition::Always, allow: false }
    }

    /// Restricts the rule to circumstances where `condition` holds.
    pub fn when(mut self, condition: Condition) -> Self {
        self.condition = condition;
        self
    }

    fn applies_to(
        &self,
        principal: &Principal,
        operation: Operation,
        message_type: Option<&MessageType>,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> bool {
        if self.operation != operation {
            return false;
        }
        let subject_matches = match &self.subject {
            Subject::Principal(name) => name == &principal.name,
            Subject::Role(role) => principal.has_role(role),
            Subject::Anyone => true,
        };
        if !subject_matches {
            return false;
        }
        let type_matches = match (&self.message_type, message_type) {
            (None, _) => true,
            (Some(required), Some(actual)) => required == actual,
            (Some(_), None) => false,
        };
        if !type_matches {
            return false;
        }
        self.condition.evaluate(snapshot, now)
    }
}

/// The decision reached by the regime.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessDecision {
    /// Allowed by the named rule index.
    Allowed,
    /// Denied: either an explicit deny rule applied or no allow rule matched
    /// (default-deny).
    Denied {
        /// Human-readable explanation.
        reason: String,
    },
}

impl AccessDecision {
    /// Whether access is allowed.
    pub fn is_allowed(&self) -> bool {
        matches!(self, AccessDecision::Allowed)
    }
}

/// The middleware's access-control regime: per-component rule lists, default-deny, with
/// explicit denies overriding allows.
#[derive(Debug, Clone, Default)]
pub struct AccessRegime {
    /// Rules scoped to a component name (the component whose resources are accessed).
    rules: BTreeMap<String, Vec<AccessRule>>,
    /// Bumped on every rule-set mutation, so decision caches keyed on this regime can
    /// detect staleness without comparing rule lists.
    revision: u64,
}

impl AccessRegime {
    /// Creates an empty (default-deny) regime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule governing access to `component`.
    pub fn add_rule(&mut self, component: impl Into<String>, rule: AccessRule) {
        self.revision += 1;
        self.rules.entry(component.into()).or_default().push(rule);
    }

    /// Removes all rules for a component, returning how many were removed.
    pub fn clear_component(&mut self, component: &str) -> usize {
        self.revision += 1;
        self.rules.remove(component).map(|v| v.len()).unwrap_or(0)
    }

    /// Number of rules across all components.
    pub fn rule_count(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// A counter bumped on every rule mutation. Decision caches remember the revision
    /// their entries were computed under and clear themselves when it moves.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The context keys any rule governing `component` references, deduplicated.
    ///
    /// A cached decision for `component` must be invalidated when *any* of these keys
    /// changes: a change can both un-match a previously matching rule and match a
    /// previously inapplicable one, so the dependency set is the union over all rules,
    /// not just the rules that matched.
    pub fn referenced_context_keys(&self, component: &str) -> Vec<&str> {
        let mut keys: Vec<&str> = self
            .rules
            .get(component)
            .into_iter()
            .flatten()
            .flat_map(|rule| rule.condition.referenced_keys())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Whether any rule governing `component` has a time-dependent condition
    /// ([`Condition::is_time_dependent`]); such components' decisions must not be
    /// cached, as they can flip without any context change.
    pub fn has_time_dependent_rules(&self, component: &str) -> bool {
        self.rules
            .get(component)
            .is_some_and(|rules| rules.iter().any(|rule| rule.condition.is_time_dependent()))
    }

    /// Decides whether `principal` may perform `operation` (optionally on
    /// `message_type`) against `component`, in the given context.
    ///
    /// Deny rules override allow rules; with no matching rule the default is deny.
    pub fn decide(
        &self,
        component: &str,
        principal: &Principal,
        operation: Operation,
        message_type: Option<&MessageType>,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> AccessDecision {
        let Some(rules) = self.rules.get(component) else {
            return AccessDecision::Denied {
                reason: format!("no access rules defined for component `{component}`"),
            };
        };
        let mut allowed = false;
        for rule in rules {
            if rule.applies_to(principal, operation, message_type, snapshot, now) {
                if !rule.allow {
                    return AccessDecision::Denied {
                        reason: format!(
                            "explicit deny: {} may not {} on `{component}`",
                            principal.name, operation
                        ),
                    };
                }
                allowed = true;
            }
        }
        if allowed {
            AccessDecision::Allowed
        } else {
            AccessDecision::Denied {
                reason: format!(
                    "no allow rule matches {} performing {} on `{component}`",
                    principal.name, operation
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_context::ContextSnapshot;

    fn nurse() -> Principal {
        Principal::new("nina").with_role("nurse(ward-3)")
    }

    fn snapshot_on_shift(on: bool) -> ContextSnapshot {
        ContextSnapshot::from_pairs([("nina.on-shift", on)])
    }

    #[test]
    fn default_deny_without_rules() {
        let regime = AccessRegime::new();
        let d = regime.decide(
            "ann-analyser",
            &nurse(),
            Operation::Receive,
            None,
            &ContextSnapshot::default(),
            Timestamp::ZERO,
        );
        assert!(!d.is_allowed());
        assert_eq!(regime.rule_count(), 0);
    }

    #[test]
    fn role_based_allow_with_context_condition() {
        let mut regime = AccessRegime::new();
        regime.add_rule(
            "ann-analyser",
            AccessRule::allow(
                Subject::Role("nurse(ward-3)".into()),
                Operation::Receive,
                Some(MessageType::new("sensor-reading")),
            )
            .when(Condition::is_true("nina.on-shift")),
        );
        let mt = MessageType::new("sensor-reading");
        // On shift: allowed.
        let d = regime.decide(
            "ann-analyser",
            &nurse(),
            Operation::Receive,
            Some(&mt),
            &snapshot_on_shift(true),
            Timestamp::ZERO,
        );
        assert!(d.is_allowed());
        // Off shift: denied.
        let d = regime.decide(
            "ann-analyser",
            &nurse(),
            Operation::Receive,
            Some(&mt),
            &snapshot_on_shift(false),
            Timestamp::ZERO,
        );
        assert!(!d.is_allowed());
        // Wrong message type: denied.
        let other = MessageType::new("actuation-command");
        let d = regime.decide(
            "ann-analyser",
            &nurse(),
            Operation::Receive,
            Some(&other),
            &snapshot_on_shift(true),
            Timestamp::ZERO,
        );
        assert!(!d.is_allowed());
        // Wrong role: denied.
        let visitor = Principal::new("victor").with_role("visitor");
        let d = regime.decide(
            "ann-analyser",
            &visitor,
            Operation::Receive,
            Some(&mt),
            &snapshot_on_shift(true),
            Timestamp::ZERO,
        );
        assert!(!d.is_allowed());
    }

    #[test]
    fn explicit_deny_overrides_allow() {
        let mut regime = AccessRegime::new();
        regime.add_rule("device", AccessRule::allow(Subject::Anyone, Operation::Send, None));
        regime.add_rule(
            "device",
            AccessRule::deny(Subject::Principal("mallory".into()), Operation::Send, None),
        );
        let mallory = Principal::new("mallory");
        let alice = Principal::new("alice");
        assert!(!regime
            .decide(
                "device",
                &mallory,
                Operation::Send,
                None,
                &ContextSnapshot::default(),
                Timestamp::ZERO
            )
            .is_allowed());
        assert!(regime
            .decide(
                "device",
                &alice,
                Operation::Send,
                None,
                &ContextSnapshot::default(),
                Timestamp::ZERO
            )
            .is_allowed());
    }

    #[test]
    fn reconfigure_operation_is_separately_controlled() {
        let mut regime = AccessRegime::new();
        regime.add_rule(
            "ann-sensor",
            AccessRule::allow(Subject::Role("policy-engine".into()), Operation::Reconfigure, None),
        );
        let engine = Principal::new("hospital-engine").with_role("policy-engine");
        let attacker = Principal::new("attacker");
        assert!(regime
            .decide(
                "ann-sensor",
                &engine,
                Operation::Reconfigure,
                None,
                &ContextSnapshot::default(),
                Timestamp::ZERO
            )
            .is_allowed());
        assert!(!regime
            .decide(
                "ann-sensor",
                &attacker,
                Operation::Reconfigure,
                None,
                &ContextSnapshot::default(),
                Timestamp::ZERO
            )
            .is_allowed());
        // Holding reconfigure rights does not imply send rights.
        assert!(!regime
            .decide(
                "ann-sensor",
                &engine,
                Operation::Send,
                None,
                &ContextSnapshot::default(),
                Timestamp::ZERO
            )
            .is_allowed());
    }

    #[test]
    fn revision_tracks_rule_mutations() {
        let mut regime = AccessRegime::new();
        assert_eq!(regime.revision(), 0);
        regime.add_rule("c", AccessRule::allow(Subject::Anyone, Operation::Send, None));
        assert_eq!(regime.revision(), 1);
        regime.clear_component("c");
        assert_eq!(regime.revision(), 2);
    }

    #[test]
    fn referenced_keys_union_all_rules_for_a_component() {
        let mut regime = AccessRegime::new();
        regime.add_rule(
            "c",
            AccessRule::allow(Subject::Anyone, Operation::Send, None)
                .when(Condition::is_true("emergency.active")),
        );
        regime.add_rule(
            "c",
            AccessRule::deny(Subject::Principal("mallory".into()), Operation::Send, None)
                .when(Condition::number_at_least("patient.heart-rate", 120.0)),
        );
        regime.add_rule(
            "other",
            AccessRule::allow(Subject::Anyone, Operation::Send, None)
                .when(Condition::is_true("unrelated")),
        );
        assert_eq!(
            regime.referenced_context_keys("c"),
            vec!["emergency.active", "patient.heart-rate"]
        );
        assert!(regime.referenced_context_keys("missing").is_empty());
        assert!(!regime.has_time_dependent_rules("c"));
        regime.add_rule(
            "c",
            AccessRule::allow(Subject::Anyone, Operation::Send, None)
                .when(Condition::within_time(0, 100)),
        );
        assert!(regime.has_time_dependent_rules("c"));
        assert!(!regime.has_time_dependent_rules("other"));
    }

    #[test]
    fn clear_component_removes_rules() {
        let mut regime = AccessRegime::new();
        regime.add_rule("c", AccessRule::allow(Subject::Anyone, Operation::Send, None));
        regime.add_rule("c", AccessRule::allow(Subject::Anyone, Operation::Receive, None));
        assert_eq!(regime.rule_count(), 2);
        assert_eq!(regime.clear_component("c"), 2);
        assert_eq!(regime.clear_component("c"), 0);
        assert_eq!(regime.rule_count(), 0);
    }

    #[test]
    fn principal_roles_and_display() {
        let p = nurse();
        assert!(p.has_role("nurse(ward-3)"));
        assert!(!p.has_role("nurse(ward-4)"));
        assert!(p.to_string().contains("nina"));
        assert!(p.to_string().contains("nurse(ward-3)"));
        assert_eq!(Operation::Reconfigure.to_string(), "reconfigure");
        assert!(!AccessDecision::Denied { reason: "r".into() }.is_allowed());
    }
}
