//! Third-party reconfiguration control messages (Fig. 8).
//!
//! "SBUS not only supports system components reconfiguring their own state; but
//! importantly, allows reconfiguration actions to be issued by third parties. … These
//! third-party instructions are executed as though the application had initiated them
//! … The reconfiguration commands are issued through the messaging system via control
//! messages … subject to the same general AC regime, to ensure that reconfigurations are
//! only actioned when received from trusted third parties." (§8.1)

use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_ifc::{Privilege, SecurityContext, Tag};
use legaliot_policy::{Action, ReconfigurationCommand};

/// The concrete reconfiguration operations a control message can carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReconfigureOp {
    /// Replace the target component's security context.
    SetContext {
        /// The new context.
        context: SecurityContext,
    },
    /// Add a tag to the target's secrecy or integrity label.
    AddTag {
        /// The tag to add.
        tag: Tag,
        /// `true` for the secrecy label, `false` for integrity.
        secrecy: bool,
    },
    /// Remove a tag from the target's secrecy or integrity label.
    RemoveTag {
        /// The tag to remove.
        tag: Tag,
        /// `true` for the secrecy label, `false` for integrity.
        secrecy: bool,
    },
    /// Grant an IFC privilege to the target.
    GrantPrivilege {
        /// The privilege to grant.
        privilege: Privilege,
    },
    /// Revoke an IFC privilege from the target.
    RevokePrivilege {
        /// The privilege to revoke.
        privilege: Privilege,
    },
    /// Establish a channel from the target to another component.
    Connect {
        /// The destination component.
        to: String,
    },
    /// Tear down the channel from the target to another component.
    Disconnect {
        /// The destination component.
        to: String,
    },
    /// Isolate the target: tear down all channels and refuse new ones.
    Isolate,
    /// Lift a previous isolation.
    Deisolate,
    /// Deliver an actuation command to the target device.
    Actuate {
        /// The command, e.g. `sample-interval=1s`.
        command: String,
    },
}

impl fmt::Display for ReconfigureOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigureOp::SetContext { context } => write!(f, "set-context {context}"),
            ReconfigureOp::AddTag { tag, secrecy } => {
                write!(f, "add-{}-tag {tag}", if *secrecy { "secrecy" } else { "integrity" })
            }
            ReconfigureOp::RemoveTag { tag, secrecy } => {
                write!(f, "remove-{}-tag {tag}", if *secrecy { "secrecy" } else { "integrity" })
            }
            ReconfigureOp::GrantPrivilege { privilege } => write!(f, "grant {privilege}"),
            ReconfigureOp::RevokePrivilege { privilege } => write!(f, "revoke {privilege}"),
            ReconfigureOp::Connect { to } => write!(f, "connect-to {to}"),
            ReconfigureOp::Disconnect { to } => write!(f, "disconnect-from {to}"),
            ReconfigureOp::Isolate => write!(f, "isolate"),
            ReconfigureOp::Deisolate => write!(f, "deisolate"),
            ReconfigureOp::Actuate { command } => write!(f, "actuate {command}"),
        }
    }
}

/// A control message: a reconfiguration operation addressed to a component, issued by a
/// principal on behalf of a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlMessage {
    /// The component the operation targets.
    pub target: String,
    /// The operation.
    pub op: ReconfigureOp,
    /// The issuing principal's name (checked against the AC regime's `Reconfigure`
    /// operation for the target).
    pub issued_by: String,
    /// The policy rule that produced the instruction, for audit.
    pub policy: String,
    /// Simulated issue time (ms).
    pub issued_at_millis: u64,
}

impl ControlMessage {
    /// Creates a control message.
    pub fn new(
        target: impl Into<String>,
        op: ReconfigureOp,
        issued_by: impl Into<String>,
        policy: impl Into<String>,
        issued_at_millis: u64,
    ) -> Self {
        ControlMessage {
            target: target.into(),
            op,
            issued_by: issued_by.into(),
            policy: policy.into(),
            issued_at_millis,
        }
    }

    /// Translates a policy-engine [`ReconfigurationCommand`] into zero or more control
    /// messages. `Notify` actions produce no control message (they go to principals, not
    /// components); flow allow/deny actions are enforced by the channel layer directly.
    pub fn from_command(command: &ReconfigurationCommand) -> Vec<ControlMessage> {
        let mk = |target: &str, op: ReconfigureOp| {
            ControlMessage::new(
                target,
                op,
                command.authority.clone(),
                command.issued_by_policy.clone(),
                command.issued_at_millis,
            )
        };
        match &command.action {
            Action::SetSecurityContext { component, context } => {
                vec![mk(component, ReconfigureOp::SetContext { context: context.clone() })]
            }
            Action::AddTag { component, tag, secrecy } => {
                vec![mk(component, ReconfigureOp::AddTag { tag: tag.clone(), secrecy: *secrecy })]
            }
            Action::RemoveTag { component, tag, secrecy } => {
                vec![mk(
                    component,
                    ReconfigureOp::RemoveTag { tag: tag.clone(), secrecy: *secrecy },
                )]
            }
            Action::GrantPrivilege { component, privilege } => {
                vec![mk(component, ReconfigureOp::GrantPrivilege { privilege: privilege.clone() })]
            }
            Action::RevokePrivilege { component, privilege } => {
                vec![mk(component, ReconfigureOp::RevokePrivilege { privilege: privilege.clone() })]
            }
            Action::Connect { from, to } => {
                vec![mk(from, ReconfigureOp::Connect { to: to.clone() })]
            }
            Action::Disconnect { from, to } => {
                vec![mk(from, ReconfigureOp::Disconnect { to: to.clone() })]
            }
            Action::RouteVia { from, via, to } => vec![
                mk(from, ReconfigureOp::Connect { to: via.clone() }),
                mk(via, ReconfigureOp::Connect { to: to.clone() }),
                mk(from, ReconfigureOp::Disconnect { to: to.clone() }),
            ],
            Action::Isolate { component } => vec![mk(component, ReconfigureOp::Isolate)],
            Action::Actuate { component, command: cmd } => {
                vec![mk(component, ReconfigureOp::Actuate { command: cmd.clone() })]
            }
            Action::AllowFlow { .. } | Action::DenyFlow { .. } | Action::Notify { .. } => {
                Vec::new()
            }
        }
    }
}

impl fmt::Display for ControlMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "control[{} -> {}]: {} (policy {})",
            self.issued_by, self.target, self.op, self.policy
        )
    }
}

/// The middleware's response to a control message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlOutcome {
    /// The operation was authorised and applied.
    Applied,
    /// The issuer is not authorised to reconfigure the target.
    Unauthorised {
        /// Why.
        reason: String,
    },
    /// The target component is unknown.
    UnknownTarget,
    /// The operation was authorised but could not be applied (e.g. privilege grant for
    /// a tag the authority does not own).
    Failed {
        /// Why.
        reason: String,
    },
}

impl ControlOutcome {
    /// Whether the operation was applied.
    pub fn is_applied(&self) -> bool {
        matches!(self, ControlOutcome::Applied)
    }
}

impl fmt::Display for ControlOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlOutcome::Applied => write!(f, "applied"),
            ControlOutcome::Unauthorised { reason } => write!(f, "unauthorised: {reason}"),
            ControlOutcome::UnknownTarget => write!(f, "unknown target"),
            ControlOutcome::Failed { reason } => write!(f, "failed: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_ifc::PrivilegeKind;

    #[test]
    fn command_translation_covers_addressed_actions() {
        let cmd = ReconfigurationCommand::new(
            "emergency-response",
            "hospital",
            Action::Connect { from: "ann-analyser".into(), to: "doctor".into() },
            7,
        );
        let msgs = ControlMessage::from_command(&cmd);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].target, "ann-analyser");
        assert_eq!(msgs[0].issued_by, "hospital");
        assert_eq!(msgs[0].policy, "emergency-response");
        assert_eq!(msgs[0].issued_at_millis, 7);
        assert!(matches!(msgs[0].op, ReconfigureOp::Connect { .. }));
    }

    #[test]
    fn route_via_expands_to_three_operations() {
        let cmd = ReconfigurationCommand::new(
            "anonymise",
            "hospital",
            Action::RouteVia {
                from: "records".into(),
                via: "anonymiser".into(),
                to: "analytics".into(),
            },
            0,
        );
        let msgs = ControlMessage::from_command(&cmd);
        assert_eq!(msgs.len(), 3);
        assert!(matches!(msgs[0].op, ReconfigureOp::Connect { .. }));
        assert_eq!(msgs[1].target, "anonymiser");
        assert!(matches!(msgs[2].op, ReconfigureOp::Disconnect { .. }));
    }

    #[test]
    fn notify_and_flow_actions_produce_no_control_messages() {
        for action in [
            Action::Notify { recipient: "doc".into(), message: "m".into() },
            Action::AllowFlow { from: "a".into(), to: "b".into() },
            Action::DenyFlow { from: "a".into(), to: "b".into() },
        ] {
            let cmd = ReconfigurationCommand::new("p", "a", action, 0);
            assert!(ControlMessage::from_command(&cmd).is_empty());
        }
    }

    #[test]
    fn all_ops_translate_and_display() {
        let ops = vec![
            Action::SetSecurityContext {
                component: "c".into(),
                context: SecurityContext::public(),
            },
            Action::AddTag { component: "c".into(), tag: Tag::new("t"), secrecy: true },
            Action::RemoveTag { component: "c".into(), tag: Tag::new("t"), secrecy: false },
            Action::GrantPrivilege {
                component: "c".into(),
                privilege: Privilege::new("t", PrivilegeKind::IntegrityAdd),
            },
            Action::RevokePrivilege {
                component: "c".into(),
                privilege: Privilege::new("t", PrivilegeKind::IntegrityAdd),
            },
            Action::Isolate { component: "c".into() },
            Action::Actuate { component: "c".into(), command: "x".into() },
        ];
        for action in ops {
            let cmd = ReconfigurationCommand::new("p", "a", action, 0);
            let msgs = ControlMessage::from_command(&cmd);
            assert_eq!(msgs.len(), 1);
            assert!(!msgs[0].to_string().is_empty());
            assert!(!msgs[0].op.to_string().is_empty());
        }
        assert_eq!(ReconfigureOp::Isolate.to_string(), "isolate");
        assert_eq!(ReconfigureOp::Deisolate.to_string(), "deisolate");
    }

    #[test]
    fn outcome_helpers() {
        assert!(ControlOutcome::Applied.is_applied());
        assert!(!ControlOutcome::UnknownTarget.is_applied());
        assert!(ControlOutcome::Unauthorised { reason: "r".into() }
            .to_string()
            .contains("unauthorised"));
        assert!(ControlOutcome::Failed { reason: "r".into() }.to_string().contains("failed"));
        assert_eq!(ControlOutcome::UnknownTarget.to_string(), "unknown target");
        assert_eq!(ControlOutcome::Applied.to_string(), "applied");
    }
}
