//! Typed message schemas and messages with message-level IFC tags.
//!
//! "Messages are strongly typed, consisting of a set of named and typed attributes, and
//! certain message types, or attributes thereof, can be more sensitive than others; e.g.
//! for a message type `person`, attribute `name` is likely more sensitive than
//! `country`" (§8.2.2). Message-level tags augment the component's security context
//! (Fig. 10); enforcement "may entail source quenching, in that messages/attribute
//! values are not transferred if the tags of each party do not accord".

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_ifc::{Label, SecurityContext};

/// The name of a message type (e.g. `sensor-reading`, `actuation-command`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MessageType(String);

impl MessageType {
    /// Creates a message type name.
    pub fn new(name: impl Into<String>) -> Self {
        MessageType(name.into())
    }

    /// The type's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MessageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for MessageType {
    fn from(value: &str) -> Self {
        MessageType::new(value)
    }
}

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeValue {
    /// Text.
    Text(String),
    /// Integer.
    Integer(i64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeValue::Text(s) => write!(f, "{s}"),
            AttributeValue::Integer(i) => write!(f, "{i}"),
            AttributeValue::Float(x) => write!(f, "{x}"),
            AttributeValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// The kind of an attribute, for schema checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Text attribute.
    Text,
    /// Integer attribute.
    Integer,
    /// Float attribute.
    Float,
    /// Boolean attribute.
    Bool,
}

impl AttributeValue {
    /// The kind of this value.
    pub fn kind(&self) -> AttributeKind {
        match self {
            AttributeValue::Text(_) => AttributeKind::Text,
            AttributeValue::Integer(_) => AttributeKind::Integer,
            AttributeValue::Float(_) => AttributeKind::Float,
            AttributeValue::Bool(_) => AttributeKind::Bool,
        }
    }
}

/// The schema of a message type: attribute names, kinds and per-attribute secrecy tags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageSchema {
    /// The message type this schema describes.
    pub message_type: MessageType,
    /// Attribute name → kind.
    pub attributes: BTreeMap<String, AttributeKind>,
    /// Per-attribute additional secrecy tags (message-level tags; Fig. 10's tag `C`).
    pub attribute_secrecy: BTreeMap<String, Label>,
}

impl MessageSchema {
    /// Creates a schema for the given message type with no attributes.
    pub fn new(message_type: impl Into<MessageType>) -> Self {
        MessageSchema {
            message_type: message_type.into(),
            attributes: BTreeMap::new(),
            attribute_secrecy: BTreeMap::new(),
        }
    }

    /// Adds an attribute of the given kind.
    pub fn attribute(mut self, name: impl Into<String>, kind: AttributeKind) -> Self {
        self.attributes.insert(name.into(), kind);
        self
    }

    /// Adds an attribute with extra secrecy tags that only exist at the messaging level.
    pub fn sensitive_attribute(
        mut self,
        name: impl Into<String>,
        kind: AttributeKind,
        secrecy: Label,
    ) -> Self {
        let name = name.into();
        self.attributes.insert(name.clone(), kind);
        self.attribute_secrecy.insert(name, secrecy);
        self
    }

    /// Validates a message against this schema: every attribute present must be declared
    /// with the right kind, and all declared attributes must be present.
    pub fn validate(&self, message: &Message) -> Result<(), String> {
        if message.message_type != self.message_type {
            return Err(format!(
                "message type `{}` does not match schema `{}`",
                message.message_type, self.message_type
            ));
        }
        for (name, kind) in &self.attributes {
            match message.attributes.get(name) {
                None => return Err(format!("missing attribute `{name}`")),
                Some(v) if v.kind() != *kind => {
                    return Err(format!("attribute `{name}` has the wrong type"))
                }
                Some(_) => {}
            }
        }
        for name in message.attributes.keys() {
            if !self.attributes.contains_key(name) {
                return Err(format!("undeclared attribute `{name}`"));
            }
        }
        Ok(())
    }

    /// The extra secrecy label of an attribute, if any.
    pub fn attribute_label(&self, name: &str) -> Option<&Label> {
        self.attribute_secrecy.get(name)
    }
}

/// A typed message: attributes plus the security context it carries end-to-end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// The message's type.
    pub message_type: MessageType,
    /// The attribute values.
    pub attributes: BTreeMap<String, AttributeValue>,
    /// The security context the data carries (normally the sender's context joined with
    /// any message-level tags).
    pub context: SecurityContext,
    /// The sending component's name (filled in by the middleware).
    pub sender: String,
    /// Simulated send time (ms).
    pub sent_at_millis: u64,
}

impl Message {
    /// Creates a message of the given type with no attributes.
    pub fn new(message_type: impl Into<MessageType>, context: SecurityContext) -> Self {
        Message {
            message_type: message_type.into(),
            attributes: BTreeMap::new(),
            context,
            sender: String::new(),
            sent_at_millis: 0,
        }
    }

    /// Adds an attribute.
    pub fn with(mut self, name: impl Into<String>, value: AttributeValue) -> Self {
        self.attributes.insert(name.into(), value);
        self
    }

    /// Returns a copy of this message with the named attributes removed — the
    /// *source-quenched* form delivered when some attributes' tags do not accord.
    pub fn quenched(&self, removed: &[String]) -> Message {
        let mut out = self.clone();
        for name in removed {
            out.attributes.remove(name);
        }
        out
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} attrs) from {}", self.message_type, self.attributes.len(), self.sender)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading_schema() -> MessageSchema {
        MessageSchema::new("sensor-reading")
            .attribute("value", AttributeKind::Float)
            .attribute("unit", AttributeKind::Text)
            .sensitive_attribute(
                "patient-name",
                AttributeKind::Text,
                Label::from_names(["identity"]),
            )
    }

    fn reading_message() -> Message {
        Message::new("sensor-reading", SecurityContext::from_names(["medical"], Vec::<&str>::new()))
            .with("value", AttributeValue::Float(72.0))
            .with("unit", AttributeValue::Text("bpm".into()))
            .with("patient-name", AttributeValue::Text("Ann".into()))
    }

    #[test]
    fn schema_validation_accepts_conforming_messages() {
        assert!(reading_schema().validate(&reading_message()).is_ok());
    }

    #[test]
    fn schema_validation_rejects_missing_wrong_and_undeclared() {
        let schema = reading_schema();
        let missing = Message::new("sensor-reading", SecurityContext::public())
            .with("value", AttributeValue::Float(1.0))
            .with("unit", AttributeValue::Text("bpm".into()));
        assert!(schema.validate(&missing).unwrap_err().contains("missing"));

        let wrong_type = reading_message().with("value", AttributeValue::Text("high".into()));
        assert!(schema.validate(&wrong_type).unwrap_err().contains("wrong type"));

        let undeclared = reading_message().with("extra", AttributeValue::Bool(true));
        assert!(schema.validate(&undeclared).unwrap_err().contains("undeclared"));

        let wrong_msg_type = Message::new("other", SecurityContext::public());
        assert!(schema.validate(&wrong_msg_type).unwrap_err().contains("does not match"));
    }

    #[test]
    fn sensitive_attributes_carry_extra_labels() {
        let schema = reading_schema();
        assert_eq!(schema.attribute_label("patient-name"), Some(&Label::from_names(["identity"])));
        assert!(schema.attribute_label("value").is_none());
    }

    #[test]
    fn quenching_removes_attributes() {
        let msg = reading_message();
        let quenched = msg.quenched(&["patient-name".to_string()]);
        assert_eq!(quenched.attributes.len(), 2);
        assert!(!quenched.attributes.contains_key("patient-name"));
        // Original untouched.
        assert_eq!(msg.attributes.len(), 3);
    }

    #[test]
    fn value_kinds_and_display() {
        assert_eq!(AttributeValue::Text("x".into()).kind(), AttributeKind::Text);
        assert_eq!(AttributeValue::Integer(1).kind(), AttributeKind::Integer);
        assert_eq!(AttributeValue::Float(1.0).kind(), AttributeKind::Float);
        assert_eq!(AttributeValue::Bool(true).kind(), AttributeKind::Bool);
        assert_eq!(AttributeValue::Bool(true).to_string(), "true");
        assert_eq!(MessageType::new("t").to_string(), "t");
        assert!(reading_message().to_string().contains("sensor-reading"));
    }
}
