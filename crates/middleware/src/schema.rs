//! Typed message schemas and messages with message-level IFC tags.
//!
//! "Messages are strongly typed, consisting of a set of named and typed attributes, and
//! certain message types, or attributes thereof, can be more sensitive than others; e.g.
//! for a message type `person`, attribute `name` is likely more sensitive than
//! `country`" (§8.2.2). Message-level tags augment the component's security context
//! (Fig. 10); enforcement "may entail source quenching, in that messages/attribute
//! values are not transferred if the tags of each party do not accord".

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use legaliot_ifc::{Label, SecurityContext, StableHasher};

/// The name of a message type (e.g. `sensor-reading`, `actuation-command`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MessageType(String);

impl MessageType {
    /// Creates a message type name.
    pub fn new(name: impl Into<String>) -> Self {
        MessageType(name.into())
    }

    /// The type's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MessageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for MessageType {
    fn from(value: &str) -> Self {
        MessageType::new(value)
    }
}

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeValue {
    /// Text.
    Text(String),
    /// Integer.
    Integer(i64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeValue::Text(s) => write!(f, "{s}"),
            AttributeValue::Integer(i) => write!(f, "{i}"),
            AttributeValue::Float(x) => write!(f, "{x}"),
            AttributeValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// The kind of an attribute, for schema checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Text attribute.
    Text,
    /// Integer attribute.
    Integer,
    /// Float attribute.
    Float,
    /// Boolean attribute.
    Bool,
}

impl AttributeValue {
    /// The kind of this value.
    pub fn kind(&self) -> AttributeKind {
        match self {
            AttributeValue::Text(_) => AttributeKind::Text,
            AttributeValue::Integer(_) => AttributeKind::Integer,
            AttributeValue::Float(_) => AttributeKind::Float,
            AttributeValue::Bool(_) => AttributeKind::Bool,
        }
    }
}

/// The schema of a message type: attribute names, kinds and per-attribute secrecy tags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageSchema {
    /// The message type this schema describes.
    pub message_type: MessageType,
    /// Attribute name → kind.
    pub attributes: BTreeMap<String, AttributeKind>,
    /// Per-attribute additional secrecy tags (message-level tags; Fig. 10's tag `C`).
    pub attribute_secrecy: BTreeMap<String, Label>,
}

impl MessageSchema {
    /// Creates a schema for the given message type with no attributes.
    pub fn new(message_type: impl Into<MessageType>) -> Self {
        MessageSchema {
            message_type: message_type.into(),
            attributes: BTreeMap::new(),
            attribute_secrecy: BTreeMap::new(),
        }
    }

    /// Adds an attribute of the given kind.
    pub fn attribute(mut self, name: impl Into<String>, kind: AttributeKind) -> Self {
        self.attributes.insert(name.into(), kind);
        self
    }

    /// Adds an attribute with extra secrecy tags that only exist at the messaging level.
    pub fn sensitive_attribute(
        mut self,
        name: impl Into<String>,
        kind: AttributeKind,
        secrecy: Label,
    ) -> Self {
        let name = name.into();
        self.attributes.insert(name.clone(), kind);
        self.attribute_secrecy.insert(name, secrecy);
        self
    }

    /// Validates a message against this schema: every attribute present must be declared
    /// with the right kind, and all declared attributes must be present.
    pub fn validate(&self, message: &Message) -> Result<(), String> {
        if message.message_type != self.message_type {
            return Err(format!(
                "message type `{}` does not match schema `{}`",
                message.message_type, self.message_type
            ));
        }
        for (name, kind) in &self.attributes {
            match message.attributes.get(name) {
                None => return Err(format!("missing attribute `{name}`")),
                Some(v) if v.kind() != *kind => {
                    return Err(format!("attribute `{name}` has the wrong type"))
                }
                Some(_) => {}
            }
        }
        for name in message.attributes.keys() {
            if !self.attributes.contains_key(name) {
                return Err(format!("undeclared attribute `{name}`"));
            }
        }
        Ok(())
    }

    /// The extra secrecy label of an attribute, if any.
    pub fn attribute_label(&self, name: &str) -> Option<&Label> {
        self.attribute_secrecy.get(name)
    }
}

/// A typed message: attributes plus the security context it carries end-to-end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// The message's type.
    pub message_type: MessageType,
    /// The attribute values.
    pub attributes: BTreeMap<String, AttributeValue>,
    /// The security context the data carries (normally the sender's context joined with
    /// any message-level tags).
    pub context: SecurityContext,
    /// The sending component's name (filled in by the middleware).
    pub sender: String,
    /// Simulated send time (ms).
    pub sent_at_millis: u64,
}

impl Message {
    /// Creates a message of the given type with no attributes.
    pub fn new(message_type: impl Into<MessageType>, context: SecurityContext) -> Self {
        Message {
            message_type: message_type.into(),
            attributes: BTreeMap::new(),
            context,
            sender: String::new(),
            sent_at_millis: 0,
        }
    }

    /// Adds an attribute.
    pub fn with(mut self, name: impl Into<String>, value: AttributeValue) -> Self {
        self.attributes.insert(name.into(), value);
        self
    }

    /// Returns a copy of this message with the named attributes removed — the
    /// *source-quenched* form delivered when some attributes' tags do not accord.
    ///
    /// Accepts any iterator of string-likes (`&str`, `String`, `&String`, …) so call
    /// sites never have to allocate fresh `String`s just to name the attributes.
    pub fn quenched<I>(&self, removed: I) -> Message
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut out = self.clone();
        for name in removed {
            out.attributes.remove(name.as_ref());
        }
        out
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} attrs) from {}", self.message_type, self.attributes.len(), self.sender)
    }
}

/// The largest number of attributes a schema may declare and still be frozen: presence
/// and quench state of a [`FrozenMessage`] is a single `u64` bitmask over attribute
/// indices, which is what makes per-delivery quenching O(attributes) bit work instead
/// of a map clone.
pub const MAX_FROZEN_ATTRIBUTES: usize = 64;

fn kind_tag(kind: AttributeKind) -> &'static str {
    match kind {
        AttributeKind::Text => "text",
        AttributeKind::Integer => "integer",
        AttributeKind::Float => "float",
        AttributeKind::Bool => "bool",
    }
}

/// An immutable, shareable compilation of a [`MessageSchema`] for the enforcement hot
/// path: attribute names are interned once (`Arc<[Arc<str>]>`), kinds and message-level
/// secrecy labels are index-aligned arrays, and the sensitive attributes are a bitmask,
/// so per-delivery source quenching (Fig. 10) touches no allocations.
///
/// Frozen schemas are handed around as `Arc<FrozenSchema>`; every [`FrozenMessage`] of
/// the type shares the same name table.
#[derive(Debug, Clone)]
pub struct FrozenSchema {
    message_type: MessageType,
    /// Attribute names, sorted — the interned name table shared by every message.
    names: Arc<[Arc<str>]>,
    /// Attribute kinds, index-aligned with `names`.
    kinds: Box<[AttributeKind]>,
    /// Message-level secrecy labels, index-aligned with `names`.
    secrecy: Box<[Option<Label>]>,
    /// Bitmask of indices that carry a message-level secrecy label.
    sensitive_mask: u64,
    /// Stable 64-bit identity of this schema (type, names, kinds, secrecy tags).
    schema_hash: u64,
}

impl FrozenSchema {
    /// Compiles a schema into its frozen form.
    ///
    /// # Errors
    ///
    /// Fails when the schema declares more than [`MAX_FROZEN_ATTRIBUTES`] attributes.
    pub fn new(schema: &MessageSchema) -> Result<Self, String> {
        if schema.attributes.len() > MAX_FROZEN_ATTRIBUTES {
            return Err(format!(
                "schema `{}` declares {} attributes; frozen schemas support at most {}",
                schema.message_type,
                schema.attributes.len(),
                MAX_FROZEN_ATTRIBUTES
            ));
        }
        let names: Arc<[Arc<str>]> =
            schema.attributes.keys().map(|name| Arc::from(name.as_str())).collect();
        let kinds: Box<[AttributeKind]> = schema.attributes.values().copied().collect();
        let mut sensitive_mask = 0u64;
        let secrecy: Box<[Option<Label>]> = names
            .iter()
            .enumerate()
            .map(|(index, name)| {
                let label = schema.attribute_secrecy.get(&**name).cloned();
                if label.is_some() {
                    sensitive_mask |= 1 << index;
                }
                label
            })
            .collect();
        let mut hasher = StableHasher::new().write_str(schema.message_type.as_str());
        for (index, name) in names.iter().enumerate() {
            hasher = hasher.write_str(name).write_str(kind_tag(kinds[index]));
            if let Some(label) = &secrecy[index] {
                for tag in label.iter() {
                    hasher = hasher.write_str(tag.name());
                }
            }
        }
        Ok(FrozenSchema {
            message_type: schema.message_type.clone(),
            names,
            kinds,
            secrecy,
            sensitive_mask,
            schema_hash: hasher.finish(),
        })
    }

    /// The message type this schema describes.
    pub fn message_type(&self) -> &MessageType {
        &self.message_type
    }

    /// Number of declared attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the schema declares no attributes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The interned attribute-name table (sorted).
    pub fn names(&self) -> &Arc<[Arc<str>]> {
        &self.names
    }

    /// The index of an attribute name, if declared.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.binary_search_by(|candidate| (**candidate).cmp(name)).ok()
    }

    /// The kind of the attribute at `index`.
    pub fn kind(&self, index: usize) -> AttributeKind {
        self.kinds[index]
    }

    /// The message-level secrecy label of the attribute at `index`, if any.
    pub fn secrecy(&self, index: usize) -> Option<&Label> {
        self.secrecy[index].as_ref()
    }

    /// Bitmask of attributes carrying message-level secrecy tags.
    pub fn sensitive_mask(&self) -> u64 {
        self.sensitive_mask
    }

    /// Stable 64-bit identity of this schema, suitable for keying quench caches.
    pub fn schema_hash(&self) -> u64 {
        self.schema_hash
    }

    /// The bitmask of attributes that must be *source-quenched* for a destination
    /// holding `destination_secrecy` (Fig. 10): every attribute whose message-level
    /// tags are not all present in the destination's secrecy label. O(sensitive
    /// attributes), no allocation.
    pub fn quench_mask_for(&self, destination_secrecy: &Label) -> u64 {
        let mut mask = 0u64;
        let mut remaining = self.sensitive_mask;
        while remaining != 0 {
            let index = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let label = self.secrecy[index].as_ref().expect("sensitive bit implies label");
            if !label.is_subset(destination_secrecy) {
                mask |= 1 << index;
            }
        }
        mask
    }

    /// The attribute names selected by `mask`, in index order (for audit records).
    pub fn mask_names(&self, mask: u64) -> impl Iterator<Item = &str> + '_ {
        self.names
            .iter()
            .enumerate()
            .filter(move |(index, _)| mask & (1 << index) != 0)
            .map(|(_, name)| &**name)
    }

    /// Validates a message against this schema with the same semantics (and error
    /// wording) as [`MessageSchema::validate`].
    pub fn validate(&self, message: &Message) -> Result<(), String> {
        if message.message_type != self.message_type {
            return Err(format!(
                "message type `{}` does not match schema `{}`",
                message.message_type, self.message_type
            ));
        }
        for (index, name) in self.names.iter().enumerate() {
            match message.attributes.get(&**name) {
                None => return Err(format!("missing attribute `{name}`")),
                Some(v) if v.kind() != self.kinds[index] => {
                    return Err(format!("attribute `{name}` has the wrong type"))
                }
                Some(_) => {}
            }
        }
        if message.attributes.len() > self.names.len() {
            for name in message.attributes.keys() {
                if self.index_of(name).is_none() {
                    return Err(format!("undeclared attribute `{name}`"));
                }
            }
        }
        Ok(())
    }
}

fn encoded_value_len(value: &AttributeValue) -> usize {
    match value {
        AttributeValue::Text(s) => s.len(),
        AttributeValue::Integer(_) | AttributeValue::Float(_) => 8,
        AttributeValue::Bool(_) => 1,
    }
}

/// The encoded payload size of a message's attribute values under the
/// [`Payload`] wire format, without encoding anything (used for bytes-moved
/// accounting in clone-based baselines).
pub fn encoded_payload_len(message: &Message) -> usize {
    message.attributes.values().map(encoded_value_len).sum()
}

/// The attribute values of one message encoded back-to-back into a single immutable,
/// reference-counted buffer ([`Bytes`]), with an offset table shared via `Arc`.
///
/// Cloning a payload is two refcount bumps; no message data is ever copied after
/// freezing. Values decode lazily against the schema's kind table.
#[derive(Debug, Clone)]
pub struct Payload {
    buffer: Bytes,
    /// `len + 1` byte offsets into `buffer`; attribute `i` occupies
    /// `buffer[offsets[i]..offsets[i + 1]]`.
    offsets: Arc<[u32]>,
}

impl Payload {
    fn encode(message: &Message, schema: &FrozenSchema) -> Payload {
        let total: usize = message.attributes.values().map(encoded_value_len).sum();
        let mut buffer = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(schema.len() + 1);
        offsets.push(0u32);
        for name in schema.names.iter() {
            let value = &message.attributes[&**name];
            match value {
                AttributeValue::Text(s) => buffer.extend_from_slice(s.as_bytes()),
                AttributeValue::Integer(i) => buffer.extend_from_slice(&i.to_le_bytes()),
                AttributeValue::Float(x) => buffer.extend_from_slice(&x.to_bits().to_le_bytes()),
                AttributeValue::Bool(b) => buffer.push(u8::from(*b)),
            }
            offsets.push(buffer.len() as u32);
        }
        Payload { buffer: Bytes::from(buffer), offsets: Arc::from(offsets) }
    }

    /// Total encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.buffer.len()
    }

    /// The whole encoded buffer. Clones of a payload (and quenched forms of its
    /// message) share this allocation, so pointer identity of the returned slice
    /// witnesses that no copy happened.
    pub fn as_slice(&self) -> &[u8] {
        &self.buffer
    }

    /// Encoded size in bytes of the attribute at `index`.
    fn span_len(&self, index: usize) -> usize {
        (self.offsets[index + 1] - self.offsets[index]) as usize
    }

    fn decode(&self, index: usize, kind: AttributeKind) -> AttributeValue {
        let start = self.offsets[index] as usize;
        let end = self.offsets[index + 1] as usize;
        let bytes = &self.buffer[start..end];
        match kind {
            AttributeKind::Text => {
                AttributeValue::Text(String::from_utf8_lossy(bytes).into_owned())
            }
            AttributeKind::Integer => {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(bytes);
                AttributeValue::Integer(i64::from_le_bytes(raw))
            }
            AttributeKind::Float => {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(bytes);
                AttributeValue::Float(f64::from_bits(u64::from_le_bytes(raw)))
            }
            AttributeKind::Bool => AttributeValue::Bool(bytes[0] != 0),
        }
    }
}

/// A validated, immutable message frozen against a [`FrozenSchema`]: the zero-copy
/// representation the dataplane carries through its shards.
///
/// All heavy state is shared (`Arc`/[`Bytes`]), so cloning one — e.g. once per
/// subscriber in a fan-out — is a handful of refcount bumps. Quenching clears bits in
/// the `present` mask and shares everything else, in contrast to
/// [`Message::quenched`]'s full map clone.
#[derive(Debug, Clone)]
pub struct FrozenMessage {
    schema: Arc<FrozenSchema>,
    payload: Payload,
    /// The message-level security context the application attached (extra secrecy
    /// tags; integrity always comes from the sender at enforcement time).
    extra_context: Arc<SecurityContext>,
    sender: Arc<str>,
    sent_at_millis: u64,
    /// Bitmask of attributes still present (quenching clears bits).
    present: u64,
}

impl FrozenMessage {
    /// Validates `message` against `schema` and freezes it.
    ///
    /// # Errors
    ///
    /// Returns the same schema-violation message [`MessageSchema::validate`] would.
    pub fn freeze(message: &Message, schema: Arc<FrozenSchema>) -> Result<FrozenMessage, String> {
        schema.validate(message)?;
        let payload = Payload::encode(message, &schema);
        let present = if schema.len() == MAX_FROZEN_ATTRIBUTES {
            u64::MAX
        } else {
            (1u64 << schema.len()) - 1
        };
        Ok(FrozenMessage {
            payload,
            extra_context: Arc::new(message.context.clone()),
            sender: Arc::from(message.sender.as_str()),
            sent_at_millis: message.sent_at_millis,
            present,
            schema,
        })
    }

    /// Replaces the sender (the middleware stamps the publishing endpoint's name).
    #[must_use]
    pub fn with_sender(mut self, sender: Arc<str>) -> Self {
        self.sender = sender;
        self
    }

    /// Replaces the send time (the middleware stamps the publish timestamp).
    #[must_use]
    pub fn with_sent_at(mut self, at_millis: u64) -> Self {
        self.sent_at_millis = at_millis;
        self
    }

    /// The schema this message was frozen against.
    pub fn schema(&self) -> &Arc<FrozenSchema> {
        &self.schema
    }

    /// The message's type.
    pub fn message_type(&self) -> &MessageType {
        self.schema.message_type()
    }

    /// The sending component's name.
    pub fn sender(&self) -> &str {
        &self.sender
    }

    /// Simulated send time (ms).
    pub fn sent_at_millis(&self) -> u64 {
        self.sent_at_millis
    }

    /// The message-level security context (application-supplied extra tags).
    pub fn extra_context(&self) -> &SecurityContext {
        &self.extra_context
    }

    /// Bitmask of attributes still present.
    pub fn present_mask(&self) -> u64 {
        self.present
    }

    /// Number of attributes still present.
    pub fn attribute_count(&self) -> usize {
        self.present.count_ones() as usize
    }

    /// Encoded payload size in bytes (shared across clones and quenched forms).
    pub fn payload_byte_len(&self) -> usize {
        self.payload.byte_len()
    }

    /// The shared encoded payload (for byte-level inspection; the buffer is common to
    /// every clone and quenched form of this message).
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Encoded size in bytes of the attributes still *present* — the effective bytes a
    /// receiver observes, which shrinks as attributes are quenched.
    pub fn present_byte_len(&self) -> usize {
        self.masked_byte_len(self.present)
    }

    /// Encoded size in bytes of the attributes that would remain present after
    /// quenching `mask` — post-quench bytes-moved accounting without materialising the
    /// quenched form.
    pub fn byte_len_after_quench(&self, mask: u64) -> usize {
        self.masked_byte_len(self.present & !mask)
    }

    fn masked_byte_len(&self, mut present: u64) -> usize {
        let mut total = 0;
        while present != 0 {
            let index = present.trailing_zeros() as usize;
            present &= present - 1;
            total += self.payload.span_len(index);
        }
        total
    }

    /// Decodes a present attribute by name.
    pub fn get(&self, name: &str) -> Option<AttributeValue> {
        let index = self.schema.index_of(name)?;
        if self.present & (1 << index) == 0 {
            return None;
        }
        Some(self.payload.decode(index, self.schema.kind(index)))
    }

    /// Iterates the present attributes as `(name, value)` in name order, decoding
    /// values on the fly.
    pub fn attributes(&self) -> impl Iterator<Item = (&str, AttributeValue)> + '_ {
        self.schema
            .names
            .iter()
            .enumerate()
            .filter(move |(index, _)| self.present & (1 << index) != 0)
            .map(move |(index, name)| {
                (&**name, self.payload.decode(index, self.schema.kind(index)))
            })
    }

    /// The source-quenched form with the attributes in `mask` removed: shares the
    /// payload buffer, the name table and the context — only the presence bitmask
    /// changes.
    #[must_use]
    pub fn quench(&self, mask: u64) -> FrozenMessage {
        let mut out = self.clone();
        out.present &= !mask;
        out
    }

    /// Reconstructs the mutable [`Message`] form (decoding every present attribute).
    /// `freeze` followed by `thaw` round-trips exactly.
    pub fn thaw(&self) -> Message {
        Message {
            message_type: self.schema.message_type.clone(),
            attributes: self.attributes().map(|(name, value)| (name.to_string(), value)).collect(),
            context: (*self.extra_context).clone(),
            sender: self.sender.to_string(),
            sent_at_millis: self.sent_at_millis,
        }
    }
}

impl fmt::Display for FrozenMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({} attrs, {} bytes) from {}",
            self.schema.message_type,
            self.attribute_count(),
            self.payload.byte_len(),
            self.sender
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading_schema() -> MessageSchema {
        MessageSchema::new("sensor-reading")
            .attribute("value", AttributeKind::Float)
            .attribute("unit", AttributeKind::Text)
            .sensitive_attribute(
                "patient-name",
                AttributeKind::Text,
                Label::from_names(["identity"]),
            )
    }

    fn reading_message() -> Message {
        Message::new("sensor-reading", SecurityContext::from_names(["medical"], Vec::<&str>::new()))
            .with("value", AttributeValue::Float(72.0))
            .with("unit", AttributeValue::Text("bpm".into()))
            .with("patient-name", AttributeValue::Text("Ann".into()))
    }

    #[test]
    fn schema_validation_accepts_conforming_messages() {
        assert!(reading_schema().validate(&reading_message()).is_ok());
    }

    #[test]
    fn schema_validation_rejects_missing_wrong_and_undeclared() {
        let schema = reading_schema();
        let missing = Message::new("sensor-reading", SecurityContext::public())
            .with("value", AttributeValue::Float(1.0))
            .with("unit", AttributeValue::Text("bpm".into()));
        assert!(schema.validate(&missing).unwrap_err().contains("missing"));

        let wrong_type = reading_message().with("value", AttributeValue::Text("high".into()));
        assert!(schema.validate(&wrong_type).unwrap_err().contains("wrong type"));

        let undeclared = reading_message().with("extra", AttributeValue::Bool(true));
        assert!(schema.validate(&undeclared).unwrap_err().contains("undeclared"));

        let wrong_msg_type = Message::new("other", SecurityContext::public());
        assert!(schema.validate(&wrong_msg_type).unwrap_err().contains("does not match"));
    }

    #[test]
    fn sensitive_attributes_carry_extra_labels() {
        let schema = reading_schema();
        assert_eq!(schema.attribute_label("patient-name"), Some(&Label::from_names(["identity"])));
        assert!(schema.attribute_label("value").is_none());
    }

    #[test]
    fn quenching_removes_attributes() {
        let msg = reading_message();
        let quenched = msg.quenched(&["patient-name".to_string()]);
        assert_eq!(quenched.attributes.len(), 2);
        assert!(!quenched.attributes.contains_key("patient-name"));
        // Original untouched.
        assert_eq!(msg.attributes.len(), 3);
    }

    #[test]
    fn frozen_schema_interns_names_and_masks_sensitive_attributes() {
        let schema = Arc::new(FrozenSchema::new(&reading_schema()).unwrap());
        assert_eq!(schema.message_type().as_str(), "sensor-reading");
        assert_eq!(schema.len(), 3);
        assert!(!schema.is_empty());
        // Sorted name table; `patient-name` sorts first.
        assert_eq!(schema.index_of("patient-name"), Some(0));
        assert_eq!(schema.index_of("unit"), Some(1));
        assert_eq!(schema.index_of("value"), Some(2));
        assert_eq!(schema.index_of("missing"), None);
        assert_eq!(schema.kind(2), AttributeKind::Float);
        assert_eq!(schema.sensitive_mask(), 0b001);
        assert_eq!(schema.secrecy(0), Some(&Label::from_names(["identity"])));
        assert!(schema.secrecy(1).is_none());
        // The schema hash is stable and distinguishes schemas.
        let again = FrozenSchema::new(&reading_schema()).unwrap();
        assert_eq!(schema.schema_hash(), again.schema_hash());
        let other = FrozenSchema::new(&MessageSchema::new("other")).unwrap();
        assert_ne!(schema.schema_hash(), other.schema_hash());
    }

    #[test]
    fn frozen_schema_rejects_too_many_attributes() {
        let mut schema = MessageSchema::new("wide");
        for i in 0..=MAX_FROZEN_ATTRIBUTES {
            schema = schema.attribute(format!("a{i:02}"), AttributeKind::Bool);
        }
        assert!(FrozenSchema::new(&schema).unwrap_err().contains("at most"));
    }

    #[test]
    fn frozen_validation_matches_schema_validation() {
        let schema = FrozenSchema::new(&reading_schema()).unwrap();
        assert!(schema.validate(&reading_message()).is_ok());
        let missing = Message::new("sensor-reading", SecurityContext::public())
            .with("value", AttributeValue::Float(1.0))
            .with("unit", AttributeValue::Text("bpm".into()));
        assert!(schema.validate(&missing).unwrap_err().contains("missing"));
        let wrong = reading_message().with("value", AttributeValue::Text("high".into()));
        assert!(schema.validate(&wrong).unwrap_err().contains("wrong type"));
        let undeclared = reading_message().with("extra", AttributeValue::Bool(true));
        assert!(schema.validate(&undeclared).unwrap_err().contains("undeclared"));
        let wrong_type = Message::new("other", SecurityContext::public());
        assert!(schema.validate(&wrong_type).unwrap_err().contains("does not match"));
    }

    #[test]
    fn freeze_then_thaw_round_trips() {
        let schema = Arc::new(FrozenSchema::new(&reading_schema()).unwrap());
        let mut message = reading_message();
        message.sender = "ann-sensor".into();
        message.sent_at_millis = 42;
        let frozen = FrozenMessage::freeze(&message, Arc::clone(&schema)).unwrap();
        assert_eq!(frozen.thaw(), message);
        assert_eq!(frozen.attribute_count(), 3);
        assert_eq!(frozen.sender(), "ann-sensor");
        assert_eq!(frozen.sent_at_millis(), 42);
        assert_eq!(frozen.get("unit"), Some(AttributeValue::Text("bpm".into())));
        assert_eq!(frozen.get("value"), Some(AttributeValue::Float(72.0)));
        assert!(frozen.get("missing").is_none());
        assert!(frozen.payload_byte_len() > 0);
        assert!(frozen.to_string().contains("sensor-reading"));
        // The schema freeze fails on is a schema violation, not a panic.
        let bad = Message::new("other", SecurityContext::public());
        assert!(FrozenMessage::freeze(&bad, schema).is_err());
    }

    #[test]
    fn frozen_quenching_is_a_bitmask_over_shared_buffers() {
        let schema = Arc::new(FrozenSchema::new(&reading_schema()).unwrap());
        let frozen = FrozenMessage::freeze(&reading_message(), Arc::clone(&schema)).unwrap();
        // A destination without `identity` quenches exactly `patient-name`.
        let mask = schema.quench_mask_for(&Label::from_names(["medical"]));
        assert_eq!(mask, 0b001);
        assert_eq!(schema.mask_names(mask).collect::<Vec<_>>(), vec!["patient-name"]);
        // A destination holding `identity` quenches nothing.
        assert_eq!(schema.quench_mask_for(&Label::from_names(["medical", "identity"])), 0);
        let quenched = frozen.quench(mask);
        assert_eq!(quenched.attribute_count(), 2);
        assert!(quenched.get("patient-name").is_none());
        assert_eq!(quenched.get("unit"), Some(AttributeValue::Text("bpm".into())));
        // The original is untouched and the payload buffer is shared, not copied.
        assert_eq!(frozen.attribute_count(), 3);
        assert_eq!(quenched.payload_byte_len(), frozen.payload_byte_len());
        // Thawing the quenched form agrees with the BTreeMap-based quench.
        assert_eq!(
            quenched.thaw().attributes,
            reading_message().quenched(["patient-name"]).attributes
        );
    }

    #[test]
    fn quenching_shrinks_present_byte_len_but_shares_the_buffer() {
        let schema = Arc::new(FrozenSchema::new(&reading_schema()).unwrap());
        let frozen = FrozenMessage::freeze(&reading_message(), Arc::clone(&schema)).unwrap();
        assert_eq!(frozen.present_byte_len(), frozen.payload_byte_len());
        let mask = schema.quench_mask_for(&Label::from_names(["medical"]));
        let quenched = frozen.quench(mask);
        // `patient-name` is "Ann": 3 encoded bytes gone from the effective size...
        assert_eq!(quenched.present_byte_len(), frozen.present_byte_len() - 3);
        assert_eq!(frozen.byte_len_after_quench(mask), quenched.present_byte_len());
        // ...and it agrees with re-encoding the thawed quenched message.
        assert_eq!(quenched.present_byte_len(), encoded_payload_len(&quenched.thaw()));
        // The underlying buffer is untouched and shared (zero-copy witness).
        assert_eq!(quenched.payload_byte_len(), frozen.payload_byte_len());
        assert!(std::ptr::eq(
            frozen.payload().as_slice().as_ptr(),
            quenched.payload().as_slice().as_ptr()
        ));
    }

    #[test]
    fn encoded_payload_len_matches_frozen_encoding() {
        let schema = Arc::new(FrozenSchema::new(&reading_schema()).unwrap());
        let message = reading_message();
        let frozen = FrozenMessage::freeze(&message, schema).unwrap();
        assert_eq!(encoded_payload_len(&message), frozen.payload_byte_len());
    }

    #[test]
    fn value_kinds_and_display() {
        assert_eq!(AttributeValue::Text("x".into()).kind(), AttributeKind::Text);
        assert_eq!(AttributeValue::Integer(1).kind(), AttributeKind::Integer);
        assert_eq!(AttributeValue::Float(1.0).kind(), AttributeKind::Float);
        assert_eq!(AttributeValue::Bool(true).kind(), AttributeKind::Bool);
        assert_eq!(AttributeValue::Bool(true).to_string(), "true");
        assert_eq!(MessageType::new("t").to_string(), "t");
        assert!(reading_message().to_string().contains("sensor-reading"));
    }

    mod freeze_equivalence {
        use super::*;
        use proptest::prelude::*;

        /// A five-attribute schema exercising every kind, with two sensitive attrs.
        fn wide_schema() -> MessageSchema {
            MessageSchema::new("mixed")
                .attribute("count", AttributeKind::Integer)
                .attribute("level", AttributeKind::Float)
                .attribute("ok", AttributeKind::Bool)
                .sensitive_attribute("note", AttributeKind::Text, Label::from_names(["identity"]))
                .sensitive_attribute(
                    "who",
                    AttributeKind::Text,
                    Label::from_names(["identity", "medical"]),
                )
        }

        proptest! {
            /// Satellite: freezing a message and quenching *any* attribute subset
            /// agrees exactly with the `BTreeMap`-based `Message::quenched` result.
            #[test]
            fn prop_frozen_quench_equals_map_quench(
                count in -1_000_000i64..1_000_000,
                level in 0.0f64..1000.0,
                ok in proptest::bool::ANY,
                note in "[a-z ]{0,12}",
                who in "[a-z]{1,8}",
                subset in 0u64..32,
            ) {
                let schema = Arc::new(FrozenSchema::new(&wide_schema()).unwrap());
                let mut message = Message::new(
                    "mixed",
                    SecurityContext::from_names(["medical"], Vec::<&str>::new()),
                )
                .with("count", AttributeValue::Integer(count))
                .with("level", AttributeValue::Float(level))
                .with("ok", AttributeValue::Bool(ok))
                .with("note", AttributeValue::Text(note))
                .with("who", AttributeValue::Text(who));
                message.sender = "prop-sender".into();
                message.sent_at_millis = 9;

                let frozen = FrozenMessage::freeze(&message, Arc::clone(&schema)).unwrap();
                prop_assert_eq!(frozen.thaw(), message.clone());

                let names: Vec<String> =
                    schema.mask_names(subset).map(str::to_string).collect();
                let thawed = frozen.quench(subset).thaw();
                let expected = message.quenched(&names);
                prop_assert_eq!(thawed, expected);
            }
        }
    }
}
