//! # legaliot-middleware
//!
//! A reconfigurable, policy-enforcing messaging middleware in the style of SBUS /
//! CamFlow-messaging (§5, §8.1 and §8.2.2 of Singh et al., Middleware 2016).
//!
//! The middleware mediates every interaction between components ('things'):
//!
//! * typed, schema-checked messages ([`schema`]), with message-level tags that augment
//!   the component's OS-level security context (Fig. 10) and *source quenching* when an
//!   attribute's tags do not accord with the receiver;
//! * an access-control regime at message-type granularity ([`acl`]): principals,
//!   parametrised roles and contextual conditions, enforced at channel establishment;
//! * IFC enforcement at channel establishment and on every message, with re-evaluation
//!   when either endpoint changes security context (§8.2.2);
//! * third-party reconfiguration via control messages (Fig. 8, [`control`]): policy
//!   engines issue [`legaliot_policy::ReconfigurationCommand`]s, the middleware
//!   authorises them against the AC regime and applies them to components;
//! * a component registry ([`component`]) and the [`bus::Middleware`] deployment object
//!   that ties registry, channels, enforcement and audit together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod admission;
pub mod bus;
pub mod component;
pub mod control;
pub mod schema;

pub use acl::{AccessDecision, AccessRegime, AccessRule, Operation, Principal, Subject};
pub use admission::{admit_channel, admit_channel_cached, AdmissionCache};
pub use bus::{
    Channel, ChannelState, DeliveryOutcome, MailboxOverflow, Middleware, MiddlewareError,
};
pub use component::{Component, ComponentBuilder, Registry};
pub use control::{ControlMessage, ControlOutcome, ReconfigureOp};
pub use schema::{
    encoded_payload_len, AttributeKind, AttributeValue, FrozenMessage, FrozenSchema, Message,
    MessageSchema, MessageType, Payload, MAX_FROZEN_ATTRIBUTES,
};
