//! Channel-admission checks, factored out of the bus so every enforcement surface
//! (the synchronous [`crate::bus::Middleware`], the sharded `legaliot-dataplane`)
//! applies the identical §8.2.2 sequence: isolation, then the access-control regime
//! (the *sender's* principal must hold `Send` rights on the destination), then IFC
//! between the two components' security contexts.
//!
//! Admission is a pure function of the two components and the AC regime — it mutates
//! nothing and records nothing, so callers stay in charge of channel bookkeeping and
//! audit. A [`crate::bus::DeliveryOutcome`] (not an error) is returned because a refusal
//! is an expected, auditable outcome.

use legaliot_context::{ContextSnapshot, Timestamp};
use legaliot_ifc::can_flow;

use crate::acl::{AccessDecision, AccessRegime, Operation};
use crate::bus::DeliveryOutcome;
use crate::component::Component;

/// Runs the full channel-admission sequence for a prospective channel
/// `source → destination`.
///
/// Returns [`DeliveryOutcome::Delivered`] (with no quenched attributes — quenching is a
/// per-message concern) when the channel may be established, and the precise refusal
/// otherwise: [`DeliveryOutcome::Isolated`], [`DeliveryOutcome::DeniedByAccessControl`]
/// or [`DeliveryOutcome::DeniedByIfc`].
///
/// ```
/// use legaliot_context::{ContextSnapshot, Timestamp};
/// use legaliot_ifc::SecurityContext;
/// use legaliot_middleware::admission::admit_channel;
/// use legaliot_middleware::{AccessRegime, AccessRule, Component, Operation, Principal, Subject};
///
/// let src = Component::builder("sensor", Principal::new("ann"))
///     .context(SecurityContext::from_names(["medical"], Vec::<&str>::new()))
///     .build();
/// let dst = Component::builder("analyser", Principal::new("hospital"))
///     .context(SecurityContext::from_names(["medical"], Vec::<&str>::new()))
///     .build();
/// let mut access = AccessRegime::new();
/// access.add_rule("analyser", AccessRule::allow(Subject::Anyone, Operation::Send, None));
/// let outcome =
///     admit_channel(&src, &dst, &access, &ContextSnapshot::default(), Timestamp(1));
/// assert!(outcome.is_delivered());
/// ```
pub fn admit_channel(
    source: &Component,
    destination: &Component,
    access: &AccessRegime,
    snapshot: &ContextSnapshot,
    now: Timestamp,
) -> DeliveryOutcome {
    if source.is_isolated() || destination.is_isolated() {
        return DeliveryOutcome::Isolated;
    }
    let ac =
        access.decide(destination.name(), source.principal(), Operation::Send, None, snapshot, now);
    if let AccessDecision::Denied { reason } = ac {
        return DeliveryOutcome::DeniedByAccessControl { reason };
    }
    let decision = can_flow(source.context(), destination.context());
    if decision.is_denied() {
        DeliveryOutcome::DeniedByIfc(decision)
    } else {
        DeliveryOutcome::Delivered { quenched_attributes: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{AccessRule, Principal, Subject};
    use legaliot_ifc::SecurityContext;

    fn component(name: &str, secrecy: &[&str]) -> Component {
        Component::builder(name, Principal::new("owner"))
            .context(SecurityContext::from_names(secrecy.iter().copied(), Vec::<&str>::new()))
            .build()
    }

    fn open_access(names: &[&str]) -> AccessRegime {
        let mut access = AccessRegime::new();
        for name in names {
            access.add_rule(*name, AccessRule::allow(Subject::Anyone, Operation::Send, None));
        }
        access
    }

    #[test]
    fn admission_order_isolation_then_ac_then_ifc() {
        let snapshot = ContextSnapshot::default();
        let src = component("src", &["medical"]);
        let dst = component("dst", &["medical"]);

        // No AC rule: denied by AC even though IFC would pass.
        let outcome = admit_channel(&src, &dst, &AccessRegime::new(), &snapshot, Timestamp(1));
        assert!(matches!(outcome, DeliveryOutcome::DeniedByAccessControl { .. }));

        // AC open, IFC fails (destination lacks `medical`).
        let public_dst = component("dst", &[]);
        let outcome =
            admit_channel(&src, &public_dst, &open_access(&["dst"]), &snapshot, Timestamp(2));
        assert!(matches!(outcome, DeliveryOutcome::DeniedByIfc(_)));

        // Isolation short-circuits everything, including AC denial.
        let mut isolated = component("src", &["medical"]);
        isolated.set_isolated(true);
        let outcome = admit_channel(&isolated, &dst, &AccessRegime::new(), &snapshot, Timestamp(3));
        assert_eq!(outcome, DeliveryOutcome::Isolated);

        // Everything passing admits the channel with nothing quenched.
        let outcome = admit_channel(&src, &dst, &open_access(&["dst"]), &snapshot, Timestamp(4));
        assert_eq!(outcome, DeliveryOutcome::Delivered { quenched_attributes: vec![] });
    }
}
