//! Channel-admission checks, factored out of the bus so every enforcement surface
//! (the synchronous [`crate::bus::Middleware`], the sharded `legaliot-dataplane`)
//! applies the identical §8.2.2 sequence: isolation, then the access-control regime
//! (the *sender's* principal must hold `Send` rights on the destination), then IFC
//! between the two components' security contexts.
//!
//! Admission is a pure function of the two components and the AC regime — it mutates
//! nothing and records nothing, so callers stay in charge of channel bookkeeping and
//! audit. A [`crate::bus::DeliveryOutcome`] (not an error) is returned because a refusal
//! is an expected, auditable outcome.

use legaliot_context::{ContextSnapshot, ContextStore, Timestamp};
use legaliot_ifc::{can_flow, StableHasher};
use legaliot_policy::{AcCacheStats, AcDecisionCache};

use crate::acl::{AccessDecision, AccessRegime, Operation, Principal};
use crate::bus::DeliveryOutcome;
use crate::component::Component;
use crate::schema::MessageType;

/// Runs the full channel-admission sequence for a prospective channel
/// `source → destination`.
///
/// Returns [`DeliveryOutcome::Delivered`] (with no quenched attributes — quenching is a
/// per-message concern) when the channel may be established, and the precise refusal
/// otherwise: [`DeliveryOutcome::Isolated`], [`DeliveryOutcome::DeniedByAccessControl`]
/// or [`DeliveryOutcome::DeniedByIfc`].
///
/// ```
/// use legaliot_context::{ContextSnapshot, Timestamp};
/// use legaliot_ifc::SecurityContext;
/// use legaliot_middleware::admission::admit_channel;
/// use legaliot_middleware::{AccessRegime, AccessRule, Component, Operation, Principal, Subject};
///
/// let src = Component::builder("sensor", Principal::new("ann"))
///     .context(SecurityContext::from_names(["medical"], Vec::<&str>::new()))
///     .build();
/// let dst = Component::builder("analyser", Principal::new("hospital"))
///     .context(SecurityContext::from_names(["medical"], Vec::<&str>::new()))
///     .build();
/// let mut access = AccessRegime::new();
/// access.add_rule("analyser", AccessRule::allow(Subject::Anyone, Operation::Send, None));
/// let outcome =
///     admit_channel(&src, &dst, &access, &ContextSnapshot::default(), Timestamp(1));
/// assert!(outcome.is_delivered());
/// ```
pub fn admit_channel(
    source: &Component,
    destination: &Component,
    access: &AccessRegime,
    snapshot: &ContextSnapshot,
    now: Timestamp,
) -> DeliveryOutcome {
    if source.is_isolated() || destination.is_isolated() {
        return DeliveryOutcome::Isolated;
    }
    let ac =
        access.decide(destination.name(), source.principal(), Operation::Send, None, snapshot, now);
    if let AccessDecision::Denied { reason } = ac {
        return DeliveryOutcome::DeniedByAccessControl { reason };
    }
    let decision = can_flow(source.context(), destination.context());
    if decision.is_denied() {
        DeliveryOutcome::DeniedByIfc(decision)
    } else {
        DeliveryOutcome::Delivered { quenched_attributes: Vec::new() }
    }
}

/// A cache of [`AccessRegime`] decisions for one enforcement surface (an engine's
/// control plane, or one dataplane shard), wrapping a context-keyed
/// [`AcDecisionCache`] with regime-revision staleness detection.
///
/// Correctness contract: snapshots passed to [`AdmissionCache::decide`] must derive
/// from the [`ContextStore`] the cache is [`AdmissionCache::attach`]ed to (and
/// [`AdmissionCache::sync`] must run after store or regime changes, before deciding) —
/// key-level invalidation watches exactly that store. Components governed by
/// time-dependent rules are never cached and always re-evaluated.
#[derive(Debug, Default)]
pub struct AdmissionCache {
    cache: AcDecisionCache<AccessDecision>,
    regime_revision: u64,
}

impl AdmissionCache {
    /// Creates a cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache holding at most `capacity` decisions.
    pub fn with_capacity(capacity: usize) -> Self {
        AdmissionCache { cache: AcDecisionCache::with_capacity(capacity), regime_revision: 0 }
    }

    /// Subscribes to `store` for key-level invalidation (see [`AcDecisionCache::attach`]).
    pub fn attach(&mut self, store: &ContextStore) {
        self.cache.attach(store);
    }

    /// Releases the store subscription taken by [`Self::attach`]. Must be called
    /// before discarding an attached cache: an abandoned subscription cursor pins
    /// the store's change-history compaction under a retention bound (see
    /// [`AcDecisionCache::detach`]).
    pub fn detach(&mut self, store: &ContextStore) {
        self.cache.detach(store);
    }

    /// Brings the cache up to date: clears it when the regime's rule set changed, and
    /// drops entries whose referenced context keys changed in the store. Returns how
    /// many entries were dropped.
    pub fn sync(&mut self, store: &ContextStore, access: &AccessRegime) -> usize {
        let mut dropped = 0;
        if access.revision() != self.regime_revision {
            self.regime_revision = access.revision();
            dropped += self.cache.len();
            self.cache.clear();
        }
        dropped + self.cache.sync(store)
    }

    /// The stable cache key for an AC question. Includes the principal's roles: rule
    /// matching is role-sensitive, so two principals sharing a name but not roles must
    /// not share decisions.
    fn decision_key(
        component: &str,
        principal: &Principal,
        operation: Operation,
        message_type: Option<&MessageType>,
    ) -> u64 {
        let mut hasher = StableHasher::new()
            .write_str(component)
            .write_str(&principal.name)
            .write_u64(principal.roles.len() as u64);
        for role in &principal.roles {
            hasher = hasher.write_str(role);
        }
        hasher = match operation {
            Operation::Send => hasher.write_str("send"),
            Operation::Receive => hasher.write_str("receive"),
            Operation::Reconfigure => hasher.write_str("reconfigure"),
        };
        match message_type {
            Some(mt) => hasher.write_str(mt.as_str()),
            None => hasher.write_u64(0),
        }
        .finish()
    }

    /// Decides via the cache, evaluating the regime on a miss. The boolean is `true`
    /// when the decision came from the cache. Components with time-dependent rules
    /// bypass the cache entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn decide(
        &mut self,
        access: &AccessRegime,
        component: &str,
        principal: &Principal,
        operation: Operation,
        message_type: Option<&MessageType>,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> (AccessDecision, bool) {
        if access.has_time_dependent_rules(component) {
            let decision =
                access.decide(component, principal, operation, message_type, snapshot, now);
            return (decision, false);
        }
        let key = Self::decision_key(component, principal, operation, message_type);
        if let Some(decision) = self.cache.lookup(key) {
            return (decision, true);
        }
        let decision = access.decide(component, principal, operation, message_type, snapshot, now);
        self.cache.insert(key, decision.clone(), access.referenced_context_keys(component));
        (decision, false)
    }

    /// Current effectiveness counters of the underlying decision cache.
    pub fn stats(&self) -> AcCacheStats {
        self.cache.stats()
    }
}

/// [`admit_channel`] with the AC step answered through an [`AdmissionCache`]: the same
/// §8.2.2 sequence (isolation → AC → IFC), with the rule-set evaluation amortised
/// across repeated admission checks of the same `(destination, principal)` question.
///
/// The caller owns cache hygiene: [`AdmissionCache::sync`] against the regime and the
/// attached [`ContextStore`] before deciding, and snapshots derived from that store.
pub fn admit_channel_cached(
    source: &Component,
    destination: &Component,
    access: &AccessRegime,
    snapshot: &ContextSnapshot,
    now: Timestamp,
    cache: &mut AdmissionCache,
) -> DeliveryOutcome {
    if source.is_isolated() || destination.is_isolated() {
        return DeliveryOutcome::Isolated;
    }
    let (ac, _hit) = cache.decide(
        access,
        destination.name(),
        source.principal(),
        Operation::Send,
        None,
        snapshot,
        now,
    );
    if let AccessDecision::Denied { reason } = ac {
        return DeliveryOutcome::DeniedByAccessControl { reason };
    }
    let decision = can_flow(source.context(), destination.context());
    if decision.is_denied() {
        DeliveryOutcome::DeniedByIfc(decision)
    } else {
        DeliveryOutcome::Delivered { quenched_attributes: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{AccessRule, Principal, Subject};
    use legaliot_ifc::SecurityContext;

    fn component(name: &str, secrecy: &[&str]) -> Component {
        Component::builder(name, Principal::new("owner"))
            .context(SecurityContext::from_names(secrecy.iter().copied(), Vec::<&str>::new()))
            .build()
    }

    fn open_access(names: &[&str]) -> AccessRegime {
        let mut access = AccessRegime::new();
        for name in names {
            access.add_rule(*name, AccessRule::allow(Subject::Anyone, Operation::Send, None));
        }
        access
    }

    #[test]
    fn admission_order_isolation_then_ac_then_ifc() {
        let snapshot = ContextSnapshot::default();
        let src = component("src", &["medical"]);
        let dst = component("dst", &["medical"]);

        // No AC rule: denied by AC even though IFC would pass.
        let outcome = admit_channel(&src, &dst, &AccessRegime::new(), &snapshot, Timestamp(1));
        assert!(matches!(outcome, DeliveryOutcome::DeniedByAccessControl { .. }));

        // AC open, IFC fails (destination lacks `medical`).
        let public_dst = component("dst", &[]);
        let outcome =
            admit_channel(&src, &public_dst, &open_access(&["dst"]), &snapshot, Timestamp(2));
        assert!(matches!(outcome, DeliveryOutcome::DeniedByIfc(_)));

        // Isolation short-circuits everything, including AC denial.
        let mut isolated = component("src", &["medical"]);
        isolated.set_isolated(true);
        let outcome = admit_channel(&isolated, &dst, &AccessRegime::new(), &snapshot, Timestamp(3));
        assert_eq!(outcome, DeliveryOutcome::Isolated);

        // Everything passing admits the channel with nothing quenched.
        let outcome = admit_channel(&src, &dst, &open_access(&["dst"]), &snapshot, Timestamp(4));
        assert_eq!(outcome, DeliveryOutcome::Delivered { quenched_attributes: vec![] });
    }

    #[test]
    fn cached_admission_agrees_with_uncached_and_hits() {
        use legaliot_context::ContextStore;
        use legaliot_policy::Condition;

        let store = ContextStore::new();
        store.set("emergency.active", false, Timestamp(0));
        let mut access = AccessRegime::new();
        access.add_rule(
            "dst",
            AccessRule::allow(Subject::Anyone, Operation::Send, None)
                .when(Condition::is_true("emergency.active")),
        );
        let src = component("src", &["medical"]);
        let dst = component("dst", &["medical"]);
        let mut cache = AdmissionCache::new();
        cache.attach(&store);

        // Denied while the emergency flag is off; the denial is cached.
        cache.sync(&store, &access);
        let outcome =
            admit_channel_cached(&src, &dst, &access, &store.snapshot(), Timestamp(1), &mut cache);
        assert!(matches!(outcome, DeliveryOutcome::DeniedByAccessControl { .. }));
        let outcome =
            admit_channel_cached(&src, &dst, &access, &store.snapshot(), Timestamp(2), &mut cache);
        assert!(matches!(outcome, DeliveryOutcome::DeniedByAccessControl { .. }));
        assert_eq!(cache.stats().hits, 1);

        // Flipping the referenced key invalidates the entry and flips the decision.
        store.set("emergency.active", true, Timestamp(3));
        assert_eq!(cache.sync(&store, &access), 1);
        let outcome =
            admit_channel_cached(&src, &dst, &access, &store.snapshot(), Timestamp(4), &mut cache);
        assert!(outcome.is_delivered());

        // A rule-set change clears the cache wholesale.
        access.clear_component("dst");
        assert!(cache.sync(&store, &access) >= 1);
        let outcome =
            admit_channel_cached(&src, &dst, &access, &store.snapshot(), Timestamp(5), &mut cache);
        assert!(matches!(outcome, DeliveryOutcome::DeniedByAccessControl { .. }));
    }

    #[test]
    fn time_dependent_rules_bypass_the_cache() {
        use legaliot_context::ContextStore;
        use legaliot_policy::Condition;

        let store = ContextStore::new();
        let mut access = AccessRegime::new();
        access.add_rule(
            "dst",
            AccessRule::allow(Subject::Anyone, Operation::Send, None)
                .when(Condition::within_time(0, 10)),
        );
        let mut cache = AdmissionCache::new();
        cache.attach(&store);
        cache.sync(&store, &access);
        let principal = Principal::new("owner");
        let snapshot = store.snapshot();
        let (d, hit) = cache.decide(
            &access,
            "dst",
            &principal,
            Operation::Send,
            None,
            &snapshot,
            Timestamp(5),
        );
        assert!(d.is_allowed() && !hit);
        // Inside vs outside the window flips without any context change — which is
        // exactly why it must never be served from the cache.
        let (d, hit) = cache.decide(
            &access,
            "dst",
            &principal,
            Operation::Send,
            None,
            &snapshot,
            Timestamp(50),
        );
        assert!(!d.is_allowed() && !hit);
    }

    #[test]
    fn decision_keys_distinguish_roles_operations_and_types() {
        let plain = Principal::new("nina");
        let nurse = Principal::new("nina").with_role("nurse");
        let mt = MessageType::new("sensor-reading");
        let base = AdmissionCache::decision_key("c", &plain, Operation::Send, None);
        assert_ne!(base, AdmissionCache::decision_key("c", &nurse, Operation::Send, None));
        assert_ne!(base, AdmissionCache::decision_key("c", &plain, Operation::Receive, None));
        assert_ne!(base, AdmissionCache::decision_key("c", &plain, Operation::Send, Some(&mt)));
        assert_ne!(base, AdmissionCache::decision_key("d", &plain, Operation::Send, None));
        assert_eq!(base, AdmissionCache::decision_key("c", &plain, Operation::Send, None));
    }
}
