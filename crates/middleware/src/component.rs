//! Components and the component registry.
//!
//! A component is a 'thing' participating through the middleware: it has an owning
//! principal, an IFC security context (mirroring the kernel-level context of the process
//! it fronts, §8.2.2), privileges, the message types it produces and consumes, and the
//! node it is hosted on. The [`Registry`] is the middleware's directory (the RDC in
//! SBUS): components are registered, looked up by name, and marked isolated when policy
//! demands.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_ifc::{Entity, EntityKind, PrivilegeSet, SecurityContext};

use crate::acl::Principal;
use crate::schema::{MessageSchema, MessageType};

/// A middleware-managed component ('thing').
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    entity: Entity,
    principal: Principal,
    node: String,
    produces: Vec<MessageType>,
    consumes: Vec<MessageType>,
    isolated: bool,
}

impl Component {
    /// Starts building a component.
    pub fn builder(name: impl Into<String>, principal: Principal) -> ComponentBuilder {
        ComponentBuilder {
            name: name.into(),
            principal,
            context: SecurityContext::public(),
            node: "local".to_string(),
            produces: Vec::new(),
            consumes: Vec::new(),
        }
    }

    /// The component's name.
    pub fn name(&self) -> &str {
        self.entity.name()
    }

    /// The owning principal.
    pub fn principal(&self) -> &Principal {
        &self.principal
    }

    /// The node hosting the component.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The component's current security context.
    pub fn context(&self) -> &SecurityContext {
        self.entity.context()
    }

    /// The component's IFC privileges.
    pub fn privileges(&self) -> &PrivilegeSet {
        self.entity.privileges()
    }

    /// Mutable access to the underlying labelled entity (used by the middleware when
    /// applying authorised reconfigurations and privilege grants).
    pub fn entity_mut(&mut self) -> &mut Entity {
        &mut self.entity
    }

    /// The underlying labelled entity.
    pub fn entity(&self) -> &Entity {
        &self.entity
    }

    /// Message types the component produces.
    pub fn produces(&self) -> &[MessageType] {
        &self.produces
    }

    /// Message types the component consumes.
    pub fn consumes(&self) -> &[MessageType] {
        &self.consumes
    }

    /// Whether the component has been isolated by policy (no channels allowed).
    pub fn is_isolated(&self) -> bool {
        self.isolated
    }

    /// Marks the component isolated or not (trusted middleware operation).
    pub fn set_isolated(&mut self, isolated: bool) {
        self.isolated = isolated;
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {} ({})", self.name(), self.node, self.context())
    }
}

/// Builder for [`Component`].
#[derive(Debug, Clone)]
pub struct ComponentBuilder {
    name: String,
    principal: Principal,
    context: SecurityContext,
    node: String,
    produces: Vec<MessageType>,
    consumes: Vec<MessageType>,
}

impl ComponentBuilder {
    /// Sets the component's initial security context.
    pub fn context(mut self, context: SecurityContext) -> Self {
        self.context = context;
        self
    }

    /// Sets the hosting node's name.
    pub fn on_node(mut self, node: impl Into<String>) -> Self {
        self.node = node.into();
        self
    }

    /// Declares a produced message type.
    pub fn produces(mut self, message_type: impl Into<MessageType>) -> Self {
        self.produces.push(message_type.into());
        self
    }

    /// Declares a consumed message type.
    pub fn consumes(mut self, message_type: impl Into<MessageType>) -> Self {
        self.consumes.push(message_type.into());
        self
    }

    /// Finishes building the component.
    pub fn build(self) -> Component {
        Component {
            entity: Entity::with_kind(self.name, EntityKind::Active, self.context),
            principal: self.principal,
            node: self.node,
            produces: self.produces,
            consumes: self.consumes,
            isolated: false,
        }
    }
}

/// The middleware's component directory, plus registered message schemas.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    components: BTreeMap<String, Component>,
    schemas: BTreeMap<MessageType, MessageSchema>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a component. Returns `false` (and leaves the registry unchanged) if a
    /// component with the same name exists.
    pub fn register(&mut self, component: Component) -> bool {
        if self.components.contains_key(component.name()) {
            return false;
        }
        self.components.insert(component.name().to_string(), component);
        true
    }

    /// Removes a component by name.
    pub fn deregister(&mut self, name: &str) -> Option<Component> {
        self.components.remove(name)
    }

    /// Looks up a component.
    pub fn get(&self, name: &str) -> Option<&Component> {
        self.components.get(name)
    }

    /// Mutable lookup (middleware-internal).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Component> {
        self.components.get_mut(name)
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Iterates components in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Component> + '_ {
        self.components.values()
    }

    /// Registers a message schema (replacing any previous schema for the type).
    pub fn register_schema(&mut self, schema: MessageSchema) {
        self.schemas.insert(schema.message_type.clone(), schema);
    }

    /// Looks up the schema for a message type.
    pub fn schema(&self, message_type: &MessageType) -> Option<&MessageSchema> {
        self.schemas.get(message_type)
    }

    /// Components that produce the given message type (service discovery).
    pub fn producers_of<'a>(
        &'a self,
        message_type: &'a MessageType,
    ) -> impl Iterator<Item = &'a Component> + 'a {
        self.components.values().filter(move |c| c.produces().contains(message_type))
    }

    /// Components that consume the given message type.
    pub fn consumers_of<'a>(
        &'a self,
        message_type: &'a MessageType,
    ) -> impl Iterator<Item = &'a Component> + 'a {
        self.components.values().filter(move |c| c.consumes().contains(message_type))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeKind;

    fn ann_sensor() -> Component {
        Component::builder("ann-sensor", Principal::new("ann").with_role("patient"))
            .context(SecurityContext::from_names(["medical", "ann"], ["hosp-dev", "consent"]))
            .on_node("ann-home-gateway")
            .produces("sensor-reading")
            .build()
    }

    fn ann_analyser() -> Component {
        Component::builder("ann-analyser", Principal::new("hospital"))
            .context(SecurityContext::from_names(["medical", "ann"], ["hosp-dev", "consent"]))
            .on_node("hospital-cloud")
            .consumes("sensor-reading")
            .produces("analysis-report")
            .build()
    }

    #[test]
    fn builder_sets_fields() {
        let c = ann_sensor();
        assert_eq!(c.name(), "ann-sensor");
        assert_eq!(c.principal().name, "ann");
        assert_eq!(c.node(), "ann-home-gateway");
        assert!(c.context().secrecy().contains_name("medical"));
        assert_eq!(c.produces(), &[MessageType::new("sensor-reading")]);
        assert!(c.consumes().is_empty());
        assert!(!c.is_isolated());
        assert!(c.privileges().is_empty());
        assert!(c.to_string().contains("ann-sensor"));
    }

    #[test]
    fn registry_register_lookup_deregister() {
        let mut reg = Registry::new();
        assert!(reg.is_empty());
        assert!(reg.register(ann_sensor()));
        assert!(reg.register(ann_analyser()));
        // Duplicate names rejected.
        assert!(!reg.register(ann_sensor()));
        assert_eq!(reg.len(), 2);
        assert!(reg.get("ann-sensor").is_some());
        assert!(reg.get("missing").is_none());
        assert!(reg.deregister("ann-sensor").is_some());
        assert!(reg.deregister("ann-sensor").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn discovery_by_message_type() {
        let mut reg = Registry::new();
        reg.register(ann_sensor());
        reg.register(ann_analyser());
        let mt = MessageType::new("sensor-reading");
        let producers: Vec<&str> = reg.producers_of(&mt).map(Component::name).collect();
        let consumers: Vec<&str> = reg.consumers_of(&mt).map(Component::name).collect();
        assert_eq!(producers, vec!["ann-sensor"]);
        assert_eq!(consumers, vec!["ann-analyser"]);
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn schemas_registered_and_looked_up() {
        let mut reg = Registry::new();
        reg.register_schema(
            MessageSchema::new("sensor-reading").attribute("value", AttributeKind::Float),
        );
        assert!(reg.schema(&MessageType::new("sensor-reading")).is_some());
        assert!(reg.schema(&MessageType::new("unknown")).is_none());
    }

    #[test]
    fn isolation_flag() {
        let mut c = ann_sensor();
        c.set_isolated(true);
        assert!(c.is_isolated());
        c.set_isolated(false);
        assert!(!c.is_isolated());
    }

    #[test]
    fn component_entity_mutation() {
        let mut c = ann_sensor();
        let new_ctx = SecurityContext::from_names(["medical", "ann", "stats"], Vec::<&str>::new());
        c.entity_mut().set_context_trusted(new_ctx.clone());
        assert_eq!(c.context(), &new_ctx);
        assert_eq!(c.entity().label_changes(), 1);
    }
}
