//! The middleware deployment object: registry + channels + enforcement + audit.
//!
//! Enforcement follows §8.2.2: "Enforcement occurs on the establishment of communication
//! (messaging) channels. A channel is only established if the policy allows, i.e. the
//! tags of the components accord. Specifically, this involves augmenting the standard MW
//! AC (principal and contextual policy) enforcement with a subsequent evaluation of IFC
//! policy … This is monitored throughout the connection's lifetime, where an entity
//! changing its security context triggers re-evaluation."

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use legaliot_audit::{AuditEvent, AuditLog};
use legaliot_context::{ContextSnapshot, Timestamp};
use legaliot_ifc::{can_flow, FlowDecision, SecurityContext, TagRegistry};
use legaliot_obs::{HistogramSnapshot, LatencyHistogram, ObsConfig};
use legaliot_policy::ReconfigurationCommand;

use crate::acl::{AccessRegime, Operation, Principal};
use crate::component::{Component, Registry};
use crate::control::{ControlMessage, ControlOutcome, ReconfigureOp};
use crate::schema::Message;

/// Errors raised by middleware operations (not enforcement denials, which are outcomes).
///
/// The distinction: an enforcement *denial* (AC, IFC, isolation) is an expected,
/// auditable [`DeliveryOutcome`]; an *error* means the operation could not be carried
/// out at all — the caller named an unknown component, used a torn-down channel, or hit
/// a resource limit — and should be surfaced rather than silently folded into outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiddlewareError {
    /// The referenced component is not registered.
    UnknownComponent {
        /// The missing component's name.
        name: String,
    },
    /// The channel exists but has been torn down; re-establish it (which re-runs the
    /// full §8.2.2 admission checks) before sending again.
    ChannelClosed {
        /// Source component of the closed channel.
        from: String,
        /// Destination component of the closed channel.
        to: String,
    },
    /// The destination's mailbox is full (bounded-queue backpressure); the message was
    /// not delivered and the sender should retry after the receiver drains.
    QueueFull {
        /// The component whose mailbox is full.
        component: String,
        /// The configured mailbox capacity.
        capacity: usize,
    },
    /// The enforcement shard that owns the destination has degraded (its worker
    /// exhausted the restart budget), so the send is refused instead of hanging —
    /// the middleware-level counterpart of the dataplane's
    /// `DataplaneError::ShardUnavailable`.
    ShardUnavailable {
        /// The degraded shard's index.
        shard: usize,
    },
}

impl fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddlewareError::UnknownComponent { name } => {
                write!(f, "unknown component `{name}`")
            }
            MiddlewareError::ChannelClosed { from, to } => {
                write!(f, "channel `{from}` -> `{to}` is closed; re-establish before sending")
            }
            MiddlewareError::QueueFull { component, capacity } => {
                write!(f, "mailbox of `{component}` is full (capacity {capacity})")
            }
            MiddlewareError::ShardUnavailable { shard } => {
                write!(
                    f,
                    "shard {shard} is unavailable (degraded after exhausting its restart budget)"
                )
            }
        }
    }
}

impl std::error::Error for MiddlewareError {}

/// What [`Middleware::send`] does when the destination's bounded mailbox is full —
/// the synchronous counterpart of the dataplane's subscriber overflow policy, so the
/// single-threaded path is testable the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MailboxOverflow {
    /// Refuse the send with [`MiddlewareError::QueueFull`]; the sender retries after
    /// the receiver drains (lossless backpressure).
    #[default]
    Backpressure,
    /// Shed the oldest queued message to admit the new one, evidencing the shed
    /// delivery as a [`legaliot_audit::AuditEvent::DeliveryDropped`] record.
    DropOldest,
}

/// The state of a channel between two components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelState {
    /// Established and usable.
    Open,
    /// Torn down (kept for audit; re-establishment goes through the full checks again).
    Closed,
}

/// A directed channel between two components.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    /// Source component.
    pub from: String,
    /// Destination component.
    pub to: String,
    /// Current state.
    pub state: ChannelState,
}

/// The outcome of attempting to deliver a message.
#[derive(Debug, Clone, PartialEq)]
pub enum DeliveryOutcome {
    /// Delivered; lists any attributes removed by source quenching (Fig. 10).
    Delivered {
        /// Names of attributes quenched because their message-level tags did not accord.
        quenched_attributes: Vec<String>,
    },
    /// No open channel between the components.
    NoChannel,
    /// The access-control regime denied the interaction.
    DeniedByAccessControl {
        /// Why.
        reason: String,
    },
    /// The IFC flow check denied the interaction.
    DeniedByIfc(FlowDecision),
    /// The message does not conform to its declared schema.
    SchemaViolation {
        /// Why.
        reason: String,
    },
    /// One of the endpoints is isolated.
    Isolated,
}

impl DeliveryOutcome {
    /// Whether the message (possibly quenched) reached the destination.
    pub fn is_delivered(&self) -> bool {
        matches!(self, DeliveryOutcome::Delivered { .. })
    }
}

/// The policy-enforcing middleware: component registry, AC regime, channels, per-node
/// mailboxes, notifications, and an audit log of every decision.
#[derive(Debug)]
pub struct Middleware {
    registry: Registry,
    access: AccessRegime,
    tag_registry: TagRegistry,
    channels: BTreeMap<(String, String), ChannelState>,
    mailboxes: BTreeMap<String, VecDeque<Message>>,
    mailbox_capacity: Option<usize>,
    mailbox_overflow: MailboxOverflow,
    /// Deliveries shed per component under [`MailboxOverflow::DropOldest`].
    dropped_deliveries: BTreeMap<String, u64>,
    notifications: Vec<(String, String)>,
    actuations: Vec<(String, String)>,
    audit: AuditLog,
    telemetry: ObsConfig,
    /// End-to-end `send` latency (entry to mailbox enqueue) of *delivered*
    /// messages, in nanoseconds — the bus-side twin of the dataplane's
    /// `stage.delivery` histogram.
    delivery_latency: LatencyHistogram,
}

impl Middleware {
    /// Creates an empty middleware deployment recording audit under the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Middleware {
            registry: Registry::new(),
            access: AccessRegime::new(),
            tag_registry: TagRegistry::new(),
            channels: BTreeMap::new(),
            mailboxes: BTreeMap::new(),
            mailbox_capacity: None,
            mailbox_overflow: MailboxOverflow::default(),
            dropped_deliveries: BTreeMap::new(),
            notifications: Vec::new(),
            actuations: Vec::new(),
            audit: AuditLog::new(name),
            telemetry: ObsConfig::default(),
            delivery_latency: LatencyHistogram::new(),
        }
    }

    /// Enables or disables latency telemetry. Disabled, [`Middleware::send`]
    /// takes no clock readings at all.
    pub fn set_telemetry(&mut self, telemetry: ObsConfig) {
        self.telemetry = telemetry;
    }

    /// Snapshot of the publish→deliver latency histogram (nanoseconds), covering
    /// every [`DeliveryOutcome::Delivered`] since construction.
    pub fn delivery_latency(&self) -> HistogramSnapshot {
        self.delivery_latency.snapshot()
    }

    /// The component registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the component registry (registration, schema registration).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The access-control regime.
    pub fn access(&self) -> &AccessRegime {
        &self.access
    }

    /// Mutable access to the AC regime.
    pub fn access_mut(&mut self) -> &mut AccessRegime {
        &mut self.access
    }

    /// The global tag registry (ownership checks for privilege grants).
    pub fn tag_registry(&self) -> &TagRegistry {
        &self.tag_registry
    }

    /// Mutable access to the tag registry.
    pub fn tag_registry_mut(&mut self) -> &mut TagRegistry {
        &mut self.tag_registry
    }

    /// The audit log recorded by this middleware instance.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Bounds every component mailbox to `capacity` undelivered messages (clamped to
    /// ≥ 1, as the dataplane's `mailbox_capacity` is); what a further send does is
    /// the configured [`MailboxOverflow`] policy ([`Self::set_mailbox_overflow`]).
    /// `None` (the default) leaves mailboxes unbounded.
    pub fn set_mailbox_capacity(&mut self, capacity: Option<usize>) {
        self.mailbox_capacity = capacity.map(|capacity| capacity.max(1));
    }

    /// Sets the full-mailbox policy: refuse the send (backpressure, the default) or
    /// shed the oldest queued message with audited `DeliveryDropped` evidence.
    pub fn set_mailbox_overflow(&mut self, overflow: MailboxOverflow) {
        self.mailbox_overflow = overflow;
    }

    /// Deliveries shed from `component`'s mailbox under
    /// [`MailboxOverflow::DropOldest`] — the bus counterpart of
    /// `legaliot_dataplane`'s `Subscriber::dropped`.
    pub fn dropped_deliveries(&self, component: &str) -> u64 {
        self.dropped_deliveries.get(component).copied().unwrap_or(0)
    }

    /// Notifications sent to principals (recipient, message), in order.
    pub fn notifications(&self) -> &[(String, String)] {
        &self.notifications
    }

    /// Actuation commands delivered to devices (component, command), in order.
    pub fn actuations(&self) -> &[(String, String)] {
        &self.actuations
    }

    /// Records a notification to a principal (e.g. from a policy `Notify` action).
    pub fn notify(&mut self, recipient: impl Into<String>, message: impl Into<String>) {
        self.notifications.push((recipient.into(), message.into()));
    }

    /// Appends an externally produced audit event (e.g. a break-glass activation
    /// recorded by the deployment layer) to this middleware's audit log.
    pub fn record_audit_event(&mut self, event: AuditEvent, at_millis: u64) {
        self.audit.record(event, at_millis);
    }

    /// All channels and their state.
    pub fn channels(&self) -> Vec<Channel> {
        self.channels
            .iter()
            .map(|((from, to), state)| Channel {
                from: from.clone(),
                to: to.clone(),
                state: *state,
            })
            .collect()
    }

    /// Number of currently open channels.
    pub fn open_channel_count(&self) -> usize {
        self.channels.values().filter(|s| **s == ChannelState::Open).count()
    }

    fn component(&self, name: &str) -> Result<&Component, MiddlewareError> {
        self.registry
            .get(name)
            .ok_or_else(|| MiddlewareError::UnknownComponent { name: name.to_string() })
    }

    /// Attempts to establish a channel `from → to`.
    ///
    /// The full check sequence of §8.2.2: isolation, then AC (the *sender's* principal
    /// must hold `Send` rights on the destination component), then IFC between the two
    /// components' security contexts. Every attempt is audited.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::UnknownComponent`] if either endpoint is unregistered.
    pub fn establish_channel(
        &mut self,
        from: &str,
        to: &str,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> Result<DeliveryOutcome, MiddlewareError> {
        let source = self.component(from)?.clone();
        let destination = self.component(to)?.clone();

        let outcome =
            crate::admission::admit_channel(&source, &destination, &self.access, snapshot, now);

        let established = outcome.is_delivered();
        if established {
            self.channels.insert((from.to_string(), to.to_string()), ChannelState::Open);
        }
        self.audit.record(
            AuditEvent::ChannelChanged {
                from: from.to_string(),
                to: to.to_string(),
                established,
                reason: match &outcome {
                    DeliveryOutcome::Delivered { .. } => "checks passed".to_string(),
                    DeliveryOutcome::Isolated => "endpoint isolated".to_string(),
                    DeliveryOutcome::DeniedByAccessControl { reason } => reason.clone(),
                    DeliveryOutcome::DeniedByIfc(d) => format!("ifc: {d}"),
                    DeliveryOutcome::SchemaViolation { reason } => reason.clone(),
                    DeliveryOutcome::NoChannel => "no channel".to_string(),
                },
            },
            now.as_millis(),
        );
        Ok(outcome)
    }

    /// Tears down the channel `from → to`, if present.
    pub fn teardown_channel(&mut self, from: &str, to: &str, now: Timestamp) {
        if let Some(state) = self.channels.get_mut(&(from.to_string(), to.to_string())) {
            *state = ChannelState::Closed;
            self.audit.record(
                AuditEvent::ChannelChanged {
                    from: from.to_string(),
                    to: to.to_string(),
                    established: false,
                    reason: "torn down".to_string(),
                },
                now.as_millis(),
            );
        }
    }

    /// Whether an open channel `from → to` exists.
    pub fn has_open_channel(&self, from: &str, to: &str) -> bool {
        self.channels.get(&(from.to_string(), to.to_string())) == Some(&ChannelState::Open)
    }

    /// Re-evaluates every open channel against the endpoints' *current* security
    /// contexts, closing those whose IFC check no longer passes. Returns the closed
    /// pairs. Called after any reconfiguration that changes labels (§8.2.2).
    pub fn reevaluate_channels(&mut self, now: Timestamp) -> Vec<(String, String)> {
        let mut closed = Vec::new();
        let pairs: Vec<(String, String)> = self
            .channels
            .iter()
            .filter(|(_, s)| **s == ChannelState::Open)
            .map(|(k, _)| k.clone())
            .collect();
        for (from, to) in pairs {
            let ok = match (self.registry.get(&from), self.registry.get(&to)) {
                (Some(a), Some(b)) => {
                    !a.is_isolated()
                        && !b.is_isolated()
                        && can_flow(a.context(), b.context()).is_allowed()
                }
                _ => false,
            };
            if !ok {
                self.channels.insert((from.clone(), to.clone()), ChannelState::Closed);
                self.audit.record(
                    AuditEvent::ChannelChanged {
                        from: from.clone(),
                        to: to.clone(),
                        established: false,
                        reason: "re-evaluation after context change".to_string(),
                    },
                    now.as_millis(),
                );
                closed.push((from, to));
            }
        }
        closed
    }

    /// Sends a typed message over an established channel.
    ///
    /// Checks, in order: channel exists and is open; neither endpoint isolated; schema
    /// conformance (if a schema is registered for the type); AC for the sender on the
    /// destination at message-type granularity; IFC between the *message's effective
    /// context* (sender context joined with message context) and the destination; then
    /// per-attribute source quenching against message-level tags (Fig. 10). Every
    /// attempted send is audited as a flow check.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::UnknownComponent`] if either endpoint is
    /// unregistered, [`MiddlewareError::ChannelClosed`] if the channel was torn down
    /// (re-establish to send again), and [`MiddlewareError::QueueFull`] if the
    /// destination mailbox is at its configured capacity.
    pub fn send(
        &mut self,
        from: &str,
        to: &str,
        message: Message,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> Result<DeliveryOutcome, MiddlewareError> {
        let started = self.telemetry.is_enabled().then(Instant::now);
        let source = self.component(from)?.clone();
        let destination = self.component(to)?.clone();

        match self.channels.get(&(from.to_string(), to.to_string())) {
            Some(ChannelState::Open) => {}
            Some(ChannelState::Closed) => {
                return Err(MiddlewareError::ChannelClosed {
                    from: from.to_string(),
                    to: to.to_string(),
                });
            }
            None => return Ok(DeliveryOutcome::NoChannel),
        }
        if source.is_isolated() || destination.is_isolated() {
            return Ok(DeliveryOutcome::Isolated);
        }
        if let Some(schema) = self.registry.schema(&message.message_type) {
            if let Err(reason) = schema.validate(&message) {
                return Ok(DeliveryOutcome::SchemaViolation { reason });
            }
        }
        let ac = self.access.decide(
            to,
            source.principal(),
            Operation::Send,
            Some(&message.message_type),
            snapshot,
            now,
        );
        if !ac.is_allowed() {
            let reason = match ac {
                crate::acl::AccessDecision::Denied { reason } => reason,
                _ => unreachable!(),
            };
            return Ok(DeliveryOutcome::DeniedByAccessControl { reason });
        }

        // Backpressure is checked before the flow is audited: a QueueFull error must
        // not leave an allowed-with-data-item FlowChecked record for a transfer that
        // never happened (audit evidence would disagree with the mailbox). Under
        // drop-oldest the new message *is* delivered, so the overflow is handled at
        // enqueue time instead (the shed delivery gets its own evidence record).
        if let Some(capacity) = self.mailbox_capacity {
            let occupied = self.mailboxes.get(to).map_or(0, VecDeque::len);
            if occupied >= capacity && self.mailbox_overflow == MailboxOverflow::Backpressure {
                return Err(MiddlewareError::QueueFull { component: to.to_string(), capacity });
            }
        }

        // The message carries at least the sender's current context: application-supplied
        // message-level secrecy tags are *added* (they can only constrain further), while
        // integrity comes from the sender alone — an application cannot endorse its own
        // messages beyond its process-level integrity (§8.2.2).
        let effective_context: SecurityContext = SecurityContext::new(
            source.context().secrecy().union(message.context.secrecy()),
            source.context().integrity().clone(),
        );
        let decision = can_flow(&effective_context, destination.context());
        self.audit.record(
            AuditEvent::FlowChecked {
                source: from.to_string(),
                destination: to.to_string(),
                source_context: effective_context.clone(),
                destination_context: destination.context().clone(),
                decision: decision.clone(),
                data_item: Some(format!("{}@{}", message.message_type, now.as_millis())),
            },
            now.as_millis(),
        );
        if decision.is_denied() {
            return Ok(DeliveryOutcome::DeniedByIfc(decision));
        }

        // Source quenching: attributes whose message-level secrecy tags are not all
        // present in the destination's secrecy label are removed (Fig. 10). Names are
        // borrowed from the schema; the only `String`s allocated are the ones the
        // outcome itself reports.
        let mut quenched: Vec<&str> = Vec::new();
        if let Some(schema) = self.registry.schema(&message.message_type) {
            for (name, label) in &schema.attribute_secrecy {
                if message.attributes.contains_key(name)
                    && !label.is_subset(destination.context().secrecy())
                {
                    quenched.push(name.as_str());
                }
            }
        }
        let mut delivered = message.quenched(quenched.iter().copied());
        delivered.sender = from.to_string();
        delivered.sent_at_millis = now.as_millis();
        delivered.context = effective_context;
        let mailbox = self.mailboxes.entry(to.to_string()).or_default();
        if let Some(capacity) = self.mailbox_capacity {
            // Drop-oldest overflow (the backpressure case already returned above):
            // shed until the new message fits, evidencing each shed delivery against
            // its own sender and type.
            while mailbox.len() >= capacity {
                let shed = mailbox.pop_front().expect("full implies non-empty");
                *self.dropped_deliveries.entry(to.to_string()).or_default() += 1;
                self.audit.record(
                    AuditEvent::DeliveryDropped {
                        source: shed.sender.clone(),
                        destination: to.to_string(),
                        message_type: shed.message_type.to_string(),
                        dropped: 1,
                    },
                    now.as_millis(),
                );
            }
        }
        mailbox.push_back(delivered);
        if let Some(started) = started {
            self.delivery_latency.record(started.elapsed().as_nanos() as u64);
        }
        Ok(DeliveryOutcome::Delivered {
            quenched_attributes: quenched.into_iter().map(String::from).collect(),
        })
    }

    /// Drains the mailbox of a component.
    pub fn receive(&mut self, component: &str) -> Vec<Message> {
        self.mailboxes
            .get_mut(component)
            .map(|mailbox| mailbox.drain(..).collect())
            .unwrap_or_default()
    }

    /// Removes and returns the oldest undelivered message of a component, or `None`
    /// when the mailbox is empty — the synchronous counterpart of the dataplane
    /// `Subscriber::try_recv`, so receive loops port between the two surfaces.
    pub fn try_recv(&mut self, component: &str) -> Option<Message> {
        self.mailboxes.get_mut(component).and_then(VecDeque::pop_front)
    }

    /// Handles a third-party reconfiguration control message (Fig. 8): authorises it
    /// against the AC regime (`Reconfigure` on the target), applies the operation, and
    /// re-evaluates channels when labels changed. Every control message is audited,
    /// accepted or not.
    pub fn handle_control(
        &mut self,
        message: &ControlMessage,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> ControlOutcome {
        let outcome = self.apply_control_inner(message, snapshot, now);
        self.audit.record(
            AuditEvent::Reconfigured {
                component: message.target.clone(),
                issued_by: message.issued_by.clone(),
                action: message.op.to_string(),
                accepted: outcome.is_applied(),
            },
            now.as_millis(),
        );
        outcome
    }

    fn apply_control_inner(
        &mut self,
        message: &ControlMessage,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> ControlOutcome {
        if self.registry.get(&message.target).is_none() {
            return ControlOutcome::UnknownTarget;
        }
        let issuer = Principal::new(message.issued_by.clone()).with_role("policy-engine");
        let ac = self.access.decide(
            &message.target,
            &issuer,
            Operation::Reconfigure,
            None,
            snapshot,
            now,
        );
        if !ac.is_allowed() {
            let reason = match ac {
                crate::acl::AccessDecision::Denied { reason } => reason,
                _ => unreachable!(),
            };
            return ControlOutcome::Unauthorised { reason };
        }

        let mut labels_changed = false;
        let result = match &message.op {
            ReconfigureOp::SetContext { context } => {
                let target = self.registry.get_mut(&message.target).expect("checked above");
                target.entity_mut().set_context_trusted(context.clone());
                labels_changed = true;
                ControlOutcome::Applied
            }
            ReconfigureOp::AddTag { tag, secrecy } | ReconfigureOp::RemoveTag { tag, secrecy } => {
                let add = matches!(message.op, ReconfigureOp::AddTag { .. });
                let target = self.registry.get_mut(&message.target).expect("checked above");
                let mut ctx = target.context().clone();
                let label = if *secrecy { ctx.secrecy_mut() } else { ctx.integrity_mut() };
                if add {
                    label.insert(tag.clone());
                } else {
                    label.remove(tag);
                }
                target.entity_mut().set_context_trusted(ctx);
                labels_changed = true;
                ControlOutcome::Applied
            }
            ReconfigureOp::GrantPrivilege { privilege } => {
                // The issuing authority must own the tag to delegate privileges over it
                // (§6 Tag Ownership), when the tag is registered.
                if self.tag_registry.contains(&privilege.tag) {
                    if let Err(e) = self
                        .tag_registry
                        .ownership()
                        .authorise_delegation(&privilege.tag, &message.issued_by)
                    {
                        return ControlOutcome::Failed { reason: e.to_string() };
                    }
                }
                let target = self.registry.get_mut(&message.target).expect("checked above");
                target.entity_mut().privileges_mut().grant(privilege.tag.clone(), privilege.kind);
                ControlOutcome::Applied
            }
            ReconfigureOp::RevokePrivilege { privilege } => {
                let target = self.registry.get_mut(&message.target).expect("checked above");
                target.entity_mut().privileges_mut().revoke(&privilege.tag, privilege.kind);
                ControlOutcome::Applied
            }
            ReconfigureOp::Connect { to } => {
                match self.establish_channel(&message.target, to, snapshot, now) {
                    Ok(outcome) if outcome.is_delivered() => ControlOutcome::Applied,
                    Ok(other) => ControlOutcome::Failed {
                        reason: format!("channel establishment refused: {other:?}"),
                    },
                    Err(e) => ControlOutcome::Failed { reason: e.to_string() },
                }
            }
            ReconfigureOp::Disconnect { to } => {
                self.teardown_channel(&message.target, to, now);
                ControlOutcome::Applied
            }
            ReconfigureOp::Isolate | ReconfigureOp::Deisolate => {
                let isolate = matches!(message.op, ReconfigureOp::Isolate);
                let target = self.registry.get_mut(&message.target).expect("checked above");
                target.set_isolated(isolate);
                labels_changed = true;
                ControlOutcome::Applied
            }
            ReconfigureOp::Actuate { command } => {
                self.actuations.push((message.target.clone(), command.clone()));
                ControlOutcome::Applied
            }
        };
        if labels_changed {
            self.reevaluate_channels(now);
        }
        result
    }

    /// Applies a policy-engine command: `Notify` actions become notifications, addressed
    /// actions become control messages handled through the normal authorised path.
    /// Returns the control outcomes (empty for pure notifications).
    pub fn apply_command(
        &mut self,
        command: &ReconfigurationCommand,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> Vec<ControlOutcome> {
        if let legaliot_policy::Action::Notify { recipient, message } = &command.action {
            self.notify(recipient.clone(), message.clone());
            return Vec::new();
        }
        ControlMessage::from_command(command)
            .iter()
            .map(|cm| self.handle_control(cm, snapshot, now))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{AccessRule, Subject};
    use crate::schema::{AttributeKind, AttributeValue, MessageSchema};
    use legaliot_ifc::{Label, Tag, TagScope};

    fn medical_ctx(patient: &str) -> SecurityContext {
        SecurityContext::from_names(["medical", patient], ["hosp-dev", "consent"])
    }

    /// Builds the home-monitoring middleware used across tests: Ann's and Zeb's sensors
    /// and analysers, open AC for sends, and the policy engine allowed to reconfigure.
    fn home_monitoring() -> Middleware {
        let mut mw = Middleware::new("hospital-mw");
        for (name, owner, ctx) in [
            ("ann-sensor", "ann", medical_ctx("ann")),
            ("ann-analyser", "hospital", medical_ctx("ann")),
            (
                "zeb-sensor",
                "zeb",
                SecurityContext::from_names(["medical", "zeb"], ["zeb-dev", "consent"]),
            ),
            ("zeb-analyser", "hospital", medical_ctx("zeb")),
        ] {
            mw.registry_mut().register(
                Component::builder(name, Principal::new(owner))
                    .context(ctx)
                    .produces("sensor-reading")
                    .consumes("sensor-reading")
                    .build(),
            );
        }
        for target in ["ann-sensor", "ann-analyser", "zeb-sensor", "zeb-analyser"] {
            mw.access_mut()
                .add_rule(target, AccessRule::allow(Subject::Anyone, Operation::Send, None));
            mw.access_mut().add_rule(
                target,
                AccessRule::allow(
                    Subject::Role("policy-engine".into()),
                    Operation::Reconfigure,
                    None,
                ),
            );
        }
        mw
    }

    fn snap() -> ContextSnapshot {
        ContextSnapshot::default()
    }

    #[test]
    fn channel_establishment_checks_ac_then_ifc() {
        let mut mw = home_monitoring();
        // Ann's sensor → Ann's analyser: allowed (Fig. 4, legal flow).
        let outcome =
            mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(1)).unwrap();
        assert!(outcome.is_delivered());
        assert!(mw.has_open_channel("ann-sensor", "ann-analyser"));
        // Zeb's sensor → Ann's analyser: denied by IFC (Fig. 4, illegal flow).
        let outcome =
            mw.establish_channel("zeb-sensor", "ann-analyser", &snap(), Timestamp(2)).unwrap();
        assert!(matches!(outcome, DeliveryOutcome::DeniedByIfc(_)));
        assert!(!mw.has_open_channel("zeb-sensor", "ann-analyser"));
        // Both attempts are audited.
        assert_eq!(mw.audit().len(), 2);
        // Unknown components error.
        assert!(mw.establish_channel("ghost", "ann-analyser", &snap(), Timestamp(3)).is_err());
    }

    #[test]
    fn channel_denied_without_ac_rule() {
        let mut mw = home_monitoring();
        // A component with no AC rules at all is default-deny.
        mw.registry_mut().register(
            Component::builder("locked", Principal::new("x")).context(medical_ctx("ann")).build(),
        );
        let outcome = mw.establish_channel("ann-sensor", "locked", &snap(), Timestamp(1)).unwrap();
        assert!(matches!(outcome, DeliveryOutcome::DeniedByAccessControl { .. }));
    }

    #[test]
    fn send_requires_open_channel_and_reevaluates_ifc() {
        let mut mw = home_monitoring();
        let msg = Message::new("sensor-reading", SecurityContext::public())
            .with("value", AttributeValue::Float(72.0));
        // No channel yet.
        assert_eq!(
            mw.send("ann-sensor", "ann-analyser", msg.clone(), &snap(), Timestamp(1)).unwrap(),
            DeliveryOutcome::NoChannel
        );
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(2)).unwrap();
        let outcome =
            mw.send("ann-sensor", "ann-analyser", msg.clone(), &snap(), Timestamp(3)).unwrap();
        assert!(outcome.is_delivered());
        let inbox = mw.receive("ann-analyser");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].sender, "ann-sensor");
        // The delivered message carries the sender's (joined) security context.
        assert!(inbox[0].context.secrecy().contains_name("medical"));
        assert!(mw.receive("ann-analyser").is_empty());
    }

    #[test]
    fn message_level_tags_are_source_quenched_fig10() {
        let mut mw = home_monitoring();
        // `patient-name` carries an extra messaging-level tag `identity` (tag C in
        // Fig. 10) that Ann's analyser does not hold.
        mw.registry_mut().register_schema(
            MessageSchema::new("sensor-reading")
                .attribute("value", AttributeKind::Float)
                .sensitive_attribute(
                    "patient-name",
                    AttributeKind::Text,
                    Label::from_names(["identity"]),
                ),
        );
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(1)).unwrap();
        let msg = Message::new("sensor-reading", SecurityContext::public())
            .with("value", AttributeValue::Float(72.0))
            .with("patient-name", AttributeValue::Text("Ann".into()));
        let outcome = mw.send("ann-sensor", "ann-analyser", msg, &snap(), Timestamp(2)).unwrap();
        match &outcome {
            DeliveryOutcome::Delivered { quenched_attributes } => {
                assert_eq!(quenched_attributes, &vec!["patient-name".to_string()]);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        let inbox = mw.receive("ann-analyser");
        assert!(!inbox[0].attributes.contains_key("patient-name"));
        assert!(inbox[0].attributes.contains_key("value"));

        // A destination that *does* hold the identity tag receives the full message.
        mw.registry_mut().register(
            Component::builder("identity-vault", Principal::new("hospital"))
                .context(SecurityContext::from_names(
                    ["medical", "ann", "identity"],
                    Vec::<&str>::new(),
                ))
                .build(),
        );
        mw.access_mut()
            .add_rule("identity-vault", AccessRule::allow(Subject::Anyone, Operation::Send, None));
        mw.establish_channel("ann-sensor", "identity-vault", &snap(), Timestamp(3)).unwrap();
        let msg = Message::new("sensor-reading", SecurityContext::public())
            .with("value", AttributeValue::Float(72.0))
            .with("patient-name", AttributeValue::Text("Ann".into()));
        let outcome = mw.send("ann-sensor", "identity-vault", msg, &snap(), Timestamp(4)).unwrap();
        assert_eq!(outcome, DeliveryOutcome::Delivered { quenched_attributes: vec![] });
        assert!(mw.receive("identity-vault")[0].attributes.contains_key("patient-name"));
    }

    #[test]
    fn schema_violations_are_rejected() {
        let mut mw = home_monitoring();
        mw.registry_mut().register_schema(
            MessageSchema::new("sensor-reading").attribute("value", AttributeKind::Float),
        );
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(1)).unwrap();
        let bad = Message::new("sensor-reading", SecurityContext::public())
            .with("value", AttributeValue::Text("not a number".into()));
        let outcome = mw.send("ann-sensor", "ann-analyser", bad, &snap(), Timestamp(2)).unwrap();
        assert!(matches!(outcome, DeliveryOutcome::SchemaViolation { .. }));
    }

    #[test]
    fn third_party_reconfiguration_fig8() {
        let mut mw = home_monitoring();
        // The hospital policy engine (authorised) connects analyser to a new doctor
        // component via a control message.
        mw.registry_mut().register(
            Component::builder("emergency-doctor", Principal::new("hospital"))
                .context(medical_ctx("ann"))
                .build(),
        );
        mw.access_mut().add_rule(
            "emergency-doctor",
            AccessRule::allow(Subject::Anyone, Operation::Send, None),
        );
        let cm = ControlMessage::new(
            "ann-analyser",
            ReconfigureOp::Connect { to: "emergency-doctor".into() },
            "hospital-engine",
            "emergency-response",
            10,
        );
        let outcome = mw.handle_control(&cm, &snap(), Timestamp(10));
        assert!(outcome.is_applied());
        assert!(mw.has_open_channel("ann-analyser", "emergency-doctor"));

        // An unauthorised issuer is refused and audited as rejected.
        let rogue =
            ControlMessage::new("ann-analyser", ReconfigureOp::Isolate, "attacker", "none", 11);
        // The attacker principal does not hold the policy-engine role rule? It does get
        // the role in handle_control, but the rule requires Reconfigure on the target,
        // which "attacker" satisfies via the role. Tighten: restrict reconfiguration of
        // the analyser to the named engine.
        mw.access_mut().clear_component("ann-analyser");
        mw.access_mut()
            .add_rule("ann-analyser", AccessRule::allow(Subject::Anyone, Operation::Send, None));
        mw.access_mut().add_rule(
            "ann-analyser",
            AccessRule::allow(
                Subject::Principal("hospital-engine".into()),
                Operation::Reconfigure,
                None,
            ),
        );
        let outcome = mw.handle_control(&rogue, &snap(), Timestamp(11));
        assert!(matches!(outcome, ControlOutcome::Unauthorised { .. }));
        // Unknown targets are reported.
        let ghost =
            ControlMessage::new("ghost", ReconfigureOp::Isolate, "hospital-engine", "p", 12);
        assert_eq!(
            mw.handle_control(&ghost, &snap(), Timestamp(12)),
            ControlOutcome::UnknownTarget
        );
        // All three control messages are in the audit log.
        assert_eq!(mw.audit().of_kind(legaliot_audit::AuditEventKind::Reconfigured).count(), 3);
    }

    #[test]
    fn label_change_triggers_channel_reevaluation() {
        let mut mw = home_monitoring();
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(1)).unwrap();
        assert_eq!(mw.open_channel_count(), 1);
        // The policy engine adds a secrecy tag to the sensor that the analyser lacks;
        // the existing channel must be closed on re-evaluation (§8.2.2).
        let cm = ControlMessage::new(
            "ann-sensor",
            ReconfigureOp::AddTag { tag: Tag::new("quarantine"), secrecy: true },
            "hospital-engine",
            "incident-response",
            5,
        );
        assert!(mw.handle_control(&cm, &snap(), Timestamp(5)).is_applied());
        assert_eq!(mw.open_channel_count(), 0);
        assert!(!mw.has_open_channel("ann-sensor", "ann-analyser"));
    }

    #[test]
    fn isolation_blocks_channels_and_sends() {
        let mut mw = home_monitoring();
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(1)).unwrap();
        let cm =
            ControlMessage::new("ann-sensor", ReconfigureOp::Isolate, "hospital-engine", "p", 2);
        assert!(mw.handle_control(&cm, &snap(), Timestamp(2)).is_applied());
        // Open channels involving the isolated component were closed; sending over the
        // torn-down channel is now an error, not a silent outcome.
        assert_eq!(mw.open_channel_count(), 0);
        let msg = Message::new("sensor-reading", SecurityContext::public());
        assert_eq!(
            mw.send("ann-sensor", "ann-analyser", msg, &snap(), Timestamp(3)),
            Err(MiddlewareError::ChannelClosed {
                from: "ann-sensor".into(),
                to: "ann-analyser".into()
            })
        );
        // New channels are refused while isolated.
        let outcome =
            mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(4)).unwrap();
        assert_eq!(outcome, DeliveryOutcome::Isolated);
        // Deisolation restores the ability to connect.
        let cm =
            ControlMessage::new("ann-sensor", ReconfigureOp::Deisolate, "hospital-engine", "p", 5);
        assert!(mw.handle_control(&cm, &snap(), Timestamp(5)).is_applied());
        assert!(mw
            .establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(6))
            .unwrap()
            .is_delivered());
    }

    #[test]
    fn privilege_grant_requires_tag_ownership() {
        let mut mw = home_monitoring();
        mw.tag_registry_mut()
            .register(
                Tag::new("medical"),
                "medical data",
                TagScope::Global,
                true,
                "hospital-engine",
            )
            .unwrap();
        mw.tag_registry_mut()
            .register(Tag::new("city"), "city data", TagScope::Global, false, "council")
            .unwrap();
        // The engine owns `medical`: grant succeeds.
        let ok = ControlMessage::new(
            "ann-analyser",
            ReconfigureOp::GrantPrivilege {
                privilege: legaliot_ifc::Privilege::new(
                    "medical",
                    legaliot_ifc::PrivilegeKind::SecrecyRemove,
                ),
            },
            "hospital-engine",
            "p",
            1,
        );
        assert!(mw.handle_control(&ok, &snap(), Timestamp(1)).is_applied());
        assert!(mw
            .registry()
            .get("ann-analyser")
            .unwrap()
            .privileges()
            .permits(&Tag::new("medical"), legaliot_ifc::PrivilegeKind::SecrecyRemove));
        // The engine does not own `city`: grant fails.
        let bad = ControlMessage::new(
            "ann-analyser",
            ReconfigureOp::GrantPrivilege {
                privilege: legaliot_ifc::Privilege::new(
                    "city",
                    legaliot_ifc::PrivilegeKind::SecrecyRemove,
                ),
            },
            "hospital-engine",
            "p",
            2,
        );
        assert!(matches!(
            mw.handle_control(&bad, &snap(), Timestamp(2)),
            ControlOutcome::Failed { .. }
        ));
        // Revocation is always possible for the authorised engine.
        let revoke = ControlMessage::new(
            "ann-analyser",
            ReconfigureOp::RevokePrivilege {
                privilege: legaliot_ifc::Privilege::new(
                    "medical",
                    legaliot_ifc::PrivilegeKind::SecrecyRemove,
                ),
            },
            "hospital-engine",
            "p",
            3,
        );
        assert!(mw.handle_control(&revoke, &snap(), Timestamp(3)).is_applied());
    }

    #[test]
    fn apply_command_translates_policy_actions() {
        let mut mw = home_monitoring();
        let notify = ReconfigurationCommand::new(
            "emergency-response",
            "hospital-engine",
            legaliot_policy::Action::Notify {
                recipient: "emergency-doctor".into(),
                message: "go".into(),
            },
            1,
        );
        assert!(mw.apply_command(&notify, &snap(), Timestamp(1)).is_empty());
        assert_eq!(mw.notifications().len(), 1);

        let actuate = ReconfigurationCommand::new(
            "emergency-response",
            "hospital-engine",
            legaliot_policy::Action::Actuate {
                component: "ann-sensor".into(),
                command: "sample-interval=1s".into(),
            },
            2,
        );
        let outcomes = mw.apply_command(&actuate, &snap(), Timestamp(2));
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].is_applied());
        assert_eq!(
            mw.actuations(),
            &[("ann-sensor".to_string(), "sample-interval=1s".to_string())]
        );
    }

    #[test]
    fn error_display_and_channel_listing() {
        let mut mw = home_monitoring();
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(1)).unwrap();
        mw.teardown_channel("ann-sensor", "ann-analyser", Timestamp(2));
        let channels = mw.channels();
        assert_eq!(channels.len(), 1);
        assert_eq!(channels[0].state, ChannelState::Closed);
        assert!(!DeliveryOutcome::NoChannel.is_delivered());
        assert!(MiddlewareError::UnknownComponent { name: "x".into() }.to_string().contains("x"));
        assert!(MiddlewareError::ChannelClosed { from: "a".into(), to: "b".into() }
            .to_string()
            .contains("closed"));
        assert!(MiddlewareError::QueueFull { component: "a".into(), capacity: 4 }
            .to_string()
            .contains("capacity 4"));
    }

    #[test]
    fn send_over_torn_down_channel_is_an_error_until_reestablished() {
        let mut mw = home_monitoring();
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(1)).unwrap();
        mw.teardown_channel("ann-sensor", "ann-analyser", Timestamp(2));
        let msg = Message::new("sensor-reading", SecurityContext::public());
        assert!(matches!(
            mw.send("ann-sensor", "ann-analyser", msg.clone(), &snap(), Timestamp(3)),
            Err(MiddlewareError::ChannelClosed { .. })
        ));
        // Re-establishment re-runs the full admission checks and clears the error.
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(4)).unwrap();
        assert!(mw
            .send("ann-sensor", "ann-analyser", msg, &snap(), Timestamp(5))
            .unwrap()
            .is_delivered());
    }

    #[test]
    fn drop_oldest_overflow_sheds_with_evidence_and_try_recv_pops_in_order() {
        let mut mw = home_monitoring();
        mw.set_mailbox_capacity(Some(2));
        mw.set_mailbox_overflow(MailboxOverflow::DropOldest);
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(1)).unwrap();
        let msg = Message::new("sensor-reading", SecurityContext::public());
        // Five sends into a 2-slot mailbox: every send is delivered (never QueueFull),
        // the three oldest are shed.
        for t in 2..7 {
            assert!(mw
                .send("ann-sensor", "ann-analyser", msg.clone(), &snap(), Timestamp(t))
                .unwrap()
                .is_delivered());
        }
        assert_eq!(mw.dropped_deliveries("ann-analyser"), 3);
        let dropped_records: u64 = mw
            .audit()
            .of_kind(legaliot_audit::AuditEventKind::DeliveryDropped)
            .map(|r| match &r.event {
                AuditEvent::DeliveryDropped { dropped, source, .. } => {
                    assert_eq!(source, "ann-sensor");
                    *dropped
                }
                _ => unreachable!(),
            })
            .sum();
        assert_eq!(dropped_records, 3);
        // The two newest survive, received oldest-first via the parity `try_recv`.
        assert_eq!(mw.try_recv("ann-analyser").unwrap().sent_at_millis, 5);
        assert_eq!(mw.try_recv("ann-analyser").unwrap().sent_at_millis, 6);
        assert!(mw.try_recv("ann-analyser").is_none());
        assert!(mw.try_recv("ghost").is_none());

        // A zero capacity clamps to 1 under *both* policies (as on the dataplane):
        // drop-oldest keeps exactly one message, backpressure reports capacity 1.
        mw.set_mailbox_capacity(Some(0));
        assert!(mw
            .send("ann-sensor", "ann-analyser", msg.clone(), &snap(), Timestamp(7))
            .unwrap()
            .is_delivered());
        mw.set_mailbox_overflow(MailboxOverflow::Backpressure);
        assert_eq!(
            mw.send("ann-sensor", "ann-analyser", msg, &snap(), Timestamp(8)),
            Err(MiddlewareError::QueueFull { component: "ann-analyser".into(), capacity: 1 })
        );
    }

    #[test]
    fn bounded_mailboxes_apply_backpressure() {
        let mut mw = home_monitoring();
        mw.set_mailbox_capacity(Some(2));
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(1)).unwrap();
        let msg = Message::new("sensor-reading", SecurityContext::public());
        for t in 2..4 {
            assert!(mw
                .send("ann-sensor", "ann-analyser", msg.clone(), &snap(), Timestamp(t))
                .unwrap()
                .is_delivered());
        }
        assert_eq!(
            mw.send("ann-sensor", "ann-analyser", msg.clone(), &snap(), Timestamp(4)),
            Err(MiddlewareError::QueueFull { component: "ann-analyser".into(), capacity: 2 })
        );
        // The refused send left no flow-check record: audit must not evidence a
        // transfer that never reached the mailbox.
        assert_eq!(mw.audit().of_kind(legaliot_audit::AuditEventKind::FlowChecked).count(), 2);
        // Draining the receiver frees capacity again.
        assert_eq!(mw.receive("ann-analyser").len(), 2);
        assert!(mw
            .send("ann-sensor", "ann-analyser", msg, &snap(), Timestamp(5))
            .unwrap()
            .is_delivered());
        // Unbounded again once the cap is lifted.
        mw.set_mailbox_capacity(None);
        for t in 6..20 {
            let msg = Message::new("sensor-reading", SecurityContext::public());
            assert!(mw
                .send("ann-sensor", "ann-analyser", msg, &snap(), Timestamp(t))
                .unwrap()
                .is_delivered());
        }
    }

    /// Bus-side parity with the dataplane's delivery histogram: every delivered
    /// `send` lands exactly one latency sample; denials and disabled telemetry
    /// land none.
    #[test]
    fn delivery_latency_counts_delivered_sends_only() {
        let mut mw = home_monitoring();
        mw.establish_channel("ann-sensor", "ann-analyser", &snap(), Timestamp(1)).unwrap();
        let msg = || {
            Message::new("sensor-reading", SecurityContext::public())
                .with("value", AttributeValue::Float(72.0))
        };
        for t in 2..7 {
            assert!(mw
                .send("ann-sensor", "ann-analyser", msg(), &snap(), Timestamp(t))
                .unwrap()
                .is_delivered());
        }
        // A non-delivered outcome (no channel) must not record a sample.
        assert_eq!(
            mw.send("ann-sensor", "zeb-analyser", msg(), &snap(), Timestamp(7)).unwrap(),
            DeliveryOutcome::NoChannel
        );
        let latency = mw.delivery_latency();
        assert_eq!(latency.count(), 5);
        assert!(latency.p99() > 0);

        // Disabled telemetry: no clock reads, no samples — counts stay put.
        mw.set_telemetry(ObsConfig::disabled());
        assert!(mw
            .send("ann-sensor", "ann-analyser", msg(), &snap(), Timestamp(8))
            .unwrap()
            .is_delivered());
        assert_eq!(mw.delivery_latency().count(), 5);
    }
}
