//! The paper's worked example as a runnable scenario (§7, Figs. 4–7).

use legaliot_compliance::{ComplianceReport, RegulationSet};
use legaliot_ifc::{SecurityContext, Tag};
use legaliot_iot::HomeMonitoringWorkload;
use legaliot_middleware::{DeliveryOutcome, Message};
use legaliot_policy::PolicyTemplate;

use crate::deployment::Deployment;

/// Aggregate results of a scenario run, printed by the examples and checked by the
/// integration tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioOutcome {
    /// Readings delivered end-to-end to an analyser.
    pub delivered: usize,
    /// Readings denied by IFC (e.g. attempts to bypass the sanitiser).
    pub denied: usize,
    /// Emergencies detected and responded to.
    pub emergencies: usize,
    /// Notifications sent to principals.
    pub notifications: usize,
    /// Total audit records produced.
    pub audit_records: usize,
    /// The compliance report against the configured regulation.
    pub compliance: Option<ComplianceReport>,
}

/// The medical home-monitoring scenario: Ann (hospital device, direct path) and Zeb
/// (third-party device, sanitised path), hospital analysers, anonymised statistics for
/// the ward manager, and policy-driven emergency response.
#[derive(Debug)]
pub struct HomeMonitoringScenario {
    /// The underlying deployment (exposed so tests and examples can inspect it).
    pub deployment: Deployment,
    /// The generating workload; tests and examples may tune its parameters (e.g. the
    /// emergency probability) before calling [`HomeMonitoringScenario::run`].
    pub workload: HomeMonitoringWorkload,
    regulation: RegulationSet,
}

impl HomeMonitoringScenario {
    /// Builds the scenario: things registered, regulation and emergency policies loaded,
    /// consent recorded, and the static channels of Fig. 7 established.
    pub fn build(seed: u64) -> Self {
        let workload = HomeMonitoringWorkload::fig7(seed);
        let mut deployment = Deployment::new("home-monitoring", "hospital-engine");

        for thing in workload.things() {
            deployment.add_thing(&thing, "eu");
        }
        deployment.register_tag(Tag::new("medical"), "medical data", "hospital-engine");
        deployment.register_tag(Tag::new("hosp-dev"), "hospital-issued device", "hospital-engine");

        // Regulation: EU-style data protection over `personal` data.
        let regulation = RegulationSet::eu_style_data_protection("ann");
        deployment.add_regulation(&regulation);
        for patient in &workload.patients {
            if patient.consent {
                deployment.record_consent(patient.name.clone());
            }
        }

        // Emergency response policy per patient (Fig. 7).
        for patient in &workload.patients {
            for rule in (PolicyTemplate::EmergencyResponse {
                emergency_key: format!("{}.emergency", patient.name),
                analyser: format!("{}-analyser", patient.name),
                responder: "emergency-doctor".to_string(),
                sensor: format!("{}-sensor", patient.name),
                // Reconfigurations are issued on the authority of the deployment's
                // policy engine, which the per-component AC rules trust (Fig. 8).
                authority: "hospital-engine".to_string(),
            })
            .expand()
            {
                deployment.add_rule(rule);
            }
        }

        // Static channels: Ann direct; Zeb through the input sanitiser (Fig. 5); both
        // analysers feed the statistics generator.
        deployment.connect("ann-sensor", "ann-analyser").unwrap();
        deployment.connect("zeb-sensor", "input-sanitiser").unwrap();
        deployment.connect("ann-analyser", "stats-generator").unwrap();
        deployment.connect("zeb-analyser", "stats-generator").unwrap();

        HomeMonitoringScenario { deployment, workload, regulation }
    }

    /// The regulation governing the scenario.
    pub fn regulation(&self) -> &RegulationSet {
        &self.regulation
    }

    /// Demonstrates Fig. 4: Zeb's raw data cannot reach Ann's analyser, and cannot reach
    /// Zeb's own analyser without the sanitiser. Returns the two denial outcomes.
    pub fn demonstrate_illegal_flows(&mut self) -> (DeliveryOutcome, DeliveryOutcome) {
        let cross_patient =
            self.deployment.connect("zeb-sensor", "ann-analyser").expect("components exist");
        let unsanitised =
            self.deployment.connect("zeb-sensor", "zeb-analyser").expect("components exist");
        (cross_patient, unsanitised)
    }

    /// Runs the endorsement hop of Fig. 5: the sanitiser converts Zeb's data and — as a
    /// privileged endorser — is reconfigured into the hospital-standard context so its
    /// output can reach Zeb's analyser.
    pub fn run_sanitiser_endorsement(&mut self) {
        // Policy: the hospital engine re-labels the sanitiser's output context.
        let zeb = self
            .workload
            .patients
            .iter()
            .find(|p| !p.hospital_device)
            .expect("zeb present")
            .clone();
        let standard = HomeMonitoringWorkload::analyser_context(&zeb);
        let cmd = legaliot_policy::ReconfigurationCommand::new(
            "sanitise-output",
            "hospital-engine",
            legaliot_policy::Action::SetSecurityContext {
                component: "input-sanitiser".into(),
                context: standard,
            },
            self.deployment.now().as_millis(),
        );
        let snapshot = self.deployment.context().snapshot();
        let now = self.deployment.now();
        self.deployment.middleware_mut().apply_command(&cmd, &snapshot, now);
        self.deployment.connect("input-sanitiser", "zeb-analyser").expect("components exist");
    }

    /// Runs the declassification of Fig. 6: the statistics generator aggregates patient
    /// data, is reconfigured into the anonymised/statistics context, and publishes to
    /// the ward manager.
    pub fn run_statistics_declassification(&mut self) -> DeliveryOutcome {
        // Record the aggregation in provenance: statistics derived from both analysers'
        // outputs by the stats generator, controlled by the hospital.
        let raw_ctx = SecurityContext::from_names(
            ["medical", "ann", "zeb", "personal"],
            ["hosp-dev", "consent"],
        );
        self.deployment.record_derivation(
            "ann-analysis",
            &["ann-reading"],
            "ann-analyser",
            "hospital",
            raw_ctx.clone(),
        );
        self.deployment.record_derivation(
            "zeb-analysis",
            &["zeb-reading"],
            "zeb-analyser",
            "hospital",
            raw_ctx.clone(),
        );
        self.deployment.record_derivation(
            "monthly-statistics",
            &["ann-analysis", "zeb-analysis"],
            "stats-generator",
            "hospital",
            SecurityContext::from_names(["medical", "stats"], ["anon"]),
        );

        // Before declassification the generator cannot reach the ward manager.
        let before =
            self.deployment.connect("stats-generator", "ward-manager").expect("components exist");
        assert!(matches!(before, DeliveryOutcome::DeniedByIfc(_)));

        // The hospital engine declassifies the generator (approved anonymisation).
        let anon_ctx = SecurityContext::from_names(["medical", "stats"], ["anon"]);
        let cmd = legaliot_policy::ReconfigurationCommand::new(
            "anonymise-statistics",
            "hospital-engine",
            legaliot_policy::Action::SetSecurityContext {
                component: "stats-generator".into(),
                context: anon_ctx,
            },
            self.deployment.now().as_millis(),
        );
        let snapshot = self.deployment.context().snapshot();
        let now = self.deployment.now();
        self.deployment.middleware_mut().apply_command(&cmd, &snapshot, now);

        let outcome =
            self.deployment.connect("stats-generator", "ward-manager").expect("components exist");
        assert!(outcome.is_delivered());
        self.deployment
            .send(
                "stats-generator",
                "ward-manager",
                Message::new("statistics", SecurityContext::public()),
            )
            .expect("components exist")
    }

    fn set_sanitiser_context(&mut self, context: SecurityContext) {
        let cmd = legaliot_policy::ReconfigurationCommand::new(
            "sanitiser-context-switch",
            "hospital-engine",
            legaliot_policy::Action::SetSecurityContext {
                component: "input-sanitiser".into(),
                context,
            },
            self.deployment.now().as_millis(),
        );
        let snapshot = self.deployment.context().snapshot();
        let now = self.deployment.now();
        self.deployment.middleware_mut().apply_command(&cmd, &snapshot, now);
    }

    /// Relays one third-party reading through the input sanitiser, modelling the
    /// alternating security contexts of Fig. 5: the sanitiser reads in the patient's
    /// device context, converts the data, is endorsed into the hospital-standard
    /// context, and forwards to the patient's analyser. Returns whether the converted
    /// reading reached the analyser.
    pub fn relay_third_party_reading(&mut self, patient: &str, heart_rate: i64) -> bool {
        let Some(p) = self.workload.patients.iter().find(|p| p.name == patient).cloned() else {
            return false;
        };
        let sensor = format!("{patient}-sensor");
        let analyser = format!("{patient}-analyser");

        // Phase 1: input context — receive the raw, non-standard reading.
        self.set_sanitiser_context(HomeMonitoringWorkload::sensor_context(&p));
        let _ = self.deployment.connect(&sensor, "input-sanitiser");
        let raw = Message::new("sensor-reading", SecurityContext::public())
            .with("value", legaliot_middleware::AttributeValue::Integer(heart_rate));
        let received = self
            .deployment
            .send(&sensor, "input-sanitiser", raw)
            .map(|o| o.is_delivered())
            .unwrap_or(false);
        if !received {
            return false;
        }
        let _ = self.deployment.receive("input-sanitiser");

        // Phase 2: endorsement — change context and forward the converted reading.
        self.set_sanitiser_context(HomeMonitoringWorkload::analyser_context(&p));
        let _ = self.deployment.connect("input-sanitiser", &analyser);
        let converted = Message::new("sensor-reading", SecurityContext::public())
            .with("value", legaliot_middleware::AttributeValue::Integer(heart_rate));
        self.deployment
            .send("input-sanitiser", &analyser, converted)
            .map(|o| o.is_delivered())
            .unwrap_or(false)
    }

    /// Runs `rounds` of readings through the deployment (Fig. 7), detecting emergencies
    /// and letting the policy engine respond, then produces the aggregate outcome
    /// including the compliance report.
    pub fn run(&mut self, rounds: usize) -> ScenarioOutcome {
        let mut outcome = ScenarioOutcome::default();
        let start = self.deployment.now().as_millis();
        let readings = self.workload.readings(rounds, start);
        for reading in readings {
            self.deployment.advance(10);
            self.deployment
                .set_context(format!("{}.heart-rate", reading.patient), reading.heart_rate as i64);

            // Route: hospital devices go straight to their analyser; third-party devices
            // are relayed through the input sanitiser (Fig. 5).
            let patient = self
                .workload
                .patients
                .iter()
                .find(|p| p.name == reading.patient)
                .expect("patient exists")
                .clone();
            let delivered = if patient.hospital_device {
                let message = Message::new("sensor-reading", SecurityContext::public()).with(
                    "value",
                    legaliot_middleware::AttributeValue::Integer(reading.heart_rate as i64),
                );
                match self.deployment.send(
                    &reading.sensor,
                    &format!("{}-analyser", patient.name),
                    message,
                ) {
                    Ok(outcome) => outcome.is_delivered(),
                    // A policy may have torn the channel down mid-run; count as denied.
                    Err(legaliot_middleware::MiddlewareError::ChannelClosed { .. }) => false,
                    Err(e) => panic!("components exist: {e}"),
                }
            } else {
                self.relay_third_party_reading(&patient.name, reading.heart_rate as i64)
            };
            if delivered {
                outcome.delivered += 1;
            } else {
                outcome.denied += 1;
            }

            if reading.is_emergency() {
                outcome.emergencies += 1;
                self.deployment.set_context(format!("{}.emergency", reading.patient), true);
            }
            self.deployment.tick();
        }
        outcome.notifications = self.deployment.middleware().notifications().len();
        outcome.audit_records = self.deployment.audit().len();
        outcome.compliance = Some(self.deployment.compliance_report(&self.regulation));
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn illegal_flows_are_prevented_fig4() {
        let mut scenario = HomeMonitoringScenario::build(1);
        let (cross, unsanitised) = scenario.demonstrate_illegal_flows();
        assert!(matches!(cross, DeliveryOutcome::DeniedByIfc(_)));
        assert!(matches!(unsanitised, DeliveryOutcome::DeniedByIfc(_)));
    }

    #[test]
    fn sanitiser_endorsement_enables_zebs_path_fig5() {
        let mut scenario = HomeMonitoringScenario::build(1);
        scenario.run_sanitiser_endorsement();
        assert!(scenario
            .deployment
            .middleware()
            .has_open_channel("input-sanitiser", "zeb-analyser"));
    }

    #[test]
    fn statistics_declassification_reaches_ward_manager_fig6() {
        let mut scenario = HomeMonitoringScenario::build(1);
        let outcome = scenario.run_statistics_declassification();
        assert!(outcome.is_delivered());
        assert_eq!(scenario.deployment.receive("ward-manager").len(), 1);
        // Provenance shows the statistics derive from both patients' analyses.
        let ancestry = scenario.deployment.provenance().ancestry("monthly-statistics");
        assert!(ancestry.iter().any(|n| n.name == "ann-reading"));
        assert!(ancestry.iter().any(|n| n.name == "zeb-reading"));
    }

    #[test]
    fn emergency_rounds_trigger_response_fig7() {
        let mut scenario = HomeMonitoringScenario::build(7);
        scenario.run_sanitiser_endorsement();
        scenario.workload.emergency_probability = 1.0;
        let outcome = scenario.run(2);
        assert!(outcome.emergencies > 0);
        assert!(outcome.delivered > 0);
        // The emergency doctor was connected and notified.
        assert!(scenario
            .deployment
            .middleware()
            .has_open_channel("ann-analyser", "emergency-doctor"));
        assert!(outcome.notifications > 0);
        assert!(outcome.audit_records > 0);
        let compliance = outcome.compliance.expect("report present");
        assert!(compliance.evidence_intact);
    }

    #[test]
    fn quiet_run_is_compliant() {
        let mut scenario = HomeMonitoringScenario::build(3);
        scenario.run_sanitiser_endorsement();
        scenario.workload.emergency_probability = 0.0;
        let outcome = scenario.run(3);
        assert_eq!(outcome.emergencies, 0);
        let compliance = outcome.compliance.expect("report present");
        assert!(compliance.is_compliant(), "violations: {:?}", compliance.violations);
    }
}
