//! The deployment facade.

use legaliot_audit::{AuditEvent, AuditLog, ProvenanceGraph};
use legaliot_compliance::{ComplianceChecker, ComplianceReport, RegulationSet};
use legaliot_context::{ContextStore, ContextValue, LogicalClock, SubscriptionId, Timestamp};
use legaliot_ifc::{SecurityContext, Tag, TagScope};
use legaliot_iot::Thing;
use legaliot_middleware::{
    AccessRule, DeliveryOutcome, Message, Middleware, MiddlewareError, Operation, Subject,
};
use legaliot_policy::{BreakGlass, PolicyEngine, PolicyEvent, PolicyRule};

/// What happened during one policy-evaluation tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    /// Policy rules that fired.
    pub rules_fired: usize,
    /// Reconfiguration commands issued by the engine.
    pub commands_issued: usize,
    /// Control operations the middleware accepted.
    pub controls_applied: usize,
    /// Control operations the middleware rejected.
    pub controls_rejected: usize,
}

/// A full deployment: clock, context, policy engine, middleware, provenance and
/// compliance, operated together.
#[derive(Debug)]
pub struct Deployment {
    name: String,
    clock: LogicalClock,
    context: ContextStore,
    engine: PolicyEngine,
    middleware: Middleware,
    provenance: ProvenanceGraph,
    breakglass: Vec<BreakGlass>,
    engine_subscription: SubscriptionId,
    /// Component name → region (for residency compliance checks).
    component_regions: Vec<(String, String)>,
    /// Subjects whose consent has been recorded.
    consent_given: Vec<String>,
    /// Authorities notified of breaches.
    notified_authorities: Vec<String>,
}

impl Deployment {
    /// Creates an empty deployment whose policy engine acts under the given authority
    /// name (e.g. `hospital-engine`).
    pub fn new(name: impl Into<String>, engine_authority: impl Into<String>) -> Self {
        let name = name.into();
        let context = ContextStore::new();
        let engine_subscription = context.subscribe();
        Deployment {
            middleware: Middleware::new(format!("{name}-mw")),
            engine: PolicyEngine::new(engine_authority),
            clock: LogicalClock::new(),
            provenance: ProvenanceGraph::new(),
            breakglass: Vec::new(),
            engine_subscription,
            component_regions: Vec::new(),
            consent_given: Vec::new(),
            notified_authorities: Vec::new(),
            context,
            name,
        }
    }

    /// The deployment's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulated clock.
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Advances simulated time by `millis`.
    pub fn advance(&mut self, millis: u64) -> Timestamp {
        self.clock.advance(millis)
    }

    /// The context store.
    pub fn context(&self) -> &ContextStore {
        &self.context
    }

    /// The policy engine.
    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// Mutable access to the policy engine.
    pub fn engine_mut(&mut self) -> &mut PolicyEngine {
        &mut self.engine
    }

    /// The middleware.
    pub fn middleware(&self) -> &Middleware {
        &self.middleware
    }

    /// Mutable access to the middleware (AC rules, schemas, tag registry).
    pub fn middleware_mut(&mut self) -> &mut Middleware {
        &mut self.middleware
    }

    /// The provenance graph accumulated so far.
    pub fn provenance(&self) -> &ProvenanceGraph {
        &self.provenance
    }

    /// Mutable access to the provenance graph (scenarios record derivations directly).
    pub fn provenance_mut(&mut self) -> &mut ProvenanceGraph {
        &mut self.provenance
    }

    /// Registers a thing: converts it to a component, registers it with the middleware,
    /// opens the default AC rules (anyone may send to it; the deployment's policy engine
    /// may reconfigure it), records its region, and raises a `ComponentJoined` event.
    pub fn add_thing(&mut self, thing: &Thing, region: impl Into<String>) {
        let component = thing.to_component();
        let name = component.name().to_string();
        self.middleware.registry_mut().register(component);
        self.middleware
            .access_mut()
            .add_rule(&name, AccessRule::allow(Subject::Anyone, Operation::Send, None));
        let engine_name = self.engine.name().to_string();
        self.middleware.access_mut().add_rule(
            &name,
            AccessRule::allow(Subject::Principal(engine_name), Operation::Reconfigure, None),
        );
        self.component_regions.push((name.clone(), region.into()));
        let now = self.now();
        let snapshot = self.context.snapshot();
        let outcome =
            self.engine.evaluate(&PolicyEvent::ComponentJoined { component: name }, &snapshot, now);
        self.apply_outcome_commands(&outcome.commands);
    }

    /// Records a subject's consent (also published into context for rule conditions).
    pub fn record_consent(&mut self, subject: impl Into<String>) {
        let subject = subject.into();
        let now = self.now();
        self.context.set(format!("{subject}.consent-given"), true, now);
        self.consent_given.push(subject);
    }

    /// Records that a breach notification was delivered to an authority.
    pub fn record_breach_notification(&mut self, authority: impl Into<String>) {
        self.notified_authorities.push(authority.into());
    }

    /// Adds a policy rule to the engine.
    pub fn add_rule(&mut self, rule: PolicyRule) {
        self.engine.add_rule(rule);
    }

    /// Registers a regulation: its obligations are compiled into rules and its required
    /// tags registered under the regulation's authority in the tag registry.
    pub fn add_regulation(&mut self, regulation: &RegulationSet) {
        for tag in regulation.required_tags() {
            // Ignore duplicate registrations: several regulations may govern one tag.
            let _ = self.middleware.tag_registry_mut().register(
                tag.clone(),
                format!("required by {}", regulation.name),
                TagScope::Global,
                false,
                regulation.authority.clone(),
            );
        }
        for rule in regulation.compile() {
            self.engine.add_rule(rule);
        }
    }

    /// Defines a break-glass override.
    pub fn add_breakglass(&mut self, breakglass: BreakGlass) {
        self.breakglass.push(breakglass);
    }

    /// Activates a break-glass override by id with a justification, applying its
    /// emergency actions through the middleware. Returns whether it activated.
    pub fn activate_breakglass(&mut self, id: &str, justification: &str) -> bool {
        let now = self.now();
        let snapshot = self.context.snapshot();
        let engine_name = self.engine.name().to_string();
        let Some(bg) = self.breakglass.iter_mut().find(|b| b.id.as_str() == id) else {
            return false;
        };
        match bg.activate(justification, now) {
            Ok(actions) => {
                let policy_id = bg.id.as_str().to_string();
                self.middleware.audit_record_breakglass(&policy_id, true, justification, now);
                for action in actions {
                    let command = legaliot_policy::ReconfigurationCommand::new(
                        policy_id.clone(),
                        engine_name.clone(),
                        action,
                        now.as_millis(),
                    );
                    self.middleware.apply_command(&command, &snapshot, now);
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Publishes a context value at the current simulated time.
    pub fn set_context(&mut self, key: impl Into<String>, value: impl Into<ContextValue>) {
        let now = self.now();
        self.context.set(key.into(), value, now);
    }

    /// Establishes a channel between two components (subject to AC + IFC).
    ///
    /// # Errors
    ///
    /// Propagates [`MiddlewareError`] for unknown components.
    pub fn connect(&mut self, from: &str, to: &str) -> Result<DeliveryOutcome, MiddlewareError> {
        let snapshot = self.context.snapshot();
        let now = self.now();
        self.middleware.establish_channel(from, to, &snapshot, now)
    }

    /// Sends a message between two components over an established channel.
    ///
    /// # Errors
    ///
    /// Propagates [`MiddlewareError`] for unknown components.
    pub fn send(
        &mut self,
        from: &str,
        to: &str,
        message: Message,
    ) -> Result<DeliveryOutcome, MiddlewareError> {
        let snapshot = self.context.snapshot();
        let now = self.now();
        let outcome = self.middleware.send(from, to, message, &snapshot, now)?;
        // Raise a flow-attempted policy event so obligations such as consent can react.
        let event = PolicyEvent::FlowAttempted {
            from: from.to_string(),
            to: to.to_string(),
            allowed: outcome.is_delivered(),
        };
        let engine_outcome = self.engine.evaluate(&event, &snapshot, now);
        self.apply_outcome_commands(&engine_outcome.commands);
        Ok(outcome)
    }

    /// Drains a component's mailbox.
    pub fn receive(&mut self, component: &str) -> Vec<Message> {
        self.middleware.receive(component)
    }

    /// Runs one policy-evaluation tick: drains context changes since the last tick,
    /// evaluates the engine for each, applies the resulting commands through the
    /// middleware, and expires any break-glass overrides whose time is up.
    pub fn tick(&mut self) -> TickReport {
        let now = self.now();
        let snapshot = self.context.snapshot();
        let changes = self.context.poll(self.engine_subscription);
        let mut events: Vec<PolicyEvent> = changes
            .iter()
            .map(|c| PolicyEvent::ContextChanged { key: c.key.name().to_string() })
            .collect();
        events.push(PolicyEvent::Tick);

        let mut report = TickReport::default();
        for event in &events {
            let outcome = self.engine.evaluate(event, &snapshot, now);
            report.rules_fired += outcome.fired.len();
            report.commands_issued += outcome.commands.len();
            let (applied, rejected) = self.apply_outcome_commands(&outcome.commands);
            report.controls_applied += applied;
            report.controls_rejected += rejected;
        }
        // Expire break-glass overrides.
        let mut expired = Vec::new();
        for b in self.breakglass.iter_mut() {
            if b.tick(now) {
                expired.push(b.id.as_str().to_string());
            }
        }
        for id in expired {
            self.middleware.audit_record_breakglass(&id, false, "expired", now);
        }
        report
    }

    fn apply_outcome_commands(
        &mut self,
        commands: &[legaliot_policy::ReconfigurationCommand],
    ) -> (usize, usize) {
        let snapshot = self.context.snapshot();
        let now = self.now();
        let mut applied = 0;
        let mut rejected = 0;
        for command in commands {
            let outcomes = self.middleware.apply_command(command, &snapshot, now);
            for o in outcomes {
                if o.is_applied() {
                    applied += 1;
                } else {
                    rejected += 1;
                }
            }
        }
        (applied, rejected)
    }

    /// The middleware's audit log.
    pub fn audit(&self) -> &AuditLog {
        self.middleware.audit()
    }

    /// Registers a tag in the global tag registry under the given owner.
    pub fn register_tag(&mut self, tag: Tag, description: &str, owner: &str) {
        let _ = self.middleware.tag_registry_mut().register(
            tag,
            description,
            TagScope::Global,
            false,
            owner,
        );
    }

    /// Records a data derivation in the provenance graph (called by scenario code when
    /// a component processes data).
    pub fn record_derivation(
        &mut self,
        output: &str,
        inputs: &[&str],
        process: &str,
        agent: &str,
        context: SecurityContext,
    ) {
        let now = self.now().as_millis();
        self.provenance.record_derivation(output, inputs, process, agent, context, now);
    }

    /// Runs a compliance check of the given regulation over everything recorded so far.
    pub fn compliance_report(&self, regulation: &RegulationSet) -> ComplianceReport {
        let checker = ComplianceChecker::new(regulation.clone());
        checker.check(
            &[self.middleware.audit()],
            &self.provenance,
            &self.component_regions,
            &self.consent_given,
            &self.notified_authorities,
        )
    }
}

/// Small extension used by [`Deployment`] to record break-glass transitions in the
/// middleware's audit log without exposing the log mutably.
trait BreakGlassAudit {
    fn audit_record_breakglass(
        &mut self,
        policy: &str,
        active: bool,
        justification: &str,
        now: Timestamp,
    );
}

impl BreakGlassAudit for Middleware {
    fn audit_record_breakglass(
        &mut self,
        policy: &str,
        active: bool,
        justification: &str,
        now: Timestamp,
    ) {
        self.record_audit_event(
            AuditEvent::BreakGlass {
                policy: policy.to_string(),
                active,
                justification: justification.to_string(),
            },
            now.as_millis(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_ifc::can_flow;
    use legaliot_iot::{HomeMonitoringWorkload, ThingKind};
    use legaliot_policy::{Action, Condition, PolicyPriority};

    fn basic_deployment() -> Deployment {
        let mut d = Deployment::new("test", "hospital-engine");
        let w = HomeMonitoringWorkload::fig7(1);
        for thing in w.things() {
            d.add_thing(&thing, "eu");
        }
        d
    }

    #[test]
    fn add_things_registers_components_with_regions() {
        let d = basic_deployment();
        assert_eq!(d.middleware().registry().len(), 8);
        assert!(d.middleware().registry().get("ann-sensor").is_some());
        assert_eq!(d.name(), "test");
    }

    #[test]
    fn connect_and_send_respect_ifc() {
        let mut d = basic_deployment();
        assert!(d.connect("ann-sensor", "ann-analyser").unwrap().is_delivered());
        assert!(matches!(
            d.connect("zeb-sensor", "ann-analyser").unwrap(),
            DeliveryOutcome::DeniedByIfc(_)
        ));
        let msg = Message::new("sensor-reading", SecurityContext::public());
        assert!(d.send("ann-sensor", "ann-analyser", msg).unwrap().is_delivered());
        assert_eq!(d.receive("ann-analyser").len(), 1);
        // Audit captured channel attempts and the flow.
        assert!(d.audit().len() >= 3);
    }

    #[test]
    fn emergency_rule_fires_on_tick_and_reconfigures() {
        let mut d = basic_deployment();
        d.add_rule(
            PolicyRule::builder("emergency-response", "hospital-engine")
                .on_context_key("ann.emergency")
                .when(Condition::is_true("ann.emergency"))
                .then(Action::Connect {
                    from: "ann-analyser".into(),
                    to: "emergency-doctor".into(),
                })
                .then(Action::Notify { recipient: "emergency-doctor".into(), message: "go".into() })
                .then(Action::Actuate {
                    component: "ann-sensor".into(),
                    command: "sample-interval=1s".into(),
                })
                .priority(PolicyPriority::EMERGENCY)
                .build(),
        );
        d.advance(1_000);
        d.set_context("ann.emergency", true);
        let report = d.tick();
        assert_eq!(report.rules_fired, 1);
        assert_eq!(report.commands_issued, 3);
        assert_eq!(report.controls_applied, 2); // connect + actuate; notify is not a control
        assert!(d.middleware().has_open_channel("ann-analyser", "emergency-doctor"));
        assert_eq!(d.middleware().notifications().len(), 1);
        assert_eq!(d.middleware().actuations().len(), 1);
        // A second tick with no changes is quiet (the rule is keyed to the context change).
        let quiet = d.tick();
        assert_eq!(quiet.rules_fired, 0);
    }

    #[test]
    fn regulations_compile_into_engine_and_tag_registry() {
        let mut d = basic_deployment();
        let reg = RegulationSet::eu_style_data_protection("ann");
        let before = d.engine().rule_count();
        d.add_regulation(&reg);
        assert!(d.engine().rule_count() > before);
        assert!(d.middleware().tag_registry().contains(&Tag::new("personal")));
    }

    #[test]
    fn compliance_report_over_deployment_audit() {
        let mut d = basic_deployment();
        let reg = RegulationSet::eu_style_data_protection("ann");
        d.add_regulation(&reg);
        d.record_consent("ann");
        d.record_breach_notification("regulator");
        d.connect("ann-sensor", "ann-analyser").unwrap();
        d.send(
            "ann-sensor",
            "ann-analyser",
            Message::new("sensor-reading", SecurityContext::public()),
        )
        .unwrap();
        let report = d.compliance_report(&reg);
        assert!(report.evidence_intact);
        assert!(report.records_examined > 0);
        // The only flows were consented, in-region, non-analytics: compliant.
        assert!(report.is_compliant(), "violations: {:?}", report.violations);
    }

    #[test]
    fn breakglass_activation_applies_emergency_actions() {
        let mut d = basic_deployment();
        d.add_breakglass(
            BreakGlass::new("emergency-access", "hospital-engine", 60_000).with_emergency_action(
                Action::Connect { from: "ann-analyser".into(), to: "emergency-doctor".into() },
            ),
        );
        assert!(!d.activate_breakglass("unknown", "x"));
        assert!(!d.activate_breakglass("emergency-access", "  "));
        assert!(d.activate_breakglass("emergency-access", "cardiac arrest"));
        assert!(d.middleware().has_open_channel("ann-analyser", "emergency-doctor"));
        // Double activation while active fails.
        assert!(!d.activate_breakglass("emergency-access", "again"));
        // After expiry (advance past duration and tick), it can be re-activated.
        d.advance(61_000);
        d.tick();
        assert!(d.activate_breakglass("emergency-access", "second emergency"));
    }

    #[test]
    fn provenance_recording_and_liability() {
        let mut d = basic_deployment();
        let ctx = SecurityContext::from_names(["medical", "ann", "personal"], Vec::<&str>::new());
        d.record_derivation("ann-reading-1", &[], "ann-sensor", "ann", ctx.clone());
        d.record_derivation("ann-analysis-1", &["ann-reading-1"], "ann-analyser", "hospital", ctx);
        assert_eq!(d.provenance().node_count(), 6);
        let liability = ComplianceChecker::liability(d.provenance(), "ann-reading-1");
        assert!(liability.responsible_agents.contains(&"hospital".to_string()));
    }

    #[test]
    fn workload_things_flow_as_in_fig4() {
        let w = HomeMonitoringWorkload::fig7(1);
        let things = w.things();
        let ann_sensor = things.iter().find(|t| t.name == "ann-sensor").unwrap();
        let ward_manager = things.iter().find(|t| t.name == "ward-manager").unwrap();
        assert_eq!(ann_sensor.kind, ThingKind::Sensor);
        // Raw patient data cannot reach the ward manager without declassification.
        assert!(can_flow(&ann_sensor.context, &ward_manager.context).is_denied());
    }
}
