//! # legaliot-core
//!
//! The facade crate: a [`Deployment`] wires together the context store, policy engine,
//! policy-enforcing middleware, audit/provenance and compliance layers built in the
//! sibling crates, realising the feedback loop of Fig. 1 (law → policy → enforcement →
//! audit → compliance demonstration) over the IoT entity model of `legaliot-iot`.
//!
//! The [`scenarios`] module builds the paper's worked example — the medical
//! home-monitoring deployment of §7 (Figs. 4–7) — on top of a `Deployment`; the
//! examples and integration tests at the workspace root drive it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod scenarios;

pub use deployment::{Deployment, TickReport};
pub use scenarios::{HomeMonitoringScenario, ScenarioOutcome};
