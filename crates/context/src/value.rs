//! Typed context attributes and values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The name of a context attribute, e.g. `patient.location`, `nurse.on-shift`,
/// `emergency.active`.
///
/// Keys are dotted paths; the prefix conventionally names the subject and the suffix the
/// attribute, which keeps context for different principals separated in a flat store.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ContextKey(String);

impl ContextKey {
    /// Creates a context key.
    pub fn new(name: impl Into<String>) -> Self {
        ContextKey(name.into())
    }

    /// The full dotted name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// The subject prefix (text before the first `.`), if present.
    pub fn subject(&self) -> Option<&str> {
        self.0.split_once('.').map(|(s, _)| s)
    }

    /// The attribute suffix (text after the first `.`), or the whole name.
    pub fn attribute(&self) -> &str {
        self.0.split_once('.').map(|(_, a)| a).unwrap_or(&self.0)
    }
}

impl fmt::Display for ContextKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ContextKey {
    fn from(value: &str) -> Self {
        ContextKey::new(value)
    }
}

impl From<String> for ContextKey {
    fn from(value: String) -> Self {
        ContextKey::new(value)
    }
}

/// A typed context value.
///
/// The variants cover the kinds of state IoT policy conditions typically reference:
/// booleans (presence, emergency), numbers (heart rate, battery), strings (role, ward),
/// locations and timestamps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ContextValue {
    /// A boolean flag, e.g. `emergency.active`.
    Bool(bool),
    /// An integer quantity, e.g. a heart rate in bpm.
    Integer(i64),
    /// A floating-point quantity, e.g. a temperature.
    Float(f64),
    /// A free-text value, e.g. a ward name or role.
    Text(String),
    /// A geographic position (latitude, longitude in degrees).
    Location {
        /// Latitude in degrees, positive north.
        latitude: f64,
        /// Longitude in degrees, positive east.
        longitude: f64,
    },
    /// A timestamp in milliseconds of simulated time.
    Timestamp(u64),
}

impl ContextValue {
    /// Returns the boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ContextValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as `f64` if numeric (integer, float or timestamp).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            ContextValue::Integer(i) => Some(*i as f64),
            ContextValue::Float(f) => Some(*f),
            ContextValue::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Returns the text value, if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ContextValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `(latitude, longitude)` if this is a `Location`.
    pub fn as_location(&self) -> Option<(f64, f64)> {
        match self {
            ContextValue::Location { latitude, longitude } => Some((*latitude, *longitude)),
            _ => None,
        }
    }
}

impl fmt::Display for ContextValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextValue::Bool(b) => write!(f, "{b}"),
            ContextValue::Integer(i) => write!(f, "{i}"),
            ContextValue::Float(x) => write!(f, "{x}"),
            ContextValue::Text(s) => write!(f, "{s}"),
            ContextValue::Location { latitude, longitude } => {
                write!(f, "({latitude}, {longitude})")
            }
            ContextValue::Timestamp(t) => write!(f, "t={t}"),
        }
    }
}

impl From<bool> for ContextValue {
    fn from(value: bool) -> Self {
        ContextValue::Bool(value)
    }
}

impl From<i64> for ContextValue {
    fn from(value: i64) -> Self {
        ContextValue::Integer(value)
    }
}

impl From<f64> for ContextValue {
    fn from(value: f64) -> Self {
        ContextValue::Float(value)
    }
}

impl From<&str> for ContextValue {
    fn from(value: &str) -> Self {
        ContextValue::Text(value.to_string())
    }
}

impl From<String> for ContextValue {
    fn from(value: String) -> Self {
        ContextValue::Text(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_subject_and_attribute() {
        let k = ContextKey::new("patient.location");
        assert_eq!(k.subject(), Some("patient"));
        assert_eq!(k.attribute(), "location");
        assert_eq!(k.name(), "patient.location");
        let plain = ContextKey::new("emergency");
        assert_eq!(plain.subject(), None);
        assert_eq!(plain.attribute(), "emergency");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(ContextValue::Bool(true).as_bool(), Some(true));
        assert_eq!(ContextValue::Integer(7).as_number(), Some(7.0));
        assert_eq!(ContextValue::Float(1.5).as_number(), Some(1.5));
        assert_eq!(ContextValue::Timestamp(10).as_number(), Some(10.0));
        assert_eq!(ContextValue::Text("ward-3".into()).as_text(), Some("ward-3"));
        assert_eq!(
            ContextValue::Location { latitude: 52.2, longitude: 0.1 }.as_location(),
            Some((52.2, 0.1))
        );
        assert_eq!(ContextValue::Bool(true).as_number(), None);
        assert_eq!(ContextValue::Integer(1).as_bool(), None);
        assert_eq!(ContextValue::Integer(1).as_text(), None);
        assert_eq!(ContextValue::Integer(1).as_location(), None);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(ContextValue::from(true), ContextValue::Bool(true));
        assert_eq!(ContextValue::from(3i64), ContextValue::Integer(3));
        assert_eq!(ContextValue::from(2.5), ContextValue::Float(2.5));
        assert_eq!(ContextValue::from("x"), ContextValue::Text("x".into()));
        assert_eq!(ContextValue::from("x".to_string()), ContextValue::Text("x".into()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ContextValue::Bool(false).to_string(), "false");
        assert_eq!(ContextValue::Integer(4).to_string(), "4");
        assert_eq!(ContextValue::Text("home".into()).to_string(), "home");
        assert_eq!(ContextValue::Timestamp(9).to_string(), "t=9");
        assert_eq!(ContextKey::new("a.b").to_string(), "a.b");
    }

    #[test]
    fn keys_from_str_and_string() {
        let a: ContextKey = "x.y".into();
        let b: ContextKey = String::from("x.y").into();
        assert_eq!(a, b);
    }
}
