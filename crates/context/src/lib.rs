//! # legaliot-context
//!
//! Context representation and management for policy-driven IoT middleware.
//!
//! "Policy is inherently contextual, defined to be enforced in particular
//! circumstances. Therefore, a richer representation of state allows for more granular
//! and expressive policy" (§10.2 of Singh et al., Middleware 2016). This crate provides:
//!
//! * a typed attribute/value model ([`ContextValue`], [`ContextKey`]);
//! * a versioned [`ContextStore`] with change subscriptions, so policy engines can react
//!   to context changes (the trigger for reconfiguration in Fig. 7);
//! * domain models for [`location`] (geographic regions, geo-fencing — used by
//!   residency obligations) and [`time`] (a logical clock and time windows, e.g.
//!   "only during the nurse's shift");
//! * [`provider`]s that feed context from simulated sources (sensors, calendars,
//!   presence detection).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod location;
pub mod provider;
pub mod store;
pub mod time;
pub mod value;

pub use location::{GeoPoint, Region};
pub use provider::{ContextProvider, PresenceProvider, ShiftProvider, StaticProvider};
pub use store::{ContextChange, ContextSnapshot, ContextStore, SubscriptionId};
pub use time::{LogicalClock, TimeWindow, Timestamp};
pub use value::{ContextKey, ContextValue};
