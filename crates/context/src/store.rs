//! The versioned context store with change subscriptions.
//!
//! Policy engines "monitor environments and use the MW's remote-reconfiguration
//! functionality to issue instructions to components, when/where necessary" (§8.1).
//! The store is the piece they monitor: every update produces a [`ContextChange`] with a
//! monotonically increasing version, and subscribers can drain the changes since the
//! last version they processed.

use std::collections::BTreeMap;
use std::fmt;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::time::Timestamp;
use crate::value::{ContextKey, ContextValue};

/// Identifier handed out when subscribing to the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubscriptionId(u64);

/// A single recorded change to the context store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextChange {
    /// Store version after this change was applied (starts at 1).
    pub version: u64,
    /// Simulated time at which the change was recorded.
    pub at: Timestamp,
    /// The key that changed.
    pub key: ContextKey,
    /// The previous value, if any.
    pub previous: Option<ContextValue>,
    /// The new value, or `None` if the key was removed.
    pub current: Option<ContextValue>,
}

impl fmt::Display for ContextChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.current {
            Some(v) => write!(f, "v{}: {} = {}", self.version, self.key, v),
            None => write!(f, "v{}: {} removed", self.version, self.key),
        }
    }
}

/// An immutable snapshot of the store at a particular version, handed to policy
/// condition evaluation so a whole rule set sees a consistent view.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ContextSnapshot {
    version: u64,
    at: Timestamp,
    values: BTreeMap<ContextKey, ContextValue>,
}

impl ContextSnapshot {
    /// The store version this snapshot reflects.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The simulated time of the last change included.
    pub fn taken_at(&self) -> Timestamp {
        self.at
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &ContextKey) -> Option<&ContextValue> {
        self.values.get(key)
    }

    /// Looks up a value by key name.
    pub fn get_name(&self, name: &str) -> Option<&ContextValue> {
        self.values.get(&ContextKey::new(name))
    }

    /// Whether a boolean key is present and true.
    pub fn is_true(&self, name: &str) -> bool {
        self.get_name(name).and_then(ContextValue::as_bool) == Some(true)
    }

    /// Number of keys in the snapshot.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot holds no keys.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over the `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&ContextKey, &ContextValue)> + '_ {
        self.values.iter()
    }

    /// Builds a snapshot directly from key/value pairs (for tests and ad-hoc evaluation).
    pub fn from_pairs<I, K, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<ContextKey>,
        V: Into<ContextValue>,
    {
        ContextSnapshot {
            version: 0,
            at: Timestamp::ZERO,
            values: pairs.into_iter().map(|(k, v)| (k.into(), v.into())).collect(),
        }
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    values: BTreeMap<ContextKey, ContextValue>,
    changes: Vec<ContextChange>,
    version: u64,
    next_subscription: u64,
    /// Last version delivered to each subscriber.
    cursors: BTreeMap<SubscriptionId, u64>,
    /// When `Some(keep)`, compaction trims the change history down to the `keep`
    /// newest entries, but never past a change an active subscriber has not polled.
    retention: Option<usize>,
}

impl StoreInner {
    /// Drops fully-delivered history beyond the retention bound. Changes are
    /// version-sorted, so the droppable region is a prefix: everything every
    /// subscriber has already polled, excluding the `keep` newest entries (kept
    /// so `history()` and snapshot timestamps stay useful for debugging).
    fn compact(&mut self) {
        let Some(keep) = self.retention else { return };
        let keep = keep.max(1);
        let len = self.changes.len();
        if len <= keep {
            return;
        }
        let min_cursor = self.cursors.values().copied().min().unwrap_or(u64::MAX);
        let cut = self.changes[..len - keep].partition_point(|c| c.version <= min_cursor);
        if cut > 0 {
            self.changes.drain(..cut);
        }
    }
}

/// A thread-safe, versioned key/value context store.
///
/// ```
/// use legaliot_context::{ContextStore, ContextValue, Timestamp};
/// let store = ContextStore::new();
/// store.set("emergency.active", true, Timestamp::ZERO);
/// let snap = store.snapshot();
/// assert!(snap.is_true("emergency.active"));
/// ```
#[derive(Debug, Default)]
pub struct ContextStore {
    inner: RwLock<StoreInner>,
}

impl ContextStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store whose change history is compacted down to the
    /// `keep` newest entries (clamped to at least 1 so snapshot timestamps
    /// survive compaction). Compaction never discards a change that an active
    /// subscriber has not yet polled, so [`ContextStore::poll`] still delivers
    /// every change exactly once — but a subscriber that never polls pins the
    /// history and defeats the bound.
    pub fn with_retention(keep: usize) -> Self {
        let store = Self::default();
        store.inner.write().retention = Some(keep);
        store
    }

    /// Reconfigures the retention bound at runtime. `None` restores the default
    /// unbounded history; `Some(keep)` applies the same policy as
    /// [`ContextStore::with_retention`] and compacts immediately.
    pub fn set_retention(&self, retention: Option<usize>) {
        let mut inner = self.inner.write();
        inner.retention = retention;
        inner.compact();
    }

    /// The configured retention bound, if any.
    pub fn retention(&self) -> Option<usize> {
        self.inner.read().retention
    }

    /// Sets a key to a value, recording the change. Returns the new store version.
    pub fn set(
        &self,
        key: impl Into<ContextKey>,
        value: impl Into<ContextValue>,
        at: Timestamp,
    ) -> u64 {
        let key = key.into();
        let value = value.into();
        let mut inner = self.inner.write();
        inner.version += 1;
        let version = inner.version;
        let previous = inner.values.insert(key.clone(), value.clone());
        inner.changes.push(ContextChange { version, at, key, previous, current: Some(value) });
        inner.compact();
        version
    }

    /// Removes a key, recording the change if the key existed. Returns the new version
    /// (unchanged if the key was absent).
    pub fn remove(&self, key: &ContextKey, at: Timestamp) -> u64 {
        let mut inner = self.inner.write();
        if let Some(previous) = inner.values.remove(key) {
            inner.version += 1;
            let version = inner.version;
            inner.changes.push(ContextChange {
                version,
                at,
                key: key.clone(),
                previous: Some(previous),
                current: None,
            });
            inner.compact();
        }
        inner.version
    }

    /// The current value for a key, if any.
    pub fn get(&self, key: &ContextKey) -> Option<ContextValue> {
        self.inner.read().values.get(key).cloned()
    }

    /// The current store version (0 if never written).
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }

    /// Takes a consistent snapshot of the whole store.
    pub fn snapshot(&self) -> ContextSnapshot {
        let inner = self.inner.read();
        ContextSnapshot {
            version: inner.version,
            at: inner.changes.last().map(|c| c.at).unwrap_or(Timestamp::ZERO),
            values: inner.values.clone(),
        }
    }

    /// Takes a snapshot only if the store has moved past `seen_version`, under a
    /// single read-lock acquisition. Hot loops that keep a cached snapshot (e.g. a
    /// dataplane shard's enforcement view) use this to refresh per batch without
    /// cloning the value map when nothing changed.
    pub fn snapshot_if_newer(&self, seen_version: u64) -> Option<ContextSnapshot> {
        let inner = self.inner.read();
        if inner.version == seen_version {
            return None;
        }
        Some(ContextSnapshot {
            version: inner.version,
            at: inner.changes.last().map(|c| c.at).unwrap_or(Timestamp::ZERO),
            values: inner.values.clone(),
        })
    }

    /// Registers a subscriber; its cursor starts at the current version, so it will
    /// only see future changes.
    pub fn subscribe(&self) -> SubscriptionId {
        let mut inner = self.inner.write();
        inner.next_subscription += 1;
        let id = SubscriptionId(inner.next_subscription);
        let version = inner.version;
        inner.cursors.insert(id, version);
        id
    }

    /// Removes a subscriber's cursor. Call when a subscription's owner goes
    /// away: under a retention bound an abandoned cursor pins change-history
    /// compaction forever (compaction never drops past the laggiest cursor).
    /// Polling a removed id afterwards behaves like a fresh cursor at 0, so
    /// only unsubscribe cursors that are truly done.
    pub fn unsubscribe(&self, id: SubscriptionId) {
        let mut inner = self.inner.write();
        inner.cursors.remove(&id);
        inner.compact();
    }

    /// Returns (and consumes) the changes a subscriber has not yet seen.
    pub fn poll(&self, id: SubscriptionId) -> Vec<ContextChange> {
        let mut inner = self.inner.write();
        let cursor = inner.cursors.get(&id).copied().unwrap_or(0);
        let fresh: Vec<ContextChange> =
            inner.changes.iter().filter(|c| c.version > cursor).cloned().collect();
        let newest = inner.version;
        inner.cursors.insert(id, newest);
        inner.compact();
        fresh
    }

    /// The retained change history (for audit and tests). Unbounded by default;
    /// with a retention bound set this is only the compacted tail.
    pub fn history(&self) -> Vec<ContextChange> {
        self.inner.read().changes.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_remove() {
        let store = ContextStore::new();
        assert_eq!(store.version(), 0);
        let v1 = store.set("patient.hr", 72i64, Timestamp(10));
        assert_eq!(v1, 1);
        assert_eq!(store.get(&ContextKey::new("patient.hr")), Some(ContextValue::Integer(72)));
        let v2 = store.remove(&ContextKey::new("patient.hr"), Timestamp(20));
        assert_eq!(v2, 2);
        assert_eq!(store.get(&ContextKey::new("patient.hr")), None);
        // Removing an absent key does not bump the version.
        assert_eq!(store.remove(&ContextKey::new("patient.hr"), Timestamp(30)), 2);
    }

    #[test]
    fn snapshot_is_consistent_and_versioned() {
        let store = ContextStore::new();
        store.set("a", 1i64, Timestamp(1));
        store.set("b", 2i64, Timestamp(2));
        let snap = store.snapshot();
        assert_eq!(snap.version(), 2);
        assert_eq!(snap.taken_at(), Timestamp(2));
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        // Later writes do not affect the snapshot.
        store.set("a", 99i64, Timestamp(3));
        assert_eq!(snap.get_name("a"), Some(&ContextValue::Integer(1)));
    }

    #[test]
    fn snapshot_if_newer_skips_unchanged_versions() {
        let store = ContextStore::new();
        assert!(store.snapshot_if_newer(0).is_none());
        store.set("a", 1i64, Timestamp(1));
        let snap = store.snapshot_if_newer(0).expect("store moved");
        assert_eq!(snap.version(), 1);
        assert!(store.snapshot_if_newer(1).is_none());
        store.set("a", 2i64, Timestamp(2));
        assert_eq!(store.snapshot_if_newer(1).unwrap().version(), 2);
    }

    #[test]
    fn is_true_helper() {
        let snap = ContextSnapshot::from_pairs([("emergency.active", true)]);
        assert!(snap.is_true("emergency.active"));
        assert!(!snap.is_true("missing"));
        let snap2 = ContextSnapshot::from_pairs([("flag", false)]);
        assert!(!snap2.is_true("flag"));
    }

    #[test]
    fn subscription_sees_only_future_changes() {
        let store = ContextStore::new();
        store.set("before", 1i64, Timestamp(1));
        let sub = store.subscribe();
        assert!(store.poll(sub).is_empty());
        store.set("after", 2i64, Timestamp(2));
        store.set("after", 3i64, Timestamp(3));
        let changes = store.poll(sub);
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].key, ContextKey::new("after"));
        assert_eq!(changes[1].previous, Some(ContextValue::Integer(2)));
        // Polling again yields nothing until a new change arrives.
        assert!(store.poll(sub).is_empty());
    }

    #[test]
    fn multiple_subscribers_have_independent_cursors() {
        let store = ContextStore::new();
        let s1 = store.subscribe();
        store.set("x", 1i64, Timestamp(1));
        let s2 = store.subscribe();
        store.set("y", 2i64, Timestamp(2));
        assert_eq!(store.poll(s1).len(), 2);
        assert_eq!(store.poll(s2).len(), 1);
    }

    #[test]
    fn history_records_everything() {
        let store = ContextStore::new();
        store.set("k", 1i64, Timestamp(1));
        store.set("k", 2i64, Timestamp(2));
        store.remove(&ContextKey::new("k"), Timestamp(3));
        let history = store.history();
        assert_eq!(history.len(), 3);
        assert_eq!(history[2].current, None);
        assert!(history[0].to_string().contains("k"));
        assert!(history[2].to_string().contains("removed"));
    }

    #[test]
    fn retention_bounds_history() {
        let store = ContextStore::with_retention(4);
        assert_eq!(store.retention(), Some(4));
        for i in 0..100u64 {
            store.set("k", i as i64, Timestamp(i));
            assert!(store.history().len() <= 4, "history exceeded bound at write {i}");
        }
        // The bound keeps the *newest* entries and the version keeps counting.
        assert_eq!(store.version(), 100);
        let history = store.history();
        assert_eq!(history.len(), 4);
        assert_eq!(history.last().unwrap().version, 100);
        assert_eq!(history.first().unwrap().version, 97);
        // Snapshot timestamps survive compaction.
        assert_eq!(store.snapshot().taken_at(), Timestamp(99));
    }

    #[test]
    fn retention_never_drops_unpolled_changes() {
        let store = ContextStore::with_retention(2);
        let sub = store.subscribe();
        for i in 0..10u64 {
            store.set("k", i as i64, Timestamp(i));
        }
        // The lagging subscriber pins the history: every change is still there.
        let changes = store.poll(sub);
        assert_eq!(changes.len(), 10);
        assert_eq!(changes.first().unwrap().version, 1);
        // Once delivered, the next write compacts back down to the bound.
        store.set("k", 99i64, Timestamp(10));
        assert_eq!(store.poll(sub).len(), 1);
        assert!(store.history().len() <= 2);
    }

    #[test]
    fn set_retention_reconfigures_at_runtime() {
        let store = ContextStore::new();
        for i in 0..8u64 {
            store.set("k", i as i64, Timestamp(i));
        }
        assert_eq!(store.history().len(), 8);
        store.set_retention(Some(3));
        assert_eq!(store.history().len(), 3);
        store.set_retention(None);
        for i in 8..16u64 {
            store.set("k", i as i64, Timestamp(i));
        }
        assert_eq!(store.history().len(), 11);
        // A zero bound is clamped so the newest change always survives.
        store.set_retention(Some(0));
        assert_eq!(store.history().len(), 1);
    }

    #[test]
    fn snapshot_iter_is_sorted() {
        let snap = ContextSnapshot::from_pairs([("b", 1i64), ("a", 2i64)]);
        let keys: Vec<_> = snap.iter().map(|(k, _)| k.name().to_string()).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    proptest! {
        /// The version equals the number of effective changes, and history length matches.
        #[test]
        fn prop_version_counts_changes(keys in proptest::collection::vec("[a-c]", 1..20)) {
            let store = ContextStore::new();
            for (i, k) in keys.iter().enumerate() {
                store.set(k.as_str(), i as i64, Timestamp(i as u64));
            }
            prop_assert_eq!(store.version(), keys.len() as u64);
            prop_assert_eq!(store.history().len(), keys.len());
        }

        /// A subscriber that polls after every write sees every change exactly once, in order.
        #[test]
        fn prop_subscriber_sees_each_change_once(values in proptest::collection::vec(0i64..100, 1..20)) {
            let store = ContextStore::new();
            let sub = store.subscribe();
            let mut seen = Vec::new();
            for (i, v) in values.iter().enumerate() {
                store.set("k", *v, Timestamp(i as u64));
                seen.extend(store.poll(sub));
            }
            prop_assert_eq!(seen.len(), values.len());
            let versions: Vec<u64> = seen.iter().map(|c| c.version).collect();
            let mut sorted = versions.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(versions, sorted);
        }
    }
}
