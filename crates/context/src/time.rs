//! Simulated time: logical clocks, timestamps and time windows.
//!
//! The reproduction runs entirely on simulated time so that scenarios, tests and
//! benchmarks are deterministic. A [`LogicalClock`] is advanced explicitly by the
//! deployment (or by the network simulator); [`TimeWindow`]s express conditions such as
//! "during the nurse's 08:00–16:00 shift" or "release after the embargo ends".

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in milliseconds since the start of the scenario.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The scenario start.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds of simulated time.
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1000)
    }

    /// Milliseconds since scenario start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Adds a duration in milliseconds, saturating on overflow.
    pub fn plus_millis(self, millis: u64) -> Self {
        Timestamp(self.0.saturating_add(millis))
    }

    /// The absolute difference between two timestamps, in milliseconds.
    pub fn abs_diff(self, other: Timestamp) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A monotonically non-decreasing simulated clock shared by a deployment.
///
/// The clock is thread-safe; `advance_to` never moves time backwards.
#[derive(Debug, Default)]
pub struct LogicalClock {
    now_millis: AtomicU64,
}

impl LogicalClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now_millis.load(Ordering::SeqCst))
    }

    /// Advances the clock by `millis`, returning the new time.
    pub fn advance(&self, millis: u64) -> Timestamp {
        let new = self.now_millis.fetch_add(millis, Ordering::SeqCst).saturating_add(millis);
        Timestamp(new)
    }

    /// Moves the clock forward to `target` if `target` is later than now; never moves
    /// time backwards. Returns the clock's time after the call.
    pub fn advance_to(&self, target: Timestamp) -> Timestamp {
        self.now_millis.fetch_max(target.0, Ordering::SeqCst);
        self.now()
    }
}

/// A half-open window of simulated time `[start, end)`.
///
/// Used for shift-based and embargo-style policy conditions (§3 Concern 6: a nurse may
/// access patient data only during their shift; §9.2 Concern 6: secret data becomes
/// public after a period).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Inclusive start of the window.
    pub start: Timestamp,
    /// Exclusive end of the window.
    pub end: Timestamp,
}

impl TimeWindow {
    /// Creates a window; `start` must not be after `end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "time window start must not be after end");
        TimeWindow { start, end }
    }

    /// A window covering all of time.
    pub fn always() -> Self {
        TimeWindow { start: Timestamp::ZERO, end: Timestamp(u64::MAX) }
    }

    /// Whether the window contains `t`.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether this window overlaps another.
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The duration of the window in milliseconds.
    pub fn duration_millis(&self) -> u64 {
        self.end.0 - self.start.0
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(2);
        assert_eq!(t.as_millis(), 2000);
        assert_eq!(t.plus_millis(500), Timestamp(2500));
        assert_eq!(t.abs_diff(Timestamp(1500)), 500);
        assert_eq!(Timestamp(u64::MAX).plus_millis(10), Timestamp(u64::MAX));
    }

    #[test]
    fn clock_is_monotonic() {
        let clock = LogicalClock::new();
        assert_eq!(clock.now(), Timestamp::ZERO);
        assert_eq!(clock.advance(100), Timestamp(100));
        assert_eq!(clock.advance_to(Timestamp(50)), Timestamp(100));
        assert_eq!(clock.advance_to(Timestamp(500)), Timestamp(500));
        assert_eq!(clock.now(), Timestamp(500));
    }

    #[test]
    fn window_contains_and_overlaps() {
        let shift = TimeWindow::new(Timestamp(100), Timestamp(200));
        assert!(shift.contains(Timestamp(100)));
        assert!(shift.contains(Timestamp(199)));
        assert!(!shift.contains(Timestamp(200)));
        assert!(!shift.contains(Timestamp(99)));
        assert_eq!(shift.duration_millis(), 100);

        let other = TimeWindow::new(Timestamp(150), Timestamp(250));
        let disjoint = TimeWindow::new(Timestamp(200), Timestamp(300));
        assert!(shift.overlaps(&other));
        assert!(!shift.overlaps(&disjoint));
        assert!(TimeWindow::always().contains(Timestamp(u64::MAX - 1)));
    }

    #[test]
    #[should_panic(expected = "time window start must not be after end")]
    fn inverted_window_panics() {
        let _ = TimeWindow::new(Timestamp(10), Timestamp(5));
    }

    #[test]
    fn window_display() {
        let w = TimeWindow::new(Timestamp(1), Timestamp(2));
        assert_eq!(w.to_string(), "[1ms, 2ms)");
    }

    proptest! {
        /// Overlap is symmetric and consistent with containment of some point.
        #[test]
        fn prop_overlap_symmetric(a in 0u64..1000, b in 1u64..1000, c in 0u64..1000, d in 1u64..1000) {
            let w1 = TimeWindow::new(Timestamp(a.min(a + b)), Timestamp(a + b));
            let w2 = TimeWindow::new(Timestamp(c.min(c + d)), Timestamp(c + d));
            prop_assert_eq!(w1.overlaps(&w2), w2.overlaps(&w1));
        }

        /// advance never decreases the clock.
        #[test]
        fn prop_clock_monotone(steps in proptest::collection::vec(0u64..1000, 1..20)) {
            let clock = LogicalClock::new();
            let mut last = clock.now();
            for s in steps {
                let now = clock.advance(s);
                prop_assert!(now >= last);
                last = now;
            }
        }
    }
}
