//! Geographic context: points and regions for geo-fencing policies.
//!
//! Location underpins several of the paper's examples: a nurse may access patient data
//! only "when detected in the context of their homes" (§3 Concern 6), and regulation may
//! require that "personal data must not leave the EU" (§9.3 Challenge 1). Regions are
//! modelled as axis-aligned bounding boxes plus named membership, which is sufficient
//! for the policy conditions exercised by the scenarios and keeps the geometry simple.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A geographic point (latitude/longitude in degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north. Valid range −90..=90.
    pub latitude: f64,
    /// Longitude in degrees, positive east. Valid range −180..=180.
    pub longitude: f64,
}

impl GeoPoint {
    /// Creates a point, clamping latitude and longitude into their valid ranges.
    pub fn new(latitude: f64, longitude: f64) -> Self {
        GeoPoint {
            latitude: latitude.clamp(-90.0, 90.0),
            longitude: longitude.clamp(-180.0, 180.0),
        }
    }

    /// Approximate planar distance (in degrees) between two points; adequate for the
    /// containment and proximity checks in the scenarios.
    pub fn planar_distance(&self, other: &GeoPoint) -> f64 {
        let dlat = self.latitude - other.latitude;
        let dlon = self.longitude - other.longitude;
        (dlat * dlat + dlon * dlon).sqrt()
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.latitude, self.longitude)
    }
}

/// A named geographic region: an axis-aligned latitude/longitude box.
///
/// ```
/// use legaliot_context::{GeoPoint, Region};
/// let eu = Region::new("eu", GeoPoint::new(35.0, -10.0), GeoPoint::new(70.0, 30.0));
/// assert!(eu.contains(&GeoPoint::new(52.2, 0.1)));   // Cambridge
/// assert!(!eu.contains(&GeoPoint::new(40.7, -74.0))); // New York
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    name: String,
    south_west: GeoPoint,
    north_east: GeoPoint,
}

impl Region {
    /// Creates a region from its south-west and north-east corners.
    ///
    /// Corners are normalised so that `south_west` is always the minimum corner.
    pub fn new(name: impl Into<String>, a: GeoPoint, b: GeoPoint) -> Self {
        let south_west = GeoPoint::new(a.latitude.min(b.latitude), a.longitude.min(b.longitude));
        let north_east = GeoPoint::new(a.latitude.max(b.latitude), a.longitude.max(b.longitude));
        Region { name: name.into(), south_west, north_east }
    }

    /// The region's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the region contains the given point (inclusive of its boundary).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.latitude >= self.south_west.latitude
            && p.latitude <= self.north_east.latitude
            && p.longitude >= self.south_west.longitude
            && p.longitude <= self.north_east.longitude
    }

    /// Whether this region entirely contains another region.
    pub fn contains_region(&self, other: &Region) -> bool {
        self.contains(&other.south_west) && self.contains(&other.north_east)
    }

    /// A small region around a single point, used for homes/wards in the scenarios.
    pub fn around(name: impl Into<String>, centre: GeoPoint, half_side_degrees: f64) -> Self {
        Region::new(
            name,
            GeoPoint::new(
                centre.latitude - half_side_degrees,
                centre.longitude - half_side_degrees,
            ),
            GeoPoint::new(
                centre.latitude + half_side_degrees,
                centre.longitude + half_side_degrees,
            ),
        )
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} .. {}]", self.name, self.south_west, self.north_east)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_clamping() {
        let p = GeoPoint::new(100.0, -200.0);
        assert_eq!(p.latitude, 90.0);
        assert_eq!(p.longitude, -180.0);
    }

    #[test]
    fn region_contains_points() {
        let eu = Region::new("eu", GeoPoint::new(35.0, -10.0), GeoPoint::new(70.0, 30.0));
        assert!(eu.contains(&GeoPoint::new(52.2, 0.1)));
        assert!(eu.contains(&GeoPoint::new(35.0, -10.0))); // boundary inclusive
        assert!(!eu.contains(&GeoPoint::new(34.9, 0.0)));
        assert_eq!(eu.name(), "eu");
    }

    #[test]
    fn region_normalises_corners() {
        let r = Region::new("r", GeoPoint::new(70.0, 30.0), GeoPoint::new(35.0, -10.0));
        assert!(r.contains(&GeoPoint::new(50.0, 0.0)));
    }

    #[test]
    fn region_containment() {
        let eu = Region::new("eu", GeoPoint::new(35.0, -10.0), GeoPoint::new(70.0, 30.0));
        let uk = Region::new("uk", GeoPoint::new(49.9, -8.6), GeoPoint::new(60.9, 1.8));
        let us = Region::new("us", GeoPoint::new(24.5, -125.0), GeoPoint::new(49.4, -66.9));
        assert!(eu.contains_region(&uk));
        assert!(!eu.contains_region(&us));
    }

    #[test]
    fn around_builds_square() {
        let home = Region::around("ann-home", GeoPoint::new(52.2, 0.12), 0.01);
        assert!(home.contains(&GeoPoint::new(52.205, 0.125)));
        assert!(!home.contains(&GeoPoint::new(52.25, 0.12)));
    }

    #[test]
    fn planar_distance() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(3.0, 4.0);
        assert!((a.planar_distance(&b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn display_forms() {
        let p = GeoPoint::new(1.0, 2.0);
        assert_eq!(p.to_string(), "(1.0000, 2.0000)");
        let r = Region::new("x", p, p);
        assert!(r.to_string().starts_with("x ["));
    }

    proptest! {
        /// Any point used to build a region around it is contained in that region.
        #[test]
        fn prop_around_contains_centre(lat in -80.0f64..80.0, lon in -170.0f64..170.0, half in 0.001f64..5.0) {
            let centre = GeoPoint::new(lat, lon);
            let region = Region::around("r", centre, half);
            prop_assert!(region.contains(&centre));
        }

        /// Region containment is reflexive and antisymmetric on distinct boxes.
        #[test]
        fn prop_region_contains_self(lat in -80.0f64..80.0, lon in -170.0f64..170.0, half in 0.001f64..5.0) {
            let r = Region::around("r", GeoPoint::new(lat, lon), half);
            prop_assert!(r.contains_region(&r));
        }
    }
}
