//! Context providers: simulated sources that feed the context store.
//!
//! In the paper's architecture, context is gathered from the environment (presence
//! detection, shift rosters, device state) and consumed by policy. Providers bridge the
//! two: each provider, when ticked with the current simulated time, contributes a set of
//! key/value pairs to a [`ContextStore`].

use crate::location::{GeoPoint, Region};
use crate::store::ContextStore;
use crate::time::{TimeWindow, Timestamp};
use crate::value::{ContextKey, ContextValue};

/// A source of context values, polled by the deployment on each tick of simulated time.
pub trait ContextProvider: Send {
    /// A short, stable name for the provider (used in audit records).
    fn name(&self) -> &str;

    /// Produces the key/value pairs that should be written into the store at time `now`.
    fn provide(&mut self, now: Timestamp) -> Vec<(ContextKey, ContextValue)>;

    /// Writes this provider's values into `store` at time `now`.
    fn publish_to(&mut self, store: &ContextStore, now: Timestamp) {
        for (k, v) in self.provide(now) {
            store.set(k, v, now);
        }
    }
}

/// A provider that always reports the same fixed values (e.g. static device metadata).
#[derive(Debug, Clone)]
pub struct StaticProvider {
    name: String,
    values: Vec<(ContextKey, ContextValue)>,
}

impl StaticProvider {
    /// Creates a static provider with a name and fixed key/value pairs.
    pub fn new<I, K, V>(name: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<ContextKey>,
        V: Into<ContextValue>,
    {
        StaticProvider {
            name: name.into(),
            values: values.into_iter().map(|(k, v)| (k.into(), v.into())).collect(),
        }
    }
}

impl ContextProvider for StaticProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn provide(&mut self, _now: Timestamp) -> Vec<(ContextKey, ContextValue)> {
        self.values.clone()
    }
}

/// Reports whether a subject (identified by key prefix) is inside a named region,
/// based on a position that scenario code can move around.
///
/// Produces `"<subject>.in-<region>"` = bool and `"<subject>.location"` = the position.
#[derive(Debug, Clone)]
pub struct PresenceProvider {
    name: String,
    subject: String,
    region: Region,
    position: GeoPoint,
}

impl PresenceProvider {
    /// Creates a presence provider for `subject` relative to `region`, starting at
    /// `position`.
    pub fn new(subject: impl Into<String>, region: Region, position: GeoPoint) -> Self {
        let subject = subject.into();
        PresenceProvider { name: format!("presence:{subject}"), subject, region, position }
    }

    /// Moves the subject to a new position (e.g. the nurse arrives at the patient's home).
    pub fn move_to(&mut self, position: GeoPoint) {
        self.position = position;
    }

    /// The key under which presence is reported.
    pub fn presence_key(&self) -> ContextKey {
        ContextKey::new(format!("{}.in-{}", self.subject, self.region.name()))
    }
}

impl ContextProvider for PresenceProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn provide(&mut self, _now: Timestamp) -> Vec<(ContextKey, ContextValue)> {
        vec![
            (self.presence_key(), ContextValue::Bool(self.region.contains(&self.position))),
            (
                ContextKey::new(format!("{}.location", self.subject)),
                ContextValue::Location {
                    latitude: self.position.latitude,
                    longitude: self.position.longitude,
                },
            ),
        ]
    }
}

/// Reports whether a worker is currently on shift, from a set of rostered time windows.
///
/// Produces `"<subject>.on-shift"` = bool.
#[derive(Debug, Clone)]
pub struct ShiftProvider {
    name: String,
    subject: String,
    shifts: Vec<TimeWindow>,
}

impl ShiftProvider {
    /// Creates a shift provider for `subject` with the rostered windows.
    pub fn new(subject: impl Into<String>, shifts: Vec<TimeWindow>) -> Self {
        let subject = subject.into();
        ShiftProvider { name: format!("shift:{subject}"), subject, shifts }
    }

    /// The key under which shift status is reported.
    pub fn shift_key(&self) -> ContextKey {
        ContextKey::new(format!("{}.on-shift", self.subject))
    }
}

impl ContextProvider for ShiftProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn provide(&mut self, now: Timestamp) -> Vec<(ContextKey, ContextValue)> {
        let on_shift = self.shifts.iter().any(|w| w.contains(now));
        vec![(self.shift_key(), ContextValue::Bool(on_shift))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_provider_reports_fixed_values() {
        let mut p = StaticProvider::new("device-meta", [("device.model", "hx-100")]);
        assert_eq!(p.name(), "device-meta");
        let values = p.provide(Timestamp(5));
        assert_eq!(values.len(), 1);
        assert_eq!(values[0].1, ContextValue::Text("hx-100".into()));
        // Ticking again yields the same values.
        assert_eq!(p.provide(Timestamp(6)), values);
    }

    #[test]
    fn presence_provider_tracks_region_membership() {
        let home = Region::around("ann-home", GeoPoint::new(52.2, 0.12), 0.01);
        let mut p = PresenceProvider::new("nurse", home, GeoPoint::new(0.0, 0.0));
        let values = p.provide(Timestamp(0));
        let in_home = values.iter().find(|(k, _)| k == &p.presence_key()).unwrap();
        assert_eq!(in_home.1, ContextValue::Bool(false));

        p.move_to(GeoPoint::new(52.2, 0.12));
        let values = p.provide(Timestamp(1));
        let in_home = values.iter().find(|(k, _)| k == &p.presence_key()).unwrap();
        assert_eq!(in_home.1, ContextValue::Bool(true));
        // Location is also reported.
        assert!(values
            .iter()
            .any(|(k, v)| k.name() == "nurse.location" && v.as_location().is_some()));
    }

    #[test]
    fn shift_provider_uses_time_windows() {
        let mut p =
            ShiftProvider::new("nurse", vec![TimeWindow::new(Timestamp(100), Timestamp(200))]);
        assert_eq!(p.provide(Timestamp(50))[0].1, ContextValue::Bool(false));
        assert_eq!(p.provide(Timestamp(150))[0].1, ContextValue::Bool(true));
        assert_eq!(p.provide(Timestamp(250))[0].1, ContextValue::Bool(false));
        assert_eq!(p.shift_key().name(), "nurse.on-shift");
    }

    #[test]
    fn publish_to_writes_into_store() {
        let store = ContextStore::new();
        let mut p = StaticProvider::new("meta", [("a", 1i64), ("b", 2i64)]);
        p.publish_to(&store, Timestamp(7));
        assert_eq!(store.version(), 2);
        let snap = store.snapshot();
        assert_eq!(snap.get_name("a"), Some(&ContextValue::Integer(1)));
        assert_eq!(snap.taken_at(), Timestamp(7));
    }

    #[test]
    fn providers_are_object_safe() {
        let providers: Vec<Box<dyn ContextProvider>> = vec![
            Box::new(StaticProvider::new("s", [("k", 1i64)])),
            Box::new(ShiftProvider::new("n", vec![])),
        ];
        assert_eq!(providers.len(), 2);
    }
}
