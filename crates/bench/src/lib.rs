//! Benchmark support crate. The Criterion harnesses in `benches/` regenerate the
//! experiments listed in `EXPERIMENTS.md`; this library only hosts shared helpers.

/// Builds a secrecy-only security context with `n` distinct tags, used by the label-size
/// and tag-scale experiments (E3, E14).
pub fn context_with_tags(n: usize) -> legaliot_ifc::SecurityContext {
    legaliot_ifc::SecurityContext::from_names(
        (0..n).map(|i| format!("tag-{i}")),
        Vec::<String>::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builder_sizes() {
        assert_eq!(context_with_tags(0).secrecy().len(), 0);
        assert_eq!(context_with_tags(16).secrecy().len(), 16);
    }
}
