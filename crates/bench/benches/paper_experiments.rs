//! Criterion harnesses for the experiments in EXPERIMENTS.md (E2, E3, E7, E8, E11–E17).
//!
//! The paper is a vision paper with no quantitative tables, so these benchmarks
//! quantify the claims it makes qualitatively: per-flow IFC checks are cheap and scale
//! with label size; kernel-level enforcement overhead vs a no-enforcement baseline is
//! small; policy evaluation scales with rule count; reconfiguration, audit, provenance
//! and compliance checking stay tractable at scenario scale.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use legaliot_audit::{AuditEvent, AuditLog, ProvenanceGraph};
use legaliot_bench::context_with_tags;
use legaliot_compliance::{ComplianceChecker, RegulationSet};
use legaliot_context::{ContextSnapshot, Timestamp};
use legaliot_core::{Deployment, HomeMonitoringScenario};
use legaliot_ifc::{can_flow, SecurityContext};
use legaliot_iot::{Chain, Thing, ThingKind};
use legaliot_kernel::{EnforcementMode, ObjectKind, Os};
use legaliot_middleware::{ControlMessage, Message, ReconfigureOp};
use legaliot_policy::{Action, Condition, PolicyEngine, PolicyEvent, PolicyRule};

fn quick(c: &mut Criterion) -> &mut Criterion {
    c
}

/// E3 / E14 — flow-check latency vs label size (tag-namespace scale).
fn bench_flow_check(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("flow_check");
    for tags in [1usize, 8, 64, 512] {
        let a = context_with_tags(tags);
        let b = context_with_tags(tags);
        group.bench_with_input(BenchmarkId::new("allowed", tags), &tags, |bencher, _| {
            bencher.iter(|| can_flow(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        let smaller = context_with_tags(tags / 2);
        group.bench_with_input(BenchmarkId::new("denied", tags), &tags, |bencher, _| {
            bencher.iter(|| can_flow(std::hint::black_box(&a), std::hint::black_box(&smaller)))
        });
    }
    group.finish();
}

/// E12 — kernel-level enforcement overhead: enforce vs audit-only vs disabled baseline.
fn bench_kernel_overhead(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("kernel_overhead");
    for (label, mode) in [
        ("disabled", EnforcementMode::Disabled),
        ("audit_only", EnforcementMode::AuditOnly),
        ("enforce", EnforcementMode::Enforce),
    ] {
        group.bench_function(label, |bencher| {
            bencher.iter_batched(
                || {
                    let mut os = Os::new("bench", mode);
                    let ctx = SecurityContext::from_names(["medical", "ann"], ["hosp-dev"]);
                    let p = os.spawn("writer", ctx);
                    let f = os.create_object(p, "file", ObjectKind::File).unwrap();
                    (os, p, f)
                },
                |(mut os, p, f)| {
                    for t in 0..64u64 {
                        let _ = os.write(p, f, t);
                        let _ = os.read(p, f, t);
                    }
                    os
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// E7 — policy-engine evaluation latency vs rule count.
fn bench_policy_engine(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("policy_engine");
    for rules in [10usize, 100, 1000] {
        let mut engine = PolicyEngine::new("bench-engine");
        for i in 0..rules {
            engine.add_rule(
                PolicyRule::builder(format!("rule-{i}"), "authority")
                    .on_context_key(format!("key-{}", i % 16))
                    .when(Condition::number_at_least(format!("key-{}", i % 16), 10.0))
                    .then(Action::Notify { recipient: "ops".into(), message: "hit".into() })
                    .build(),
            );
        }
        let snapshot = ContextSnapshot::from_pairs([("key-3", 50i64)]);
        let event = PolicyEvent::ContextChanged { key: "key-3".into() };
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |bencher, _| {
            bencher.iter(|| engine.evaluate(&event, &snapshot, Timestamp::ZERO))
        });
    }
    group.finish();
}

/// E15 — conflict resolution cost with contradictory simultaneous commands.
fn bench_conflict_resolution(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("conflict_resolution");
    for pairs in [4usize, 32, 128] {
        let mut engine = PolicyEngine::new("bench");
        for i in 0..pairs {
            engine.add_rule(
                PolicyRule::builder(format!("allow-{i}"), "a")
                    .on_tick()
                    .then(Action::Connect { from: format!("c{i}"), to: "sink".into() })
                    .build(),
            );
            engine.add_rule(
                PolicyRule::builder(format!("deny-{i}"), "b")
                    .on_tick()
                    .then(Action::Disconnect { from: format!("c{i}"), to: "sink".into() })
                    .build(),
            );
        }
        let snapshot = ContextSnapshot::default();
        group.bench_with_input(BenchmarkId::from_parameter(pairs), &pairs, |bencher, _| {
            bencher.iter(|| engine.evaluate(&PolicyEvent::Tick, &snapshot, Timestamp::ZERO))
        });
    }
    group.finish();
}

/// E16 — audit log append and hash-chain verification throughput.
fn bench_audit(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("audit");
    let ctx = SecurityContext::from_names(["medical"], Vec::<&str>::new());
    let event = || AuditEvent::FlowChecked {
        source: "a".into(),
        destination: "b".into(),
        source_context: ctx.clone(),
        destination_context: ctx.clone(),
        decision: can_flow(&ctx, &ctx),
        data_item: None,
    };
    group.bench_function("append_1000", |bencher| {
        bencher.iter(|| {
            let mut log = AuditLog::new("bench");
            for t in 0..1000u64 {
                log.record(event(), t);
            }
            log
        })
    });
    let mut log = AuditLog::new("bench");
    for t in 0..1000u64 {
        log.record(event(), t);
    }
    group.bench_function("verify_1000", |bencher| bencher.iter(|| log.verify_chain()));
    group.finish();
}

/// E11 — provenance graph construction and taint/ancestry queries.
fn bench_provenance(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("provenance");
    for items in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("build", items), &items, |bencher, _| {
            bencher.iter(|| {
                let mut g = ProvenanceGraph::new();
                for i in 1..items {
                    g.record_derivation(
                        &format!("d{i}"),
                        &[&format!("d{}", i - 1)],
                        &format!("p{}", i % 10),
                        "agent",
                        SecurityContext::public(),
                        i as u64,
                    );
                }
                g
            })
        });
        let mut g = ProvenanceGraph::new();
        for i in 1..items {
            g.record_derivation(
                &format!("d{i}"),
                &[&format!("d{}", i - 1)],
                &format!("p{}", i % 10),
                "agent",
                SecurityContext::public(),
                i as u64,
            );
        }
        group.bench_with_input(BenchmarkId::new("taint", items), &items, |bencher, _| {
            bencher.iter(|| g.taint("d0"))
        });
        group.bench_with_input(BenchmarkId::new("ancestry", items), &items, |bencher, _| {
            bencher.iter(|| g.ancestry(&format!("d{}", items - 1)))
        });
    }
    group.finish();
}

/// E2 — end-to-end chain enforcement vs chain length (Fig. 2).
fn bench_chain_length(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("chain_length");
    for length in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |bencher, _| {
            bencher.iter_batched(
                || {
                    let chain = Chain::synthetic("stage", length);
                    let mut deployment = Deployment::new("bench", "engine");
                    let ctx = SecurityContext::from_names(["pipeline"], Vec::<&str>::new());
                    for stage in &chain.stages {
                        deployment.add_thing(
                            &Thing::new(
                                stage.clone(),
                                ThingKind::CloudService,
                                "op",
                                "node",
                                ctx.clone(),
                            ),
                            "eu",
                        );
                    }
                    for (from, to) in chain.hops() {
                        deployment.connect(&from, &to).unwrap();
                    }
                    (deployment, chain)
                },
                |(mut deployment, chain)| {
                    for (from, to) in chain.hops() {
                        deployment
                            .send(&from, &to, Message::new("item", SecurityContext::public()))
                            .unwrap();
                    }
                    deployment
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// E8 — third-party reconfiguration throughput (control messages per second).
fn bench_reconfiguration(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("reconfiguration");
    group.bench_function("actuate_control_messages", |bencher| {
        bencher.iter_batched(
            || {
                let mut deployment = Deployment::new("bench", "engine");
                for i in 0..16 {
                    deployment.add_thing(
                        &Thing::new(
                            format!("device-{i}"),
                            ThingKind::Actuator,
                            "op",
                            "node",
                            SecurityContext::public(),
                        ),
                        "eu",
                    );
                }
                deployment
            },
            |mut deployment| {
                let snapshot = deployment.context().snapshot();
                let now = deployment.now();
                for i in 0..16 {
                    let cm = ControlMessage::new(
                        format!("device-{i}"),
                        ReconfigureOp::Actuate { command: "sample-interval=1s".into() },
                        "engine",
                        "bench",
                        0,
                    );
                    deployment.middleware_mut().handle_control(&cm, &snapshot, now);
                }
                deployment
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// E7 (latency leg) — emergency reconfiguration latency: context change → channels and
/// actuations applied, as a function of the number of monitored patients.
fn bench_emergency_reconfiguration(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("emergency_reconfiguration");
    group.bench_function("fig7_emergency_tick", |bencher| {
        bencher.iter_batched(
            || {
                let mut scenario = HomeMonitoringScenario::build(1);
                scenario.deployment.set_context("ann.emergency", true);
                scenario
            },
            |mut scenario| {
                scenario.deployment.tick();
                scenario
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// E17 — compliance checking cost over a grown audit trail.
fn bench_compliance(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("compliance_check");
    let mut scenario = HomeMonitoringScenario::build(3);
    scenario.run_sanitiser_endorsement();
    scenario.workload.emergency_probability = 0.1;
    let _ = scenario.run(20);
    let regulation = RegulationSet::eu_style_data_protection("ann");
    group.bench_function("eu_regulation_over_scenario", |bencher| {
        bencher.iter(|| scenario.deployment.compliance_report(&regulation))
    });
    let checker = ComplianceChecker::new(regulation);
    group.bench_function("liability_report", |bencher| {
        bencher.iter(|| {
            ComplianceChecker::liability(scenario.deployment.provenance(), "ann-analysis")
        });
        let _ = &checker;
    });
    group.finish();
}

/// E13 — enforcement points: one middleware-held policy vs the same check duplicated in
/// every component (the silo baseline §5.1 argues against).
fn bench_enforcement_points(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("enforcement_points");
    let components = 32usize;
    let ctx = SecurityContext::from_names(["medical"], Vec::<&str>::new());
    // Middleware path: one shared policy evaluation per flow.
    group.bench_function("middleware_single_pep", |bencher| {
        bencher.iter(|| {
            let mut allowed = 0usize;
            for _ in 0..components {
                if can_flow(&ctx, &ctx).is_allowed() {
                    allowed += 1;
                }
            }
            allowed
        })
    });
    // Silo path: every component re-derives its own copy of the policy before checking
    // (modelled as re-parsing the rule set per component).
    group.bench_function("per_component_silos", |bencher| {
        bencher.iter(|| {
            let mut allowed = 0usize;
            for i in 0..components {
                let mut engine = PolicyEngine::new(format!("silo-{i}"));
                engine.add_rule(
                    PolicyRule::builder("local-allow", "component")
                        .on_flow_attempt(false)
                        .then(Action::AllowFlow { from: "a".into(), to: "b".into() })
                        .build(),
                );
                let outcome = engine.evaluate(
                    &PolicyEvent::FlowAttempted { from: "a".into(), to: "b".into(), allowed: true },
                    &ContextSnapshot::default(),
                    Timestamp::ZERO,
                );
                if !outcome.is_quiescent() && can_flow(&ctx, &ctx).is_allowed() {
                    allowed += 1;
                }
            }
            allowed
        })
    });
    group.finish();
}

/// E1 — a full scenario round (enforcement + audit + policy) as a macro-benchmark.
fn bench_scenario_round(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("scenario");
    group.bench_function("home_monitoring_round", |bencher| {
        bencher.iter_batched(
            || {
                let mut s = HomeMonitoringScenario::build(9);
                s.run_sanitiser_endorsement();
                s
            },
            |mut s| {
                let _ = s.run(1);
                s
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn configured_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured_criterion();
    targets =
        bench_flow_check,
        bench_kernel_overhead,
        bench_policy_engine,
        bench_conflict_resolution,
        bench_audit,
        bench_provenance,
        bench_chain_length,
        bench_reconfiguration,
        bench_emergency_reconfiguration,
        bench_compliance,
        bench_enforcement_points,
        bench_scenario_round,
}
criterion_main!(benches);
