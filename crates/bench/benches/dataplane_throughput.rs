//! Dataplane throughput: ≥1M messages per configuration through the smart-home
//! (Fig. 7) and smart-city topologies, comparing the single-shard uncached baseline
//! (one lattice walk + one full audit record per message, as the synchronous bus does)
//! against the sharded, decision-cached, audit-summarising dataplane.
//!
//! Each sample publishes `MESSAGES_PER_SAMPLE` messages and drains; the reported median
//! divided by `MESSAGES_PER_SAMPLE` is the per-message cost. The companion example
//! (`cargo run --release --example dataplane_throughput`) prints absolute msgs/s and
//! speedups for the same configurations.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use legaliot_context::{ContextSnapshot, Timestamp};
use legaliot_dataplane::{
    smart_city, smart_home, AuditDetail, Dataplane, DataplaneConfig, PayloadMode, Topology,
};
use legaliot_middleware::Message;
use legaliot_obs::ObsConfig;

/// Messages driven per sample; with warm-up plus the default sample count this pushes
/// well over a million messages per configuration through each topology.
const MESSAGES_PER_SAMPLE: u64 = 50_000;

/// In-memory audit retention per shard: engines persist across samples, so the log is
/// bounded (chain-anchored pruning) to keep memory flat for every configuration.
const AUDIT_RETENTION: Option<usize> = Some(65_536);

fn config(label: &str) -> DataplaneConfig {
    // These samples measure the pure enforcement cost, so per-stage telemetry
    // spans are switched off; latency quantiles come from the example harness
    // (`BENCH_dataplane.json`), which runs with telemetry enabled and reports
    // the enabled-vs-disabled throughput delta separately.
    let base = match label {
        "1shard_uncached_full" => DataplaneConfig {
            shards: 1,
            cache_decisions: false,
            audit_detail: AuditDetail::Full,
            audit_batch: 1,
            audit_retention: AUDIT_RETENTION,
            ..DataplaneConfig::default()
        },
        "1shard_cached_summarised" => DataplaneConfig {
            shards: 1,
            cache_decisions: true,
            audit_detail: AuditDetail::Summarised,
            audit_batch: 1024,
            audit_retention: AUDIT_RETENTION,
            ..DataplaneConfig::default()
        },
        "4shard_cached_summarised" => DataplaneConfig {
            shards: 4,
            cache_decisions: true,
            audit_detail: AuditDetail::Summarised,
            audit_batch: 1024,
            audit_retention: AUDIT_RETENTION,
            ..DataplaneConfig::default()
        },
        // Naive payload baseline: deep clone per delivery, map-clone quenching, no
        // decision caches — what a straight port of the bus's send path would do.
        "1shard_payload_clone_uncached" => DataplaneConfig {
            shards: 1,
            payload_mode: PayloadMode::CloneEach,
            cache_decisions: false,
            cache_ac_decisions: false,
            audit_detail: AuditDetail::Summarised,
            audit_batch: 1024,
            audit_retention: AUDIT_RETENTION,
            ..DataplaneConfig::default()
        },
        // Zero-copy payload hot path: frozen message shared across the fan-out,
        // bitmask quenching, AC + IFC decision caches.
        "1shard_payload_zerocopy_cached" => DataplaneConfig {
            shards: 1,
            payload_mode: PayloadMode::ZeroCopy,
            cache_decisions: true,
            cache_ac_decisions: true,
            audit_detail: AuditDetail::Summarised,
            audit_batch: 1024,
            audit_retention: AUDIT_RETENTION,
            ..DataplaneConfig::default()
        },
        "4shard_payload_zerocopy_cached" => DataplaneConfig {
            shards: 4,
            payload_mode: PayloadMode::ZeroCopy,
            cache_decisions: true,
            cache_ac_decisions: true,
            audit_detail: AuditDetail::Summarised,
            audit_batch: 1024,
            audit_retention: AUDIT_RETENTION,
            ..DataplaneConfig::default()
        },
        other => unreachable!("unknown config label {other}"),
    };
    DataplaneConfig { telemetry: ObsConfig::disabled(), ..base }
}

fn installed(topology: &Topology, label: &str) -> Dataplane {
    let dataplane = Dataplane::new(topology.name.clone(), config(label));
    topology
        .install_with_payload_schemas(&dataplane, &ContextSnapshot::default(), Timestamp(1))
        .expect("topology installs");
    dataplane
}

fn drive(dataplane: &Dataplane, publishers: &[String], messages: u64) {
    let mut published = 0u64;
    let mut clock = 2u64;
    'outer: loop {
        for publisher in publishers {
            published += dataplane.publish(publisher, Timestamp(clock)).unwrap() as u64;
            clock += 1;
            if published >= messages {
                break 'outer;
            }
        }
    }
    dataplane.drain();
}

fn drive_payload(dataplane: &Dataplane, pairs: &[(String, Message)], messages: u64) {
    let mut published = 0u64;
    let mut clock = 2u64;
    'outer: loop {
        for (publisher, message) in pairs {
            published +=
                dataplane.publish_message(publisher, message, Timestamp(clock)).unwrap() as u64;
            clock += 1;
            if published >= messages {
                break 'outer;
            }
        }
    }
    dataplane.drain();
}

fn bench_topology(c: &mut Criterion, topology: &Topology) {
    let mut group = c.benchmark_group(format!("dataplane_{}", topology.name));
    let publishers = topology.publishers();
    let pairs = topology.publisher_messages();
    for label in [
        "1shard_uncached_full",
        "1shard_cached_summarised",
        "4shard_cached_summarised",
        "1shard_payload_clone_uncached",
        "1shard_payload_zerocopy_cached",
        "4shard_payload_zerocopy_cached",
    ] {
        // One engine per configuration, reused across samples: worker spawn/join stays
        // out of the measurement and cached configurations run at steady state.
        let dataplane = installed(topology, label);
        let payload = label.contains("payload");
        group.bench_with_input(
            BenchmarkId::new(label, MESSAGES_PER_SAMPLE),
            &MESSAGES_PER_SAMPLE,
            |bencher, &messages| {
                bencher.iter(|| {
                    if payload {
                        drive_payload(&dataplane, &pairs, messages);
                    } else {
                        drive(&dataplane, &publishers, messages);
                    }
                });
            },
        );
        drop(dataplane);
    }
    group.finish();
}

fn bench_smart_home(c: &mut Criterion) {
    bench_topology(c, &smart_home(8, 2016));
}

fn bench_smart_city(c: &mut Criterion) {
    bench_topology(c, &smart_city(4, 8));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(5));
    targets = bench_smart_home, bench_smart_city
}
criterion_main!(benches);
