//! # legaliot-ifc
//!
//! Decentralised Information Flow Control (IFC) primitives, as described in §6 of
//! Singh et al., *Policy-driven middleware for a legally-compliant Internet of Things*
//! (Middleware 2016).
//!
//! The model associates every entity `A` (active — a process, a component — or passive —
//! a file, a message) with a *security context*: a pair of labels `S(A)` (secrecy) and
//! `I(A)` (integrity), each a set of [`Tag`]s. A flow `A → B` is permitted iff
//!
//! ```text
//! S(A) ⊆ S(B)  ∧  I(B) ⊆ I(A)
//! ```
//!
//! i.e. data may only flow towards equally- or more-constrained entities (Bell–LaPadula
//! for secrecy, Biba for integrity). Entities holding *privileges* over tags may change
//! their own labels, acting as **declassifiers** (secrecy) or **endorsers** (integrity) —
//! the trusted gateways between security-context domains of Fig. 3.
//!
//! # Quick example
//!
//! ```
//! use legaliot_ifc::{Label, SecurityContext, can_flow};
//!
//! // Ann's home-monitoring sensor (Fig. 4).
//! let sensor = SecurityContext::new(
//!     Label::from_names(["medical", "ann"]),
//!     Label::from_names(["hosp-dev", "consent"]),
//! );
//! // Ann's hospital-based data analyser.
//! let analyser = SecurityContext::new(
//!     Label::from_names(["medical", "ann"]),
//!     Label::from_names(["hosp-dev", "consent"]),
//! );
//! assert!(can_flow(&sensor, &analyser).is_allowed());
//!
//! // Zeb's sensor must not flow to Ann's analyser.
//! let zeb = SecurityContext::new(
//!     Label::from_names(["medical", "zeb"]),
//!     Label::from_names(["zeb-dev", "consent"]),
//! );
//! assert!(!can_flow(&zeb, &analyser).is_allowed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod creep;
pub mod entity;
pub mod error;
pub mod flow;
pub mod gateway;
pub mod label;
pub mod lattice;
pub mod privilege;
pub mod registry;
pub mod tag;

pub use cache::{context_hash64, str_hash64, CacheStats, DecisionCache, StableHasher};
pub use creep::{CreepAnalysis, CreepReport};
pub use entity::{Entity, EntityId, EntityKind};
pub use error::IfcError;
pub use flow::{can_flow, FlowCheck, FlowDecision, FlowDenialReason};
pub use gateway::{Declassifier, Endorser, Gateway, GatewayKind, Transformation};
pub use label::Label;
pub use lattice::{context_join, context_meet, label_join, label_meet};
pub use privilege::{Privilege, PrivilegeKind, PrivilegeSet, TagOwnership};
pub use registry::{TagRegistry, TagScope};
pub use tag::{SecurityContext, Tag, TagName};
