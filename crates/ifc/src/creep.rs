//! Label-creep analysis.
//!
//! "Generally, building a system with increasing constraints can lead to situations of
//! *label creep*" (§6): as data flows into ever-more-constrained domains, fewer and
//! fewer entities can receive it, until processing stalls unless a declassifier
//! intervenes. This module provides a lightweight static analysis over a set of
//! security contexts and gateways to report where creep occurs and which flows can only
//! be bridged by a gateway.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::flow::can_flow;
use crate::gateway::Gateway;
use crate::tag::SecurityContext;

/// One entry of a [`CreepReport`]: a named context and how reachable it is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreepEntry {
    /// The name of the analysed context (component name).
    pub name: String,
    /// Number of other contexts this one can flow *to* directly.
    pub reachable_direct: usize,
    /// Number of other contexts this one can flow to only through some gateway.
    pub reachable_via_gateway: usize,
    /// Number of other contexts unreachable even via the supplied gateways.
    pub unreachable: usize,
    /// Total number of secrecy tags; large values are the classic symptom of creep.
    pub secrecy_tags: usize,
}

/// The result of a label-creep analysis over a system snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreepReport {
    /// Per-context entries, sorted by name.
    pub entries: Vec<CreepEntry>,
}

impl CreepReport {
    /// Contexts from which fewer than `threshold` other contexts are directly
    /// reachable — candidates for inserting a declassifier.
    pub fn bottlenecks(&self, threshold: usize) -> Vec<&CreepEntry> {
        self.entries.iter().filter(|e| e.reachable_direct < threshold).collect()
    }

    /// The entry with the largest secrecy label, if any.
    pub fn most_constrained(&self) -> Option<&CreepEntry> {
        self.entries.iter().max_by_key(|e| e.secrecy_tags)
    }
}

/// Analyses a set of named security contexts plus available gateways for label creep.
#[derive(Debug, Clone, Default)]
pub struct CreepAnalysis {
    contexts: BTreeMap<String, SecurityContext>,
    gateways: Vec<Gateway>,
}

impl CreepAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named security context (a component of the system under analysis).
    pub fn add_context(&mut self, name: impl Into<String>, ctx: SecurityContext) -> &mut Self {
        self.contexts.insert(name.into(), ctx);
        self
    }

    /// Adds an available gateway (declassifier/endorser).
    pub fn add_gateway(&mut self, gateway: Gateway) -> &mut Self {
        self.gateways.push(gateway);
        self
    }

    /// Runs the analysis, producing a [`CreepReport`].
    pub fn analyse(&self) -> CreepReport {
        let mut entries = Vec::with_capacity(self.contexts.len());
        for (name, ctx) in &self.contexts {
            let mut direct = 0;
            let mut via_gateway = 0;
            let mut unreachable = 0;
            for (other_name, other) in &self.contexts {
                if other_name == name {
                    continue;
                }
                if can_flow(ctx, other).is_allowed() {
                    direct += 1;
                } else if self.gateways.iter().any(|g| g.bridges(ctx, other)) {
                    via_gateway += 1;
                } else {
                    unreachable += 1;
                }
            }
            entries.push(CreepEntry {
                name: name.clone(),
                reachable_direct: direct,
                reachable_via_gateway: via_gateway,
                unreachable,
                secrecy_tags: ctx.secrecy().len(),
            });
        }
        CreepReport { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::Entity;
    use crate::gateway::Transformation;
    use crate::privilege::PrivilegeKind;

    fn ctx(s: &[&str], i: &[&str]) -> SecurityContext {
        SecurityContext::from_names(s.iter().copied(), i.iter().copied())
    }

    fn anonymiser() -> Gateway {
        let input = ctx(&["medical", "ann"], &[]);
        let mut e = Entity::active("anonymiser", input);
        e.privileges_mut().grant("medical", PrivilegeKind::SecrecyRemove);
        e.privileges_mut().grant("ann", PrivilegeKind::SecrecyRemove);
        let t =
            Transformation::named("anonymise").removing_secrecy("medical").removing_secrecy("ann");
        let output = ctx(&[], &[]);
        Gateway::new(e, t, output).unwrap()
    }

    #[test]
    fn detects_unreachable_and_gateway_bridged_flows() {
        let mut a = CreepAnalysis::new();
        a.add_context("sensor", ctx(&["medical", "ann"], &[]));
        a.add_context("analyser", ctx(&["medical", "ann"], &[]));
        a.add_context("public-dashboard", ctx(&[], &[]));
        let report = a.analyse();
        let sensor = report.entries.iter().find(|e| e.name == "sensor").unwrap();
        // Without a gateway, the dashboard is unreachable from the sensor.
        assert_eq!(sensor.reachable_direct, 1);
        assert_eq!(sensor.unreachable, 1);

        a.add_gateway(anonymiser());
        let report = a.analyse();
        let sensor = report.entries.iter().find(|e| e.name == "sensor").unwrap();
        assert_eq!(sensor.reachable_via_gateway, 1);
        assert_eq!(sensor.unreachable, 0);
    }

    #[test]
    fn bottlenecks_and_most_constrained() {
        let mut a = CreepAnalysis::new();
        a.add_context("deep", ctx(&["s1", "s2", "s3"], &[]));
        a.add_context("mid", ctx(&["s1"], &[]));
        a.add_context("open", ctx(&[], &[]));
        let report = a.analyse();
        let most = report.most_constrained().unwrap();
        assert_eq!(most.name, "deep");
        assert_eq!(most.secrecy_tags, 3);
        // `deep` cannot flow anywhere: it is a bottleneck at threshold 1.
        let bn = report.bottlenecks(1);
        assert_eq!(bn.len(), 1);
        assert_eq!(bn[0].name, "deep");
    }

    #[test]
    fn empty_analysis() {
        let report = CreepAnalysis::new().analyse();
        assert!(report.entries.is_empty());
        assert!(report.most_constrained().is_none());
        assert!(report.bottlenecks(10).is_empty());
    }

    #[test]
    fn monotone_constraint_chain_shows_creep() {
        // Fig. 3's increasingly constrained chain: s1 → s1,s2 → s1,s2,s3.
        let mut a = CreepAnalysis::new();
        a.add_context("d1", ctx(&["s1"], &[]));
        a.add_context("d2", ctx(&["s1", "s2"], &[]));
        a.add_context("d3", ctx(&["s1", "s2", "s3"], &[]));
        let report = a.analyse();
        let d1 = report.entries.iter().find(|e| e.name == "d1").unwrap();
        let d3 = report.entries.iter().find(|e| e.name == "d3").unwrap();
        assert_eq!(d1.reachable_direct, 2); // can reach d2 and d3
        assert_eq!(d3.reachable_direct, 0); // terminal domain: creep
    }
}
