//! Error types for IFC operations.

use std::fmt;

use crate::flow::FlowDenialReason;
use crate::tag::Tag;

/// Errors raised by IFC label, privilege and gateway operations.
///
/// Flow *denials* are not errors: they are the normal output of a flow check and are
/// represented by [`crate::FlowDecision::Denied`]. `IfcError` covers misuse of the API
/// (e.g. attempting a label change without holding the corresponding privilege).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IfcError {
    /// An entity attempted to add a tag to a label without holding the `add` privilege.
    MissingAddPrivilege {
        /// The tag the entity attempted to add.
        tag: Tag,
        /// Whether the attempt targeted the secrecy label (`true`) or integrity label.
        secrecy: bool,
    },
    /// An entity attempted to remove a tag from a label without holding the `remove`
    /// privilege.
    MissingRemovePrivilege {
        /// The tag the entity attempted to remove.
        tag: Tag,
        /// Whether the attempt targeted the secrecy label (`true`) or integrity label.
        secrecy: bool,
    },
    /// A privilege delegation was attempted by an entity that does not own the tag.
    NotTagOwner {
        /// The tag whose ownership was required.
        tag: Tag,
    },
    /// A flow was attempted but denied; carries the structured denial reason.
    FlowDenied {
        /// Why the flow was denied.
        reason: FlowDenialReason,
    },
    /// A tag name was rejected by the registry (empty, malformed or clashing).
    InvalidTagName {
        /// The offending name.
        name: String,
        /// Human-readable detail.
        detail: String,
    },
    /// An unknown entity was referenced.
    UnknownEntity {
        /// The textual id of the missing entity.
        id: String,
    },
    /// A gateway was asked to perform a transformation it is not privileged for.
    GatewayNotPrivileged {
        /// Name of the gateway.
        gateway: String,
        /// Detail of the missing privilege.
        detail: String,
    },
}

impl fmt::Display for IfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IfcError::MissingAddPrivilege { tag, secrecy } => write!(
                f,
                "missing privilege to add tag `{tag}` to the {} label",
                if *secrecy { "secrecy" } else { "integrity" }
            ),
            IfcError::MissingRemovePrivilege { tag, secrecy } => write!(
                f,
                "missing privilege to remove tag `{tag}` from the {} label",
                if *secrecy { "secrecy" } else { "integrity" }
            ),
            IfcError::NotTagOwner { tag } => {
                write!(f, "entity does not own tag `{tag}` and cannot delegate it")
            }
            IfcError::FlowDenied { reason } => write!(f, "flow denied: {reason}"),
            IfcError::InvalidTagName { name, detail } => {
                write!(f, "invalid tag name `{name}`: {detail}")
            }
            IfcError::UnknownEntity { id } => write!(f, "unknown entity `{id}`"),
            IfcError::GatewayNotPrivileged { gateway, detail } => {
                write!(f, "gateway `{gateway}` lacks privilege: {detail}")
            }
        }
    }
}

impl std::error::Error for IfcError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Tag;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = IfcError::MissingAddPrivilege { tag: Tag::new("medical"), secrecy: true };
        let s = err.to_string();
        assert!(s.contains("medical"));
        assert!(s.contains("secrecy"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IfcError>();
    }

    #[test]
    fn not_tag_owner_display() {
        let err = IfcError::NotTagOwner { tag: Tag::new("consent") };
        assert!(err.to_string().contains("consent"));
    }

    #[test]
    fn unknown_entity_display() {
        let err = IfcError::UnknownEntity { id: "e-42".into() };
        assert!(err.to_string().contains("e-42"));
    }
}
