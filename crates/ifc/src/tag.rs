//! Tags and security contexts.
//!
//! A [`Tag`] names a single security concern (e.g. `medical`, `ann`, `consent`,
//! `hosp-dev`, `eu-only`). Tags carry no ordering themselves; constraint comes from set
//! inclusion between the labels that contain them (see [`crate::label::Label`]).
//!
//! A [`SecurityContext`] is the pair of labels `(S, I)` attached to an entity — the
//! paper calls the set of entities sharing the same pair a *security context domain*.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::label::Label;

/// The textual name of a tag.
///
/// Names are non-empty, use lower-case `kebab-case` by convention, and may be
/// namespaced with `:` separators (e.g. `nhs:medical`, `eu:data-residency`) to support
/// the global tag namespace of §9.3 Challenge 1.
pub type TagName = str;

/// A single security concern, e.g. `medical` (secrecy) or `sanitised` (integrity).
///
/// `Tag` is cheap to clone (the name is reference-counted) and is ordered and hashable
/// so that labels can be kept as sorted sets with deterministic iteration order.
///
/// ```
/// use legaliot_ifc::Tag;
/// let medical = Tag::new("medical");
/// assert_eq!(medical.name(), "medical");
/// assert_eq!(medical.to_string(), "medical");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Tag {
    name: Arc<str>,
}

impl Tag {
    /// Creates a tag with the given name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty. Use [`Tag::try_new`] for fallible construction.
    pub fn new(name: impl AsRef<TagName>) -> Self {
        Self::try_new(name).expect("tag name must not be empty")
    }

    /// Creates a tag, returning `None` if the name is empty or all-whitespace.
    pub fn try_new(name: impl AsRef<TagName>) -> Option<Self> {
        let name = name.as_ref().trim();
        if name.is_empty() {
            return None;
        }
        Some(Self { name: Arc::from(name) })
    }

    /// Creates a namespaced tag `namespace:name`, the form recommended for the global
    /// tag namespace (§9.3 Challenge 1).
    pub fn namespaced(namespace: impl AsRef<TagName>, name: impl AsRef<TagName>) -> Self {
        Tag::new(format!("{}:{}", namespace.as_ref(), name.as_ref()))
    }

    /// The full name of this tag.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The namespace part of the tag name, if the name contains a `:` separator.
    ///
    /// ```
    /// use legaliot_ifc::Tag;
    /// assert_eq!(Tag::new("nhs:medical").namespace(), Some("nhs"));
    /// assert_eq!(Tag::new("medical").namespace(), None);
    /// ```
    pub fn namespace(&self) -> Option<&str> {
        self.name.rsplit_once(':').map(|(ns, _)| ns)
    }

    /// The local (non-namespace) part of the tag name.
    pub fn local_name(&self) -> &str {
        self.name.rsplit_once(':').map(|(_, n)| n).unwrap_or(&self.name)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tag({})", self.name)
    }
}

impl From<&str> for Tag {
    fn from(value: &str) -> Self {
        Tag::new(value)
    }
}

impl From<String> for Tag {
    fn from(value: String) -> Self {
        Tag::new(value)
    }
}

impl Borrow<str> for Tag {
    fn borrow(&self) -> &str {
        &self.name
    }
}

impl AsRef<str> for Tag {
    fn as_ref(&self) -> &str {
        &self.name
    }
}

/// The security context of an entity: its secrecy label `S` and integrity label `I`.
///
/// Two entities with equal security contexts belong to the same *security context
/// domain*; data may flow freely within a domain and only towards more-constrained
/// domains (see [`crate::flow::can_flow`]).
///
/// ```
/// use legaliot_ifc::{Label, SecurityContext};
/// let ctx = SecurityContext::new(
///     Label::from_names(["medical", "ann"]),
///     Label::from_names(["hosp-dev"]),
/// );
/// assert!(ctx.secrecy().contains_name("medical"));
/// assert!(ctx.integrity().contains_name("hosp-dev"));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SecurityContext {
    secrecy: Label,
    integrity: Label,
}

impl SecurityContext {
    /// Creates a security context from a secrecy and an integrity label.
    pub fn new(secrecy: Label, integrity: Label) -> Self {
        Self { secrecy, integrity }
    }

    /// The public context: both labels empty. Unlabelled data may flow anywhere that
    /// imposes no integrity requirement.
    pub fn public() -> Self {
        Self::default()
    }

    /// Convenience constructor from iterators of tag names.
    ///
    /// ```
    /// use legaliot_ifc::SecurityContext;
    /// let ctx = SecurityContext::from_names(["medical"], ["consent"]);
    /// assert_eq!(ctx.secrecy().len(), 1);
    /// ```
    pub fn from_names<S, I, T, U>(secrecy: S, integrity: I) -> Self
    where
        S: IntoIterator<Item = T>,
        I: IntoIterator<Item = U>,
        T: AsRef<TagName>,
        U: AsRef<TagName>,
    {
        Self::new(Label::from_names(secrecy), Label::from_names(integrity))
    }

    /// The secrecy label `S`.
    pub fn secrecy(&self) -> &Label {
        &self.secrecy
    }

    /// The integrity label `I`.
    pub fn integrity(&self) -> &Label {
        &self.integrity
    }

    /// Mutable access to the secrecy label.
    ///
    /// Label changes on live entities should normally go through
    /// [`crate::entity::Entity::add_secrecy_tag`] and friends, which check privileges;
    /// this accessor exists for construction and for trusted infrastructure code.
    pub fn secrecy_mut(&mut self) -> &mut Label {
        &mut self.secrecy
    }

    /// Mutable access to the integrity label. See [`Self::secrecy_mut`].
    pub fn integrity_mut(&mut self) -> &mut Label {
        &mut self.integrity
    }

    /// Whether both labels are empty (the public context).
    pub fn is_public(&self) -> bool {
        self.secrecy.is_empty() && self.integrity.is_empty()
    }

    /// Total number of tags across both labels.
    pub fn len(&self) -> usize {
        self.secrecy.len() + self.integrity.len()
    }

    /// Whether the context carries no tags at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `self` and `other` denote the same security context domain.
    pub fn same_domain(&self, other: &SecurityContext) -> bool {
        self == other
    }

    /// A stable 64-bit hash of this context (see [`crate::cache::context_hash64`]):
    /// deterministic across runs and processes, order-independent over the tag sets,
    /// suitable for keying flow-decision caches.
    pub fn stable_hash(&self) -> u64 {
        crate::cache::context_hash64(self)
    }
}

impl fmt::Display for SecurityContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S={} I={}", self.secrecy, self.integrity)
    }
}

impl fmt::Debug for SecurityContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecurityContext {{ {self} }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_construction_and_accessors() {
        let t = Tag::new("medical");
        assert_eq!(t.name(), "medical");
        assert_eq!(t.local_name(), "medical");
        assert_eq!(t.namespace(), None);
    }

    #[test]
    fn tag_trims_whitespace() {
        let t = Tag::new("  medical  ");
        assert_eq!(t.name(), "medical");
    }

    #[test]
    fn empty_tag_rejected() {
        assert!(Tag::try_new("").is_none());
        assert!(Tag::try_new("   ").is_none());
    }

    #[test]
    #[should_panic(expected = "tag name must not be empty")]
    fn empty_tag_panics_with_new() {
        let _ = Tag::new("");
    }

    #[test]
    fn namespaced_tags() {
        let t = Tag::namespaced("nhs", "medical");
        assert_eq!(t.name(), "nhs:medical");
        assert_eq!(t.namespace(), Some("nhs"));
        assert_eq!(t.local_name(), "medical");
    }

    #[test]
    fn nested_namespace_uses_last_separator() {
        let t = Tag::new("eu:uk:nhs");
        assert_eq!(t.namespace(), Some("eu:uk"));
        assert_eq!(t.local_name(), "nhs");
    }

    #[test]
    fn tags_order_deterministically() {
        let mut v = [Tag::new("zeb"), Tag::new("ann"), Tag::new("medical")];
        v.sort();
        let names: Vec<_> = v.iter().map(Tag::name).collect();
        assert_eq!(names, vec!["ann", "medical", "zeb"]);
    }

    #[test]
    fn tag_equality_is_by_name() {
        assert_eq!(Tag::new("medical"), Tag::new("medical"));
        assert_ne!(Tag::new("medical"), Tag::new("stats"));
    }

    #[test]
    fn tag_display_round_trip() {
        let t = Tag::new("nhs:medical");
        assert_eq!(Tag::new(format!("{t}")), t);
    }

    #[test]
    fn security_context_display() {
        let ctx = SecurityContext::from_names(["medical", "ann"], ["consent"]);
        let s = ctx.to_string();
        assert!(s.contains("medical"));
        assert!(s.contains("consent"));
        assert!(s.starts_with("S="));
    }

    #[test]
    fn public_context_is_empty() {
        let ctx = SecurityContext::public();
        assert!(ctx.is_public());
        assert!(ctx.is_empty());
        assert_eq!(ctx.len(), 0);
    }

    #[test]
    fn same_domain_requires_equal_pairs() {
        let a = SecurityContext::from_names(["medical"], ["consent"]);
        let b = SecurityContext::from_names(["medical"], ["consent"]);
        let c = SecurityContext::from_names(["medical"], Vec::<&str>::new());
        assert!(a.same_domain(&b));
        assert!(!a.same_domain(&c));
    }

    #[test]
    fn context_len_counts_both_labels() {
        let ctx = SecurityContext::from_names(["a", "b"], ["c"]);
        assert_eq!(ctx.len(), 3);
        assert!(!ctx.is_empty());
    }

    /// `Tag`, `Label` and `SecurityContext` all implement `Hash` consistently with
    /// `Eq`, so callers (e.g. the dataplane's decision cache and shard router) can use
    /// them directly as `HashMap` keys.
    #[test]
    fn tag_label_and_context_are_hashmap_keys() {
        use crate::label::Label;
        use std::collections::HashMap;

        let mut by_tag: HashMap<Tag, u32> = HashMap::new();
        by_tag.insert(Tag::new("medical"), 1);
        assert_eq!(by_tag.get(&Tag::new("medical")), Some(&1));

        let mut by_label: HashMap<Label, u32> = HashMap::new();
        by_label.insert(Label::from_names(["medical", "ann"]), 2);
        assert_eq!(by_label.get(&Label::from_names(["ann", "medical"])), Some(&2));

        let mut by_context: HashMap<SecurityContext, u32> = HashMap::new();
        by_context.insert(SecurityContext::from_names(["medical"], ["consent"]), 3);
        assert_eq!(
            by_context.get(&SecurityContext::from_names(["medical"], ["consent"])),
            Some(&3)
        );
        assert_eq!(by_context.get(&SecurityContext::public()), None);
    }
}
