//! Lattice operations over labels and security contexts.
//!
//! Secrecy and integrity order dually: for a flow `A → B`, secrecy may only *grow*
//! (`S(A) ⊆ S(B)`) while integrity may only *shrink* (`I(B) ⊆ I(A)`). The join of two
//! security contexts — the least restrictive context that both may flow into — therefore
//! takes the union of secrecy labels and the intersection of integrity labels. This is
//! the label computed for data derived from multiple sources (§3 Concern 5, data
//! amalgamation) and is what the statistics generator of Fig. 6 starts from.

use crate::label::Label;
use crate::tag::SecurityContext;

/// The join (least upper bound) of two secrecy-ordered labels: set union.
pub fn label_join(a: &Label, b: &Label) -> Label {
    a.union(b)
}

/// The meet (greatest lower bound) of two secrecy-ordered labels: set intersection.
pub fn label_meet(a: &Label, b: &Label) -> Label {
    a.intersection(b)
}

/// The join of two security contexts in the flow order: the least-constrained context
/// that both `a` and `b` may flow into.
///
/// `S = S(a) ∪ S(b)`, `I = I(a) ∩ I(b)`. Data derived from two sources must carry this
/// context (or one even more constrained).
///
/// ```
/// use legaliot_ifc::{SecurityContext, context_join, can_flow};
/// let ann = SecurityContext::from_names(["medical", "ann"], ["hosp-dev", "consent"]);
/// let zeb = SecurityContext::from_names(["medical", "zeb"], ["zeb-dev", "consent"]);
/// let combined = context_join(&ann, &zeb);
/// assert!(can_flow(&ann, &combined).is_allowed());
/// assert!(can_flow(&zeb, &combined).is_allowed());
/// assert!(combined.integrity().contains_name("consent"));
/// assert!(!combined.integrity().contains_name("hosp-dev"));
/// ```
pub fn context_join(a: &SecurityContext, b: &SecurityContext) -> SecurityContext {
    SecurityContext::new(a.secrecy().union(b.secrecy()), a.integrity().intersection(b.integrity()))
}

/// The meet of two security contexts in the flow order: the most-constrained context
/// that may flow into both `a` and `b`.
///
/// `S = S(a) ∩ S(b)`, `I = I(a) ∪ I(b)`.
pub fn context_meet(a: &SecurityContext, b: &SecurityContext) -> SecurityContext {
    SecurityContext::new(a.secrecy().intersection(b.secrecy()), a.integrity().union(b.integrity()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::can_flow;
    use proptest::prelude::*;

    fn ctx(s: &[&str], i: &[&str]) -> SecurityContext {
        SecurityContext::from_names(s.iter().copied(), i.iter().copied())
    }

    #[test]
    fn join_combines_sources() {
        let ann = ctx(&["medical", "ann"], &["hosp-dev", "consent"]);
        let zeb = ctx(&["medical", "zeb"], &["zeb-dev", "consent"]);
        let j = context_join(&ann, &zeb);
        assert_eq!(j.secrecy(), &Label::from_names(["medical", "ann", "zeb"]));
        assert_eq!(j.integrity(), &Label::from_names(["consent"]));
    }

    #[test]
    fn meet_is_dual() {
        let a = ctx(&["x", "y"], &["p"]);
        let b = ctx(&["y", "z"], &["q"]);
        let m = context_meet(&a, &b);
        assert_eq!(m.secrecy(), &Label::from_names(["y"]));
        assert_eq!(m.integrity(), &Label::from_names(["p", "q"]));
    }

    #[test]
    fn label_join_meet_are_union_intersection() {
        let a = Label::from_names(["a", "b"]);
        let b = Label::from_names(["b", "c"]);
        assert_eq!(label_join(&a, &b), Label::from_names(["a", "b", "c"]));
        assert_eq!(label_meet(&a, &b), Label::from_names(["b"]));
    }

    fn arb_ctx() -> impl Strategy<Value = SecurityContext> {
        let label =
            || proptest::collection::btree_set("[a-d]{1,2}", 0..4).prop_map(Label::from_names);
        (label(), label()).prop_map(|(s, i)| SecurityContext::new(s, i))
    }

    proptest! {
        /// Both inputs may flow into their join; the join may flow into both via the meet dual.
        #[test]
        fn prop_join_is_upper_bound(a in arb_ctx(), b in arb_ctx()) {
            let j = context_join(&a, &b);
            prop_assert!(can_flow(&a, &j).is_allowed());
            prop_assert!(can_flow(&b, &j).is_allowed());
        }

        /// The meet may flow into both inputs.
        #[test]
        fn prop_meet_is_lower_bound(a in arb_ctx(), b in arb_ctx()) {
            let m = context_meet(&a, &b);
            prop_assert!(can_flow(&m, &a).is_allowed());
            prop_assert!(can_flow(&m, &b).is_allowed());
        }

        /// The join is the *least* upper bound: it can flow into any other upper bound.
        #[test]
        fn prop_join_is_least(a in arb_ctx(), b in arb_ctx(), c in arb_ctx()) {
            if can_flow(&a, &c).is_allowed() && can_flow(&b, &c).is_allowed() {
                let j = context_join(&a, &b);
                prop_assert!(can_flow(&j, &c).is_allowed());
            }
        }

        /// Join and meet are idempotent, commutative and associative on contexts.
        #[test]
        fn prop_context_lattice_laws(a in arb_ctx(), b in arb_ctx(), c in arb_ctx()) {
            prop_assert_eq!(context_join(&a, &a), a.clone());
            prop_assert_eq!(context_meet(&a, &a), a.clone());
            prop_assert_eq!(context_join(&a, &b), context_join(&b, &a));
            prop_assert_eq!(context_meet(&a, &b), context_meet(&b, &a));
            prop_assert_eq!(
                context_join(&context_join(&a, &b), &c),
                context_join(&a, &context_join(&b, &c))
            );
            prop_assert_eq!(
                context_meet(&context_meet(&a, &b), &c),
                context_meet(&a, &context_meet(&b, &c))
            );
        }

        /// Both sources may always flow into their join — the law the data-amalgamation
        /// label (§3 Concern 5) and the dataplane's cached fan-in decisions rely on.
        #[test]
        fn prop_can_flow_into_join(a in arb_ctx(), b in arb_ctx()) {
            let j = context_join(&a, &b);
            prop_assert!(can_flow(&a, &j).is_allowed());
            prop_assert!(can_flow(&b, &j).is_allowed());
        }

        /// Join and meet absorb each other on contexts, completing the lattice laws.
        #[test]
        fn prop_context_absorption(a in arb_ctx(), b in arb_ctx()) {
            prop_assert_eq!(context_join(&a, &context_meet(&a, &b)), a.clone());
            prop_assert_eq!(context_meet(&a, &context_join(&a, &b)), a.clone());
        }
    }
}
