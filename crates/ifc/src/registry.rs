//! A global tag registry: the paper's Challenge 1 (global policy representation).
//!
//! "For security policy to apply at scale, throughout the IoT, there is a need for a
//! global policy representation, including tag and privilege descriptions" (§9.3). The
//! registry provides a DNS-like, namespace-scoped catalogue of tags: who owns a tag,
//! what it means, whether it is globally applicable or scoped to an application or
//! administrative domain, and whether its very *existence* is sensitive (Challenge 2
//! notes tags themselves may reveal, e.g., a medical condition).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IfcError;
use crate::privilege::TagOwnership;
use crate::tag::Tag;

/// The scope within which a registered tag is meaningful.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TagScope {
    /// Understood by every participant, e.g. `eu:data-residency`.
    Global,
    /// Scoped to a named administrative domain, e.g. a hospital.
    Domain(String),
    /// Scoped to a single application.
    Application(String),
}

impl fmt::Display for TagScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagScope::Global => write!(f, "global"),
            TagScope::Domain(d) => write!(f, "domain:{d}"),
            TagScope::Application(a) => write!(f, "application:{a}"),
        }
    }
}

/// Metadata describing a registered tag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagDescriptor {
    /// The tag itself.
    pub tag: Tag,
    /// Human-readable description of the concern the tag represents.
    pub description: String,
    /// Where the tag is meaningful.
    pub scope: TagScope,
    /// Whether knowledge of the tag's presence is itself sensitive (Challenge 2).
    pub sensitive: bool,
}

/// A registry of tag descriptors plus the ownership table used to authorise privilege
/// delegation.
///
/// ```
/// use legaliot_ifc::{TagRegistry, TagScope, Tag};
/// let mut reg = TagRegistry::new();
/// reg.register(Tag::new("medical"), "medical data", TagScope::Global, true, "hospital")
///     .unwrap();
/// assert!(reg.lookup(&Tag::new("medical")).is_some());
/// assert!(reg.ownership().is_owner(&Tag::new("medical"), "hospital"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagRegistry {
    descriptors: BTreeMap<Tag, TagDescriptor>,
    ownership: TagOwnership,
}

impl TagRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tag with its description, scope, sensitivity and owning principal.
    ///
    /// # Errors
    ///
    /// Returns [`IfcError::InvalidTagName`] if the tag is already registered.
    pub fn register(
        &mut self,
        tag: Tag,
        description: impl Into<String>,
        scope: TagScope,
        sensitive: bool,
        owner: impl Into<String>,
    ) -> Result<(), IfcError> {
        if self.descriptors.contains_key(&tag) {
            return Err(IfcError::InvalidTagName {
                name: tag.name().to_string(),
                detail: "tag is already registered".to_string(),
            });
        }
        self.ownership.register(tag.clone(), owner);
        self.descriptors.insert(
            tag.clone(),
            TagDescriptor { tag, description: description.into(), scope, sensitive },
        );
        Ok(())
    }

    /// Looks up the descriptor for a tag.
    pub fn lookup(&self, tag: &Tag) -> Option<&TagDescriptor> {
        self.descriptors.get(tag)
    }

    /// Whether the tag is registered.
    pub fn contains(&self, tag: &Tag) -> bool {
        self.descriptors.contains_key(tag)
    }

    /// The ownership table, used to authorise privilege delegation.
    pub fn ownership(&self) -> &TagOwnership {
        &self.ownership
    }

    /// All tags registered under the given namespace prefix (e.g. `"nhs"`).
    pub fn tags_in_namespace<'a>(
        &'a self,
        namespace: &'a str,
    ) -> impl Iterator<Item = &'a Tag> + 'a {
        self.descriptors.keys().filter(move |t| t.namespace() == Some(namespace))
    }

    /// All globally-scoped tags.
    pub fn global_tags(&self) -> impl Iterator<Item = &Tag> + '_ {
        self.descriptors.values().filter(|d| d.scope == TagScope::Global).map(|d| &d.tag)
    }

    /// Tags whose descriptors are marked sensitive; policy stores should restrict the
    /// visibility of these (Challenge 2).
    pub fn sensitive_tags(&self) -> impl Iterator<Item = &Tag> + '_ {
        self.descriptors.values().filter(|d| d.sensitive).map(|d| &d.tag)
    }

    /// Number of registered tags.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Iterates all descriptors in tag order.
    pub fn iter(&self) -> impl Iterator<Item = &TagDescriptor> + '_ {
        self.descriptors.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TagRegistry {
        let mut reg = TagRegistry::new();
        reg.register(Tag::new("medical"), "medical data", TagScope::Global, true, "hospital")
            .unwrap();
        reg.register(
            Tag::new("nhs:consent"),
            "patient consent recorded",
            TagScope::Domain("nhs".into()),
            false,
            "hospital",
        )
        .unwrap();
        reg.register(
            Tag::new("nhs:hosp-dev"),
            "hospital-issued device",
            TagScope::Domain("nhs".into()),
            false,
            "hospital",
        )
        .unwrap();
        reg.register(
            Tag::new("eu:data-residency"),
            "data must remain in the EU",
            TagScope::Global,
            false,
            "regulator",
        )
        .unwrap();
        reg
    }

    #[test]
    fn register_and_lookup() {
        let reg = sample();
        assert_eq!(reg.len(), 4);
        let d = reg.lookup(&Tag::new("medical")).unwrap();
        assert!(d.sensitive);
        assert_eq!(d.scope, TagScope::Global);
        assert!(reg.contains(&Tag::new("eu:data-residency")));
        assert!(!reg.contains(&Tag::new("unknown")));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut reg = sample();
        let err = reg
            .register(Tag::new("medical"), "dup", TagScope::Global, false, "attacker")
            .unwrap_err();
        assert!(matches!(err, IfcError::InvalidTagName { .. }));
        // Ownership unchanged.
        assert!(reg.ownership().is_owner(&Tag::new("medical"), "hospital"));
    }

    #[test]
    fn namespace_queries() {
        let reg = sample();
        let nhs: Vec<_> = reg.tags_in_namespace("nhs").map(|t| t.name().to_string()).collect();
        assert_eq!(nhs, vec!["nhs:consent", "nhs:hosp-dev"]);
    }

    #[test]
    fn global_and_sensitive_queries() {
        let reg = sample();
        let globals: Vec<_> = reg.global_tags().map(|t| t.name().to_string()).collect();
        assert!(globals.contains(&"medical".to_string()));
        assert!(globals.contains(&"eu:data-residency".to_string()));
        let sensitive: Vec<_> = reg.sensitive_tags().collect();
        assert_eq!(sensitive, vec![&Tag::new("medical")]);
    }

    #[test]
    fn ownership_authorises_delegation() {
        let reg = sample();
        assert!(reg.ownership().authorise_delegation(&Tag::new("medical"), "hospital").is_ok());
        assert!(reg.ownership().authorise_delegation(&Tag::new("medical"), "tenant").is_err());
    }

    #[test]
    fn empty_registry() {
        let reg = TagRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.iter().count(), 0);
    }

    #[test]
    fn scope_display() {
        assert_eq!(TagScope::Global.to_string(), "global");
        assert_eq!(TagScope::Domain("nhs".into()).to_string(), "domain:nhs");
        assert_eq!(
            TagScope::Application("home-monitor".into()).to_string(),
            "application:home-monitor"
        );
    }
}
