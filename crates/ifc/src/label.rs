//! Labels: sets of tags forming the IFC lattice.
//!
//! A [`Label`] is a finite set of [`Tag`]s. Labels are ordered by set inclusion; the
//! induced lattice (join = union, meet = intersection) is what makes flow checks and
//! label propagation well-defined.

use std::collections::BTreeSet;
use std::fmt;
use std::iter::FromIterator;

use serde::{Deserialize, Serialize};

use crate::tag::{Tag, TagName};

/// A set of tags; one of the two components of a security context.
///
/// Internally a sorted set, so iteration order, `Display` output and serialisation are
/// deterministic — important for audit logs and for reproducible tests.
///
/// ```
/// use legaliot_ifc::{Label, Tag};
/// let mut l = Label::from_names(["medical", "ann"]);
/// assert!(l.contains_name("medical"));
/// l.insert(Tag::new("stats"));
/// assert_eq!(l.len(), 3);
/// assert!(Label::from_names(["medical"]).is_subset(&l));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Label {
    tags: BTreeSet<Tag>,
}

impl Label {
    /// Creates an empty label.
    pub fn new() -> Self {
        Self::default()
    }

    /// The empty label (no constraints for secrecy; no endorsements for integrity).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Creates a label from an iterator of tag names.
    pub fn from_names<I, T>(names: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<TagName>,
    {
        names.into_iter().map(Tag::new).collect()
    }

    /// Creates a label holding a single tag.
    pub fn singleton(tag: impl Into<Tag>) -> Self {
        let mut l = Label::new();
        l.insert(tag.into());
        l
    }

    /// Inserts a tag, returning `true` if it was not already present.
    pub fn insert(&mut self, tag: Tag) -> bool {
        self.tags.insert(tag)
    }

    /// Removes a tag, returning `true` if it was present.
    pub fn remove(&mut self, tag: &Tag) -> bool {
        self.tags.remove(tag)
    }

    /// Removes a tag by name, returning `true` if it was present.
    pub fn remove_name(&mut self, name: &str) -> bool {
        self.tags.remove(name)
    }

    /// Whether the label contains the given tag.
    pub fn contains(&self, tag: &Tag) -> bool {
        self.tags.contains(tag)
    }

    /// Whether the label contains a tag with the given name.
    pub fn contains_name(&self, name: &str) -> bool {
        self.tags.contains(name)
    }

    /// Number of tags in the label.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the label is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Iterates over the tags in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tag> + '_ {
        self.tags.iter()
    }

    /// Whether every tag of `self` is also in `other` (`self ⊆ other`).
    pub fn is_subset(&self, other: &Label) -> bool {
        self.tags.is_subset(&other.tags)
    }

    /// Whether every tag of `other` is also in `self` (`other ⊆ self`).
    pub fn is_superset(&self, other: &Label) -> bool {
        self.tags.is_superset(&other.tags)
    }

    /// The union of two labels (lattice join for secrecy).
    pub fn union(&self, other: &Label) -> Label {
        Label { tags: self.tags.union(&other.tags).cloned().collect() }
    }

    /// The intersection of two labels (lattice meet for secrecy).
    pub fn intersection(&self, other: &Label) -> Label {
        Label { tags: self.tags.intersection(&other.tags).cloned().collect() }
    }

    /// Tags present in `self` but not in `other`.
    pub fn difference(&self, other: &Label) -> Label {
        Label { tags: self.tags.difference(&other.tags).cloned().collect() }
    }

    /// The tags of `other` that `self` is missing; useful for explaining flow denials.
    pub fn missing_from(&self, other: &Label) -> Vec<Tag> {
        other.tags.difference(&self.tags).cloned().collect()
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label{self}")
    }
}

impl FromIterator<Tag> for Label {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        Label { tags: iter.into_iter().collect() }
    }
}

impl Extend<Tag> for Label {
    fn extend<I: IntoIterator<Item = Tag>>(&mut self, iter: I) {
        self.tags.extend(iter)
    }
}

impl IntoIterator for Label {
    type Item = Tag;
    type IntoIter = std::collections::btree_set::IntoIter<Tag>;

    fn into_iter(self) -> Self::IntoIter {
        self.tags.into_iter()
    }
}

impl<'a> IntoIterator for &'a Label {
    type Item = &'a Tag;
    type IntoIter = std::collections::btree_set::Iter<'a, Tag>;

    fn into_iter(self) -> Self::IntoIter {
        self.tags.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_label() {
        let l = Label::empty();
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert_eq!(l.to_string(), "{}");
    }

    #[test]
    fn insert_and_contains() {
        let mut l = Label::new();
        assert!(l.insert(Tag::new("medical")));
        assert!(!l.insert(Tag::new("medical")));
        assert!(l.contains(&Tag::new("medical")));
        assert!(l.contains_name("medical"));
        assert!(!l.contains_name("stats"));
    }

    #[test]
    fn remove_tags() {
        let mut l = Label::from_names(["a", "b"]);
        assert!(l.remove(&Tag::new("a")));
        assert!(!l.remove(&Tag::new("a")));
        assert!(l.remove_name("b"));
        assert!(l.is_empty());
    }

    #[test]
    fn subset_and_superset() {
        let small = Label::from_names(["medical"]);
        let big = Label::from_names(["medical", "ann"]);
        assert!(small.is_subset(&big));
        assert!(big.is_superset(&small));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
    }

    #[test]
    fn union_intersection_difference() {
        let a = Label::from_names(["medical", "ann"]);
        let b = Label::from_names(["medical", "zeb"]);
        assert_eq!(a.union(&b), Label::from_names(["medical", "ann", "zeb"]));
        assert_eq!(a.intersection(&b), Label::from_names(["medical"]));
        assert_eq!(a.difference(&b), Label::from_names(["ann"]));
    }

    #[test]
    fn missing_from_explains_denial() {
        let src = Label::from_names(["medical", "zeb"]);
        let dst = Label::from_names(["medical", "ann"]);
        // Tags of src the destination is missing.
        let missing = dst.missing_from(&src);
        assert_eq!(missing, vec![Tag::new("zeb")]);
    }

    #[test]
    fn display_is_sorted() {
        let l = Label::from_names(["zeb", "ann", "medical"]);
        assert_eq!(l.to_string(), "{ann, medical, zeb}");
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut l: Label = vec![Tag::new("a")].into_iter().collect();
        l.extend(vec![Tag::new("b")]);
        assert_eq!(l.len(), 2);
        let names: Vec<String> = (&l).into_iter().map(|t| t.name().to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn singleton_label() {
        let l = Label::singleton("medical");
        assert_eq!(l.len(), 1);
        assert!(l.contains_name("medical"));
    }

    fn arb_label() -> impl Strategy<Value = Label> {
        proptest::collection::btree_set("[a-e]{1,3}", 0..6).prop_map(Label::from_names)
    }

    proptest! {
        /// Subset is a partial order: reflexive, antisymmetric, transitive.
        #[test]
        fn prop_subset_partial_order(a in arb_label(), b in arb_label(), c in arb_label()) {
            prop_assert!(a.is_subset(&a));
            if a.is_subset(&b) && b.is_subset(&a) {
                prop_assert_eq!(a.clone(), b.clone());
            }
            if a.is_subset(&b) && b.is_subset(&c) {
                prop_assert!(a.is_subset(&c));
            }
        }

        /// Union is the least upper bound.
        #[test]
        fn prop_union_is_lub(a in arb_label(), b in arb_label()) {
            let j = a.union(&b);
            prop_assert!(a.is_subset(&j));
            prop_assert!(b.is_subset(&j));
            // Any other upper bound contains the union.
            let ub = a.union(&b).union(&Label::from_names(["zz"]));
            prop_assert!(j.is_subset(&ub));
        }

        /// Intersection is the greatest lower bound.
        #[test]
        fn prop_intersection_is_glb(a in arb_label(), b in arb_label()) {
            let m = a.intersection(&b);
            prop_assert!(m.is_subset(&a));
            prop_assert!(m.is_subset(&b));
        }

        /// Union and intersection are commutative and associative.
        #[test]
        fn prop_lattice_laws(a in arb_label(), b in arb_label(), c in arb_label()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
            prop_assert_eq!(a.intersection(&b).intersection(&c), a.intersection(&b.intersection(&c)));
            // Absorption.
            prop_assert_eq!(a.union(&a.intersection(&b)), a.clone());
            prop_assert_eq!(a.intersection(&a.union(&b)), a.clone());
        }
    }
}
