//! Labelled entities: the things flows happen between.
//!
//! Both active entities (processes, middleware components, analytics services) and
//! passive entities (files, messages, database rows) carry a [`SecurityContext`]. Only
//! active entities hold privileges and may change their own labels.
//!
//! Creation flows (§6): an entity created by another inherits the creator's labels
//! (security context) but **not** its privileges.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::error::IfcError;
use crate::flow::{can_flow, FlowDecision};
use crate::privilege::{PrivilegeKind, PrivilegeSet};
use crate::tag::{SecurityContext, Tag};

static NEXT_ENTITY_ID: AtomicU64 = AtomicU64::new(1);

/// A unique identifier for an entity.
///
/// Ids are unique within a process; distributed deployments scope them by node
/// (see `legaliot-net`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(u64);

impl EntityId {
    /// Allocates a fresh entity id.
    pub fn fresh() -> Self {
        EntityId(NEXT_ENTITY_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Constructs an id from a raw value (for deserialisation / cross-node references).
    pub fn from_raw(raw: u64) -> Self {
        EntityId(raw)
    }

    /// The raw numeric value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Whether an entity is active (may hold privileges, may act) or passive (pure data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// A process, component, service — anything that initiates flows.
    Active,
    /// A file, message, datum — anything that only carries information.
    Passive,
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityKind::Active => write!(f, "active"),
            EntityKind::Passive => write!(f, "passive"),
        }
    }
}

/// A labelled entity with (for active entities) privileges for label change.
///
/// ```
/// use legaliot_ifc::{Entity, EntityKind, SecurityContext, PrivilegeKind, Tag};
///
/// let mut sanitiser = Entity::active(
///     "input-sanitiser",
///     SecurityContext::from_names(["medical", "zeb"], ["zeb-dev", "consent"]),
/// );
/// // The hospital (tag owner) grants the endorsement privilege.
/// sanitiser.privileges_mut().grant(Tag::new("hosp-dev"), PrivilegeKind::IntegrityAdd);
/// sanitiser.privileges_mut().grant(Tag::new("zeb-dev"), PrivilegeKind::IntegrityRemove);
/// // The sanitiser endorses its output as hospital-standard (Fig. 5).
/// sanitiser.add_integrity_tag(Tag::new("hosp-dev")).unwrap();
/// sanitiser.remove_integrity_tag(&Tag::new("zeb-dev")).unwrap();
/// assert!(sanitiser.context().integrity().contains_name("hosp-dev"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    id: EntityId,
    name: String,
    kind: EntityKind,
    context: SecurityContext,
    privileges: PrivilegeSet,
    /// Number of label changes this entity has performed; useful for audit correlation.
    label_changes: u64,
}

impl Entity {
    /// Creates an active entity with the given name and initial security context.
    pub fn active(name: impl Into<String>, context: SecurityContext) -> Self {
        Self::with_kind(name, EntityKind::Active, context)
    }

    /// Creates a passive entity (data item) with the given name and security context.
    pub fn passive(name: impl Into<String>, context: SecurityContext) -> Self {
        Self::with_kind(name, EntityKind::Passive, context)
    }

    /// Creates an entity of the given kind.
    pub fn with_kind(name: impl Into<String>, kind: EntityKind, context: SecurityContext) -> Self {
        Entity {
            id: EntityId::fresh(),
            name: name.into(),
            kind,
            context,
            privileges: PrivilegeSet::new(),
            label_changes: 0,
        }
    }

    /// Creation flow: spawns a child entity that inherits this entity's security
    /// context but none of its privileges (§6 "Creation flows").
    pub fn create_child(&self, name: impl Into<String>, kind: EntityKind) -> Entity {
        Entity {
            id: EntityId::fresh(),
            name: name.into(),
            kind,
            context: self.context.clone(),
            privileges: PrivilegeSet::new(),
            label_changes: 0,
        }
    }

    /// The entity's unique id.
    pub fn id(&self) -> EntityId {
        self.id
    }

    /// The entity's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the entity is active or passive.
    pub fn kind(&self) -> EntityKind {
        self.kind
    }

    /// The entity's current security context.
    pub fn context(&self) -> &SecurityContext {
        &self.context
    }

    /// The entity's privileges.
    pub fn privileges(&self) -> &PrivilegeSet {
        &self.privileges
    }

    /// Mutable access to the privileges, for grants by tag owners / application managers.
    pub fn privileges_mut(&mut self) -> &mut PrivilegeSet {
        &mut self.privileges
    }

    /// Number of label changes performed so far.
    pub fn label_changes(&self) -> u64 {
        self.label_changes
    }

    /// Checks whether data may flow from this entity to `destination`.
    pub fn can_send_to(&self, destination: &Entity) -> FlowDecision {
        can_flow(&self.context, &destination.context)
    }

    /// Adds `tag` to the secrecy label, if privileged.
    ///
    /// # Errors
    ///
    /// Returns [`IfcError::MissingAddPrivilege`] if the entity does not hold the
    /// `SecrecyAdd` privilege for `tag`.
    pub fn add_secrecy_tag(&mut self, tag: Tag) -> Result<(), IfcError> {
        self.change_label(tag, PrivilegeKind::SecrecyAdd)
    }

    /// Removes `tag` from the secrecy label (declassification), if privileged.
    ///
    /// # Errors
    ///
    /// Returns [`IfcError::MissingRemovePrivilege`] if the entity does not hold the
    /// `SecrecyRemove` privilege for `tag`.
    pub fn remove_secrecy_tag(&mut self, tag: &Tag) -> Result<(), IfcError> {
        self.change_label(tag.clone(), PrivilegeKind::SecrecyRemove)
    }

    /// Adds `tag` to the integrity label (endorsement), if privileged.
    ///
    /// # Errors
    ///
    /// Returns [`IfcError::MissingAddPrivilege`] if the entity does not hold the
    /// `IntegrityAdd` privilege for `tag`.
    pub fn add_integrity_tag(&mut self, tag: Tag) -> Result<(), IfcError> {
        self.change_label(tag, PrivilegeKind::IntegrityAdd)
    }

    /// Removes `tag` from the integrity label, if privileged.
    ///
    /// # Errors
    ///
    /// Returns [`IfcError::MissingRemovePrivilege`] if the entity does not hold the
    /// `IntegrityRemove` privilege for `tag`.
    pub fn remove_integrity_tag(&mut self, tag: &Tag) -> Result<(), IfcError> {
        self.change_label(tag.clone(), PrivilegeKind::IntegrityRemove)
    }

    /// Replaces the whole security context **without** privilege checks.
    ///
    /// This models trusted-infrastructure actions (e.g. the middleware applying an
    /// authorised third-party reconfiguration, Fig. 8); application-level code should
    /// use the per-tag methods which check privileges.
    pub fn set_context_trusted(&mut self, context: SecurityContext) {
        self.context = context;
        self.label_changes += 1;
    }

    fn change_label(&mut self, tag: Tag, kind: PrivilegeKind) -> Result<(), IfcError> {
        if self.kind == EntityKind::Passive {
            // Passive entities cannot act; treat as missing privilege.
            return Err(missing_privilege_error(tag, kind));
        }
        if !self.privileges.permits(&tag, kind) {
            return Err(missing_privilege_error(tag, kind));
        }
        let label = if kind.is_secrecy() {
            self.context.secrecy_mut()
        } else {
            self.context.integrity_mut()
        };
        if kind.is_add() {
            label.insert(tag);
        } else {
            label.remove(&tag);
        }
        self.label_changes += 1;
        Ok(())
    }
}

fn missing_privilege_error(tag: Tag, kind: PrivilegeKind) -> IfcError {
    if kind.is_add() {
        IfcError::MissingAddPrivilege { tag, secrecy: kind.is_secrecy() }
    } else {
        IfcError::MissingRemovePrivilege { tag, secrecy: kind.is_secrecy() }
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.name, self.id, self.context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use proptest::prelude::*;

    fn ctx(s: &[&str], i: &[&str]) -> SecurityContext {
        SecurityContext::from_names(s.iter().copied(), i.iter().copied())
    }

    #[test]
    fn ids_are_unique() {
        let a = Entity::active("a", SecurityContext::public());
        let b = Entity::active("b", SecurityContext::public());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn child_inherits_labels_not_privileges() {
        let mut parent = Entity::active("parent", ctx(&["medical"], &["consent"]));
        parent.privileges_mut().grant("medical", PrivilegeKind::SecrecyRemove);
        let child = parent.create_child("child", EntityKind::Active);
        assert_eq!(child.context(), parent.context());
        assert!(child.privileges().is_empty());
        assert_ne!(child.id(), parent.id());
    }

    #[test]
    fn label_change_requires_privilege() {
        let mut e = Entity::active("e", ctx(&["medical"], &[]));
        let err = e.remove_secrecy_tag(&Tag::new("medical")).unwrap_err();
        assert!(matches!(err, IfcError::MissingRemovePrivilege { .. }));
        assert!(e.context().secrecy().contains_name("medical"));

        e.privileges_mut().grant("medical", PrivilegeKind::SecrecyRemove);
        e.remove_secrecy_tag(&Tag::new("medical")).unwrap();
        assert!(!e.context().secrecy().contains_name("medical"));
        assert_eq!(e.label_changes(), 1);
    }

    #[test]
    fn passive_entities_cannot_change_labels() {
        let mut datum = Entity::passive("reading", ctx(&["medical"], &[]));
        datum.privileges_mut().grant("medical", PrivilegeKind::SecrecyRemove);
        // Even with (erroneously granted) privileges, a passive entity cannot act.
        assert!(datum.remove_secrecy_tag(&Tag::new("medical")).is_err());
    }

    #[test]
    fn endorsement_adds_integrity_tag() {
        let mut sanitiser = Entity::active("sanitiser", ctx(&["medical", "zeb"], &["zeb-dev"]));
        sanitiser.privileges_mut().grant("hosp-dev", PrivilegeKind::IntegrityAdd);
        sanitiser.add_integrity_tag(Tag::new("hosp-dev")).unwrap();
        assert!(sanitiser.context().integrity().contains_name("hosp-dev"));
    }

    #[test]
    fn flow_between_entities_uses_contexts() {
        let ann_sensor =
            Entity::active("ann-sensor", ctx(&["medical", "ann"], &["hosp-dev", "consent"]));
        let ann_analyser =
            Entity::active("ann-analyser", ctx(&["medical", "ann"], &["hosp-dev", "consent"]));
        let zeb_sensor =
            Entity::active("zeb-sensor", ctx(&["medical", "zeb"], &["zeb-dev", "consent"]));
        assert!(ann_sensor.can_send_to(&ann_analyser).is_allowed());
        assert!(zeb_sensor.can_send_to(&ann_analyser).is_denied());
    }

    #[test]
    fn trusted_context_replacement_counts_as_label_change() {
        let mut e = Entity::active("e", SecurityContext::public());
        e.set_context_trusted(ctx(&["medical"], &[]));
        assert_eq!(e.label_changes(), 1);
        assert!(e.context().secrecy().contains_name("medical"));
    }

    #[test]
    fn display_includes_name_and_labels() {
        let e = Entity::active("monitor", ctx(&["medical"], &[]));
        let s = e.to_string();
        assert!(s.contains("monitor"));
        assert!(s.contains("medical"));
    }

    #[test]
    fn entity_id_round_trip() {
        let id = EntityId::from_raw(42);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(id.to_string(), "e42");
    }

    proptest! {
        /// Creation-flow invariant: for any context, the child has the same context and
        /// empty privileges, and can always exchange data with its parent in both
        /// directions (same security context domain).
        #[test]
        fn prop_creation_flow_inheritance(
            s in proptest::collection::btree_set("[a-d]{1,2}", 0..4),
            i in proptest::collection::btree_set("[a-d]{1,2}", 0..4),
        ) {
            let parent_ctx = SecurityContext::new(Label::from_names(s), Label::from_names(i));
            let mut parent = Entity::active("p", parent_ctx);
            parent.privileges_mut().grant("some-tag", PrivilegeKind::SecrecyAdd);
            let child = parent.create_child("c", EntityKind::Active);
            prop_assert!(child.privileges().is_empty());
            prop_assert!(parent.can_send_to(&child).is_allowed());
            prop_assert!(child.can_send_to(&parent).is_allowed());
        }

        /// Privileged add-then-remove returns the context to its original state.
        #[test]
        fn prop_add_remove_inverse(name in "[a-d]{1,3}") {
            let tag = Tag::new(&name);
            let mut e = Entity::active("e", SecurityContext::public());
            e.privileges_mut().grant(tag.clone(), PrivilegeKind::SecrecyAdd);
            e.privileges_mut().grant(tag.clone(), PrivilegeKind::SecrecyRemove);
            let before = e.context().clone();
            e.add_secrecy_tag(tag.clone()).unwrap();
            e.remove_secrecy_tag(&tag).unwrap();
            prop_assert_eq!(e.context().clone(), before);
            prop_assert_eq!(e.label_changes(), 2);
        }
    }
}
