//! Flow-decision caching for hot-path enforcement.
//!
//! The paper evaluates IFC policy on channel establishment and re-evaluates when an
//! entity's security context changes (§8.2.2). In a high-throughput dataplane the same
//! `(source context, destination context)` pair is checked millions of times between
//! context changes, so the decision can be computed once and replayed from a cache keyed
//! by a *stable 64-bit hash* of each context. Correctness rests on two properties:
//!
//! 1. `can_flow` is a pure function of the two contexts, so a cached decision is valid
//!    for as long as both contexts are unchanged;
//! 2. lookups key on the hashes of the entities' *current* contexts, so a context change
//!    automatically misses the cache and forces a fresh lattice walk — exactly the
//!    paper's re-evaluation-on-context-change semantics.
//!
//! [`DecisionCache::invalidate_context`] is the eviction hook enforcement layers call
//! when an entity changes context: it drops every cached decision involving the
//! superseded context hash, bounding cache growth and ensuring stale pairs cannot
//! resurface (e.g. through a hash collision with a later context).

use std::collections::{HashMap, HashSet};

use crate::flow::{can_flow, FlowDecision};
use crate::label::Label;
use crate::tag::SecurityContext;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *hash ^= u64::from(*b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// A stable 64-bit FNV-1a hash of an arbitrary string: deterministic across runs and
/// processes. [`context_hash64`] builds on the same byte-fold; infrastructure that
/// routes by name (e.g. the dataplane's shard router) uses this so every stable hash in
/// the stack comes from one definition.
pub fn str_hash64(value: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, value.as_bytes());
    hash
}

/// An incremental builder over the same stable FNV-1a fold as [`str_hash64`] and
/// [`context_hash64`], for callers that need a deterministic 64-bit key over several
/// fields (e.g. an access-control decision key of `(component, principal, roles,
/// operation, message type)` or a frozen message schema's identity).
///
/// Every written string is terminated with a separator byte so `["ab","c"]` and
/// `["a","bc"]` hash differently, matching the convention [`context_hash64`] uses for
/// tag names.
///
/// ```
/// use legaliot_ifc::StableHasher;
/// let a = StableHasher::new().write_str("analyser").write_str("ann").finish();
/// let b = StableHasher::new().write_str("analyser").write_str("ann").finish();
/// assert_eq!(a, b); // deterministic
/// assert_ne!(a, StableHasher::new().write_str("analyserann").finish());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Starts a fresh hash at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }

    /// Folds in a string followed by a separator byte.
    #[must_use]
    pub fn write_str(mut self, value: &str) -> Self {
        fnv1a(&mut self.0, value.as_bytes());
        fnv1a(&mut self.0, &[0x1f]);
        self
    }

    /// Folds in a little-endian 64-bit value.
    #[must_use]
    pub fn write_u64(mut self, value: u64) -> Self {
        fnv1a(&mut self.0, &value.to_le_bytes());
        self
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

fn hash_label(hash: &mut u64, label: &Label) {
    for tag in label.iter() {
        fnv1a(hash, tag.name().as_bytes());
        // Separator byte so ["ab","c"] and ["a","bc"] hash differently.
        fnv1a(hash, &[0x1f]);
    }
}

/// A stable 64-bit hash of a security context (FNV-1a over the sorted tag names of both
/// labels, with domain separation between secrecy and integrity).
///
/// Unlike `std::hash::Hash` + a randomly seeded hasher, the value is deterministic
/// across processes and runs, so it can key caches, appear in logs and cross process
/// boundaries. Equal contexts always hash equally; distinct contexts collide with
/// probability ~2⁻⁶⁴ per pair.
///
/// ```
/// use legaliot_ifc::{context_hash64, SecurityContext};
/// let a = SecurityContext::from_names(["medical", "ann"], ["consent"]);
/// let b = SecurityContext::from_names(["ann", "medical"], ["consent"]);
/// assert_eq!(context_hash64(&a), context_hash64(&b)); // order-independent
/// assert_ne!(context_hash64(&a), context_hash64(&SecurityContext::public()));
/// ```
pub fn context_hash64(context: &SecurityContext) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, b"S|");
    hash_label(&mut hash, context.secrecy());
    fnv1a(&mut hash, b"|I|");
    hash_label(&mut hash, context.integrity());
    hash
}

/// Counters describing a cache's effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh `can_flow` evaluation.
    pub misses: u64,
    /// Entries dropped by [`DecisionCache::invalidate_context`].
    pub invalidated: u64,
    /// Entries currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when no lookups have happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A cache of flow decisions keyed by `(source context hash, destination context hash)`.
///
/// Single-owner by design (no interior locking): a sharded enforcement engine gives each
/// shard its own cache so the hot path never contends on a shared lock, and broadcasts
/// [`DecisionCache::invalidate_context`] to every shard when an entity changes context.
///
/// ```
/// use legaliot_ifc::{context_hash64, DecisionCache, SecurityContext};
/// let mut cache = DecisionCache::new();
/// let src = SecurityContext::from_names(["medical"], Vec::<&str>::new());
/// let dst = SecurityContext::from_names(["medical", "stats"], Vec::<&str>::new());
/// let (sh, dh) = (context_hash64(&src), context_hash64(&dst));
/// let (decision, hit) = cache.check(&src, sh, &dst, dh);
/// assert!(decision.is_allowed() && !hit);
/// let (_, hit) = cache.check(&src, sh, &dst, dh);
/// assert!(hit);
/// assert_eq!(cache.invalidate_context(sh), 1);
/// assert!(cache.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DecisionCache {
    entries: HashMap<(u64, u64), FlowDecision>,
    /// Secondary index: context hash → partner hashes it appears with (either side),
    /// so per-entity invalidation does not scan the whole table.
    by_context: HashMap<u64, HashSet<u64>>,
    capacity: usize,
    hits: u64,
    misses: u64,
    invalidated: u64,
}

impl Default for DecisionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionCache {
    /// Default maximum number of cached pairs.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a cache with [`Self::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a cache holding at most `capacity` decisions. When full, the next insert
    /// clears the cache (epoch eviction: cheap, and the working set refills in one pass).
    pub fn with_capacity(capacity: usize) -> Self {
        DecisionCache {
            entries: HashMap::new(),
            by_context: HashMap::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            invalidated: 0,
        }
    }

    /// Returns the decision for `source → destination`, computing and caching it on a
    /// miss. The boolean is `true` when the decision came from the cache.
    ///
    /// `source_hash`/`destination_hash` must be [`context_hash64`] of the respective
    /// contexts *as currently held by the caller* — passing stale hashes replays stale
    /// decisions.
    pub fn check(
        &mut self,
        source: &SecurityContext,
        source_hash: u64,
        destination: &SecurityContext,
        destination_hash: u64,
    ) -> (FlowDecision, bool) {
        let key = (source_hash, destination_hash);
        if let Some(decision) = self.entries.get(&key) {
            self.hits += 1;
            return (decision.clone(), true);
        }
        self.misses += 1;
        let decision = can_flow(source, destination);
        self.insert(key, decision.clone());
        (decision, false)
    }

    /// Looks up a cached decision without computing on miss.
    pub fn lookup(&mut self, source_hash: u64, destination_hash: u64) -> Option<FlowDecision> {
        match self.entries.get(&(source_hash, destination_hash)) {
            Some(d) => {
                self.hits += 1;
                Some(d.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches a decision for the given key pair.
    pub fn insert(&mut self, key: (u64, u64), decision: FlowDecision) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.entries.clear();
            self.by_context.clear();
        }
        self.by_context.entry(key.0).or_default().insert(key.1);
        self.by_context.entry(key.1).or_default().insert(key.0);
        self.entries.insert(key, decision);
    }

    /// Drops every cached decision in which `context_hash` appears as source or
    /// destination, returning how many entries were removed. Decisions between other
    /// context pairs are untouched — this is the per-entity invalidation hook called
    /// when exactly one entity changes its security context (§8.2.2 re-evaluation).
    pub fn invalidate_context(&mut self, context_hash: u64) -> usize {
        let Some(partners) = self.by_context.remove(&context_hash) else {
            return 0;
        };
        let mut removed = 0;
        for partner in partners {
            if self.entries.remove(&(context_hash, partner)).is_some() {
                removed += 1;
            }
            if partner != context_hash && self.entries.remove(&(partner, context_hash)).is_some() {
                removed += 1;
            }
            if let Some(set) = self.by_context.get_mut(&partner) {
                set.remove(&context_hash);
                if set.is_empty() {
                    self.by_context.remove(&partner);
                }
            }
        }
        self.invalidated += removed as u64;
        removed
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached decision (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_context.clear();
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidated: self.invalidated,
            entries: self.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx(s: &[&str], i: &[&str]) -> SecurityContext {
        SecurityContext::from_names(s.iter().copied(), i.iter().copied())
    }

    #[test]
    fn stable_hash_is_order_independent_and_deterministic() {
        let a = SecurityContext::from_names(["medical", "ann"], ["consent", "hosp-dev"]);
        let b = SecurityContext::from_names(["ann", "medical"], ["hosp-dev", "consent"]);
        assert_eq!(context_hash64(&a), context_hash64(&b));
        assert_eq!(a.stable_hash(), context_hash64(&a));
        // Known-value pin so the hash cannot silently change across sessions.
        assert_eq!(context_hash64(&SecurityContext::public()), {
            let mut h = FNV_OFFSET;
            fnv1a(&mut h, b"S|");
            fnv1a(&mut h, b"|I|");
            h
        });
    }

    #[test]
    fn stable_hash_separates_labels_and_tags() {
        // Same tags, different side of the context.
        let secrecy_only = ctx(&["medical"], &[]);
        let integrity_only = ctx(&[], &["medical"]);
        assert_ne!(context_hash64(&secrecy_only), context_hash64(&integrity_only));
        // Concatenation ambiguity.
        let ab_c = ctx(&["ab", "c"], &[]);
        let a_bc = ctx(&["a", "bc"], &[]);
        assert_ne!(context_hash64(&ab_c), context_hash64(&a_bc));
    }

    #[test]
    fn check_caches_and_replays_decisions() {
        let mut cache = DecisionCache::new();
        let src = ctx(&["medical"], &[]);
        let dst = ctx(&["medical", "stats"], &[]);
        let (sh, dh) = (context_hash64(&src), context_hash64(&dst));
        let (d1, hit1) = cache.check(&src, sh, &dst, dh);
        assert!(d1.is_allowed() && !hit1);
        let (d2, hit2) = cache.check(&src, sh, &dst, dh);
        assert!(d2.is_allowed() && hit2);
        // Denials are cached too, with their full reason.
        let (d3, _) = cache.check(&dst, dh, &src, sh);
        assert!(d3.is_denied());
        let (d4, hit4) = cache.check(&dst, dh, &src, sh);
        assert_eq!(d3, d4);
        assert!(hit4);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2));
        assert!((stats.hit_ratio() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn invalidate_context_removes_exactly_the_affected_pairs() {
        let mut cache = DecisionCache::new();
        let a = ctx(&["a"], &[]);
        let b = ctx(&["a", "b"], &[]);
        let c = ctx(&["c"], &[]);
        let d = ctx(&["c", "d"], &[]);
        let (ha, hb, hc, hd) =
            (context_hash64(&a), context_hash64(&b), context_hash64(&c), context_hash64(&d));
        cache.check(&a, ha, &b, hb);
        cache.check(&b, hb, &a, ha);
        cache.check(&c, hc, &d, hd);
        assert_eq!(cache.len(), 3);
        // Invalidating `a` removes both directions of the (a, b) pair and nothing else.
        assert_eq!(cache.invalidate_context(ha), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(hc, hd).is_some());
        assert!(cache.lookup(ha, hb).is_none());
        // Idempotent on an absent context.
        assert_eq!(cache.invalidate_context(ha), 0);
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn self_pair_invalidation_does_not_double_count() {
        let mut cache = DecisionCache::new();
        let a = ctx(&["a"], &[]);
        let ha = context_hash64(&a);
        cache.check(&a, ha, &a, ha);
        assert_eq!(cache.invalidate_context(ha), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_eviction_clears_and_refills() {
        let mut cache = DecisionCache::with_capacity(2);
        let contexts: Vec<SecurityContext> =
            (0..3).map(|i| ctx(&[format!("t{i}").as_str()], &[])).collect();
        let hashes: Vec<u64> = contexts.iter().map(context_hash64).collect();
        cache.check(&contexts[0], hashes[0], &contexts[1], hashes[1]);
        cache.check(&contexts[1], hashes[1], &contexts[2], hashes[2]);
        assert_eq!(cache.len(), 2);
        // Third distinct pair trips the epoch eviction.
        cache.check(&contexts[0], hashes[0], &contexts[2], hashes[2]);
        assert_eq!(cache.len(), 1);
        // Re-inserting an existing key never evicts.
        cache.check(&contexts[0], hashes[0], &contexts[2], hashes[2]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().hits, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    proptest! {
        /// Cached answers always equal a fresh `can_flow` evaluation.
        #[test]
        fn prop_cache_is_transparent(
            s1 in proptest::collection::btree_set("[a-c]{1,2}", 0..4),
            i1 in proptest::collection::btree_set("[a-c]{1,2}", 0..4),
            s2 in proptest::collection::btree_set("[a-c]{1,2}", 0..4),
            i2 in proptest::collection::btree_set("[a-c]{1,2}", 0..4),
        ) {
            let a = SecurityContext::new(Label::from_names(s1), Label::from_names(i1));
            let b = SecurityContext::new(Label::from_names(s2), Label::from_names(i2));
            let (ha, hb) = (context_hash64(&a), context_hash64(&b));
            let mut cache = DecisionCache::new();
            let (first, _) = cache.check(&a, ha, &b, hb);
            let (second, hit) = cache.check(&a, ha, &b, hb);
            prop_assert!(hit);
            prop_assert_eq!(&first, &second);
            prop_assert_eq!(first, can_flow(&a, &b));
        }

        /// Equal contexts hash equally; the hash never depends on construction order.
        #[test]
        fn prop_hash_respects_equality(
            s in proptest::collection::vec("[a-d]{1,2}", 0..5),
            i in proptest::collection::vec("[a-d]{1,2}", 0..5),
        ) {
            let forward = SecurityContext::from_names(s.iter().cloned(), i.iter().cloned());
            let reversed = SecurityContext::from_names(
                s.iter().rev().cloned(),
                i.iter().rev().cloned(),
            );
            prop_assert_eq!(forward.clone(), reversed.clone());
            prop_assert_eq!(context_hash64(&forward), context_hash64(&reversed));
        }
    }
}
